//! Batched-solve contracts across the three engines: the blocked
//! multi-RHS sweeps are bitwise identical to one-at-a-time solves for any
//! block size, all engines agree on the same block, dimension errors are
//! typed (never panics), and sessions batch without changing answers.

use parfact::core::dist::{prepare, run_distributed_prepared_traced};
use parfact::core::mapping::MapStrategy;
use parfact::core::smp_solve;
use parfact::core::solver::{FactorOpts, RhsBlock, SolveEngine, SolveOpts, SparseCholesky};
use parfact::core::FactorError;
use parfact::mpsim::model::CostModel;
use parfact::order::Method;
use parfact::sparse::{gen, ops};
use parfact::symbolic::AmalgOpts;
use parfact::TraceLevel;
use proptest::prelude::*;

fn rhs_block(n: usize, nrhs: usize, seed: u64) -> Vec<f64> {
    // Deterministic, engine-independent xorshift fill.
    let mut s = seed | 1;
    (0..n * nrhs)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f64 - 1000.0) / 250.0
        })
        .collect()
}

/// The acceptance-criteria invariant: for every engine, solving a block is
/// bitwise the same as solving its columns one by one.
#[test]
fn blocked_solve_is_bitwise_identical_to_per_column_loop() {
    let a = gen::laplace3d(6, 5, 4, gen::Stencil3d::SevenPoint);
    let n = a.nrows();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    for nrhs in [1usize, 2, 7, 32] {
        let b = rhs_block(n, nrhs, 0x5eed + nrhs as u64);
        let batched = chol
            .solve_with(RhsBlock::new(&b, nrhs), &SolveOpts::new())
            .unwrap();
        let smp_batched = chol
            .solve_with(
                RhsBlock::new(&b, nrhs),
                &SolveOpts::new().engine(SolveEngine::Smp { threads: 4 }),
            )
            .unwrap();
        for col in 0..nrhs {
            let bcol = &b[col * n..(col + 1) * n];
            let one = chol.solve(bcol);
            for (p, q) in batched.x[col * n..(col + 1) * n].iter().zip(&one) {
                assert_eq!(p.to_bits(), q.to_bits(), "seq nrhs={nrhs} col={col}");
            }
            let one_smp = smp_solve::solve_smp(chol.factor(), bcol, 4);
            for (p, q) in smp_batched.x[col * n..(col + 1) * n].iter().zip(&one_smp) {
                assert_eq!(p.to_bits(), q.to_bits(), "smp nrhs={nrhs} col={col}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes: batched ≡ per-column, bitwise, on the sequential path.
    #[test]
    fn batched_matches_per_column_on_random_systems(
        n in 5usize..40, deg in 1usize..4, seed in any::<u64>(), nrhs in 1usize..9
    ) {
        let a = gen::random_spd(n, deg, (seed % 1000) as u64);
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let b = rhs_block(n, nrhs, seed | 1);
        let batched = chol
            .solve_with(RhsBlock::new(&b, nrhs), &SolveOpts::new())
            .unwrap();
        for col in 0..nrhs {
            let one = chol.solve(&b[col * n..(col + 1) * n]);
            for (p, q) in batched.x[col * n..(col + 1) * n].iter().zip(&one) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }
}

/// Multi-RHS parity across all three engines at several rank counts: the
/// distributed solve ships RHS blocks through the simulated machine and
/// must agree with the host sweeps to rounding (its leader-gather fold
/// order differs, so the comparison is a tolerance, not bits).
#[test]
fn seq_smp_dist_multi_rhs_parity() {
    let a = gen::laplace3d(5, 5, 4, gen::Stencil3d::SevenPoint);
    let n = a.nrows();
    let nrhs = 5;
    let b = rhs_block(n, nrhs, 42);
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let seq = chol
        .solve_with(RhsBlock::new(&b, nrhs), &SolveOpts::new())
        .unwrap();
    let smp = chol
        .solve_with(
            RhsBlock::new(&b, nrhs),
            &SolveOpts::new().engine(SolveEngine::Smp { threads: 4 }),
        )
        .unwrap();
    for col in 0..nrhs {
        let r = ops::sym_residual_inf(
            &a,
            &seq.x[col * n..(col + 1) * n],
            &b[col * n..(col + 1) * n],
        );
        assert!(r < 1e-11, "seq col={col}: residual {r}");
    }
    for (s, p) in seq.x.iter().zip(&smp.x) {
        assert!((s - p).abs() / s.abs().max(1.0) < 1e-12);
    }
    let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
    for ranks in [2usize, 4, 8] {
        let out = run_distributed_prepared_traced(
            ranks,
            CostModel::bluegene_p(),
            &ap,
            &sym,
            &perm,
            MapStrategy::default(),
            false,
            Some(&b),
            nrhs,
            false,
            false,
        )
        .unwrap();
        let xd = out.x.expect("rank 0 gathers the solution block");
        assert_eq!(xd.len(), n * nrhs);
        for (d, s) in xd.iter().zip(&seq.x) {
            assert!(
                (d - s).abs() / s.abs().max(1.0) < 1e-11,
                "ranks={ranks}: dist diverged from seq"
            );
        }
    }
}

#[test]
fn wrong_lengths_are_typed_errors_not_panics() {
    let a = gen::laplace2d(7, 7, gen::Stencil2d::FivePoint);
    let n = a.nrows();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let b = vec![1.0; n];
    // Facade, factor-level checked API, and SMP solve all agree on the
    // error; only the documented legacy shims panic.
    assert!(matches!(
        chol.solve_with(RhsBlock::new(&b, 3), &SolveOpts::new()),
        Err(FactorError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        chol.factor().try_solve_many(&b, 2),
        Err(FactorError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        smp_solve::solve_smp_many(chol.factor(), &b, 2, 4),
        Err(FactorError::DimensionMismatch { .. })
    ));
}

/// A session fed one vector at a time returns exactly what direct blocked
/// solves return, and the solve report aggregates across flushes.
#[test]
fn solve_session_accumulates_and_reports() {
    let a = gen::laplace2d(10, 9, gen::Stencil2d::FivePoint);
    let n = a.nrows();
    let chol =
        SparseCholesky::factorize(&a, &FactorOpts::new().trace(TraceLevel::Timeline)).unwrap();
    let columns: Vec<Vec<f64>> = (0..9).map(|k| rhs_block(n, 1, 7 + k as u64)).collect();
    let mut sess = chol.solve_session(SolveOpts::new()).capacity(4);
    for c in &columns {
        sess.push(c).unwrap();
    }
    let xs = sess.finish().unwrap();
    assert_eq!(xs.len(), columns.len());
    for (c, x) in columns.iter().zip(&xs) {
        let direct = chol.solve(c);
        for (d, s) in direct.iter().zip(x) {
            assert_eq!(d.to_bits(), s.to_bits());
        }
    }
    let r = chol.report_with_solve();
    let s = r.solve.expect("solve section");
    // 9 pushes at capacity 4 = flushes of 4, 4, 1 — plus the per-column
    // reference solves above.
    assert!(s.rhs >= 9);
    assert!(s.solves >= 3);
    // Timeline tracing put solve spans in the enriched stream.
    assert!(r
        .spans
        .iter()
        .any(|sp| sp.phase == parfact::trace::Phase::Solve));
}
