//! Determinism and quality guarantees of the parallel analysis phase.
//!
//! The contract under test: ordering and symbolic analysis on any number of
//! worker threads produce **bitwise identical** results to the sequential
//! pass — same permutation, same elimination tree, same column counts, same
//! supernode partition, same row structures. Plus a fill-quality
//! non-regression pin: the content-derived RNG seeding that makes nested
//! dissection thread-count invariant must not degrade ordering quality.

use parfact::order::nd::NdOpts;
use parfact::order::{fill_in, order_matrix_with, Method};
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::gen;
use parfact::sparse::graph::AdjGraph;
use parfact::symbolic::{analyze, analyze_with, AmalgOpts};
use parfact::trace::Collector;
use proptest::prelude::*;

/// Strategy: matrices from the families the analysis phase sees in
/// practice — random sparse SPD, 2-D and 3-D grids.
fn analysis_matrix() -> impl Strategy<Value = CscMatrix> {
    (0usize..3, 5usize..=70, 1usize..=6, any::<u64>()).prop_map(|(family, n, k, seed)| match family
    {
        0 => gen::random_spd(n, k, seed),
        1 => gen::laplace2d(4 + n % 12, 3 + k * 2, gen::Stencil2d::FivePoint),
        _ => gen::laplace3d(
            3 + n % 5,
            3 + k % 4,
            2 + (seed % 4) as usize,
            gen::Stencil3d::SevenPoint,
        ),
    })
}

/// Strategy: nested-dissection leaf cutoffs from tiny (deep recursion) to
/// the production default.
fn nd_cutoff() -> impl Strategy<Value = usize> {
    (0usize..3).prop_map(|i| [4, 16, 96][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: the fill ordering and the complete symbolic
    /// object are bitwise identical at 1, 2, 4 and 8 analysis threads.
    #[test]
    fn parallel_analysis_is_bitwise_identical(a in analysis_matrix(), cutoff in nd_cutoff()) {
        let method = Method::NestedDissection(NdOpts { cutoff, ..NdOpts::default() });
        let off = Collector::disabled();
        let fill1 = order_matrix_with(&a, method, 1, &off);
        let af = fill1.apply_sym_lower(&a);
        let (sym1, _) = analyze(&af, &AmalgOpts::default());
        for threads in [2usize, 4, 8] {
            let fill = order_matrix_with(&a, method, threads, &off);
            prop_assert_eq!(&fill, &fill1, "ordering diverged at {} threads", threads);
            let (sym, _) = analyze_with(&af, &AmalgOpts::default(), threads, &off);
            prop_assert_eq!(&sym.post, &sym1.post, "postorder @ {}", threads);
            prop_assert_eq!(&sym.parent, &sym1.parent, "etree @ {}", threads);
            prop_assert_eq!(&sym.colcount, &sym1.colcount, "colcount @ {}", threads);
            prop_assert_eq!(&sym.sn_ptr, &sym1.sn_ptr, "supernodes @ {}", threads);
            prop_assert_eq!(&sym.sn_of, &sym1.sn_of, "sn_of @ {}", threads);
            prop_assert_eq!(&sym.sn_rows, &sym1.sn_rows, "structure @ {}", threads);
            prop_assert_eq!(&sym.tree.parent, &sym1.tree.parent, "assembly tree @ {}", threads);
        }
    }

    /// Repeated runs at the same thread count are identical too (no hidden
    /// dependence on scheduling order).
    #[test]
    fn parallel_analysis_is_run_to_run_stable(a in analysis_matrix()) {
        let method = Method::default();
        let off = Collector::disabled();
        let first = order_matrix_with(&a, method, 4, &off);
        for _ in 0..2 {
            prop_assert_eq!(&order_matrix_with(&a, method, 4, &off), &first);
        }
    }
}

/// Fill-quality pin for the content-derived RNG seeding scheme.
///
/// Nested dissection's bisection heuristics are randomized; making the
/// recursion parallel-safe required deriving each subgraph's seed from its
/// global vertex ids instead of threading one sequential RNG through the
/// recursion. Individual cases shift either way under any reseeding (the
/// per-case jitter across seed choices is several percent), so this pins
/// the exact deterministic per-case values of the current scheme and
/// asserts the aggregate stays strictly better than the old sequential
/// scheme's aggregate (13294 on these four cases).
#[test]
fn nd_fill_quality_is_pinned_and_aggregate_improved() {
    let cases: [(CscMatrix, usize, usize); 4] = [
        (gen::laplace2d(12, 12, gen::Stencil2d::FivePoint), 16, 936),
        (gen::laplace2d(20, 15, gen::Stencil2d::FivePoint), 32, 2546),
        (
            gen::laplace3d(6, 6, 6, gen::Stencil3d::SevenPoint),
            48,
            3578,
        ),
        (gen::random_spd(150, 4, 7), 24, 2164),
    ];
    let mut aggregate = 0usize;
    for (i, (a, cutoff, expect)) in cases.iter().enumerate() {
        let method = Method::NestedDissection(NdOpts {
            cutoff: *cutoff,
            ..NdOpts::default()
        });
        let perm = order_matrix_with(a, method, 1, &Collector::disabled());
        let g = AdjGraph::from_sym_lower(a);
        let fill = fill_in(&g, &perm);
        assert_eq!(
            fill, *expect,
            "case {i}: fill-in moved; if the seeding scheme changed \
             deliberately, re-pin after checking the aggregate"
        );
        aggregate += fill;
    }
    assert!(
        aggregate < 13294,
        "aggregate fill {aggregate} regressed past the old scheme's 13294"
    );
}
