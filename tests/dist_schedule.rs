//! Distributed-engine scheduling contracts: the event-driven schedule is
//! bitwise identical to the synchronous postorder schedule (and to the
//! sequential engine), and numeric failure on any simulated rank surfaces
//! as an `Err` — never a panic, never a hang.

use parfact::core::dist::{prepare, run_distributed, run_distributed_prepared};
use parfact::core::mapping::MapStrategy;
use parfact::core::solver::{DistOpts, Engine, FactorOpts, SparseCholesky};
use parfact::core::FactorError;
use parfact::mpsim::model::CostModel;
use parfact::order::Method;
use parfact::sparse::gen;
use parfact::symbolic::AmalgOpts;

/// Indefinite input must come back as `NotPositiveDefinite` from the raw
/// distributed entry point at every rank count — the failing rank reports
/// the error and its peers are unblocked, so the call returns promptly.
#[test]
fn indefinite_returns_err_at_all_rank_counts() {
    let a = gen::indefinite(60, 3);
    for p in [2usize, 4, 8] {
        let r = run_distributed(
            p,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::default(),
            None,
        );
        assert!(
            matches!(r, Err(FactorError::NotPositiveDefinite { .. })),
            "p={p}: expected NotPositiveDefinite, got {:?}",
            r.map(|_| "Ok(..)").err()
        );
    }
}

/// Same contract through the façade: `Engine::Dist` propagates the error
/// like every other engine instead of panicking inside a simulated rank.
#[test]
fn facade_dist_engine_propagates_indefinite() {
    let a = gen::indefinite(60, 3);
    for ranks in [2usize, 4, 8] {
        let r = SparseCholesky::factorize(
            &a,
            &FactorOpts::new().engine(Engine::Dist(DistOpts {
                ranks,
                ..DistOpts::default()
            })),
        );
        assert!(
            matches!(r, Err(FactorError::NotPositiveDefinite { .. })),
            "ranks={ranks}: expected NotPositiveDefinite, got Err-or-Ok mismatch"
        );
    }
}

/// The sync-schedule ablation toggle changes only simulated clocks: both
/// schedules produce factors bitwise equal to each other and to the
/// sequential engine, across rank counts that exercise local subtrees,
/// 1-D groups, and 2-D grids.
#[test]
fn schedules_agree_bitwise_across_rank_counts() {
    let a = gen::laplace3d(7, 6, 5, gen::Stencil3d::SevenPoint);
    let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
    for p in [1usize, 2, 3, 4, 6, 8] {
        let run = |sync_schedule| {
            run_distributed_prepared(
                p,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                sync_schedule,
                None,
            )
            .expect("SPD")
        };
        let evd = run(false);
        let sync = run(true);
        assert_eq!(
            evd.factor.max_abs_diff(&sync.factor),
            0.0,
            "p={p}: event-driven vs sync schedule"
        );
        assert_eq!(
            evd.factor.max_abs_diff(seq.factor()),
            0.0,
            "p={p}: distributed vs sequential"
        );
    }
}

/// The façade toggle is wired through: `sync_schedule: true` still solves.
#[test]
fn facade_sync_schedule_solves() {
    let a = gen::laplace2d(24, 24, gen::Stencil2d::FivePoint);
    let chol = SparseCholesky::factorize(
        &a,
        &FactorOpts::new().engine(Engine::Dist(DistOpts {
            ranks: 4,
            sync_schedule: true,
            ..DistOpts::default()
        })),
    )
    .unwrap();
    let xstar: Vec<f64> = (0..a.nrows()).map(|i| (i % 11) as f64 - 5.0).collect();
    let mut b = vec![0.0; a.nrows()];
    a.sym_spmv(&xstar, &mut b);
    let x = chol.solve(&b);
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-8);
    }
}
