//! Send-path determinism regressions: pins the container remediations in
//! the distributed engine and the fan-out baseline (BTreeMap panel/block
//! stores, sorted cache drains, centralized tags).
//!
//! Each `HashMap` gets a fresh random hasher seed per instance, so an
//! iteration-order dependence in a message-send path shows up as run-to-run
//! drift *within one process*. These tests run each engine twice at 2/4/8
//! ranks and require bitwise-identical factors, simulated clocks, and
//! traffic counts — and bitwise agreement with the sequential engine.

use parfact::core::baseline::fanout;
use parfact::core::dist::run_distributed;
use parfact::core::mapping::MapStrategy;
use parfact::core::solver::{FactorOpts, SparseCholesky};
use parfact::mpsim::model::CostModel;
use parfact::mpsim::Machine;
use parfact::order::Method;
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::gen;
use parfact::symbolic::AmalgOpts;

/// Two back-to-back distributed runs must agree bitwise with each other and
/// with the sequential factor, at every rank count. A `HashMap`-ordered
/// gather or extend-add send would break the run-to-run comparison.
#[test]
fn dist_factor_is_bitwise_repeatable_at_2_4_8_ranks() {
    let a = gen::elasticity3d(4, 3, 3);
    let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    for p in [2usize, 4, 8] {
        let run = || {
            run_distributed(
                p,
                CostModel::bluegene_p(),
                &a,
                Method::default(),
                &AmalgOpts::default(),
                MapStrategy::default(),
                None,
            )
            .expect("SPD")
        };
        let first = run();
        let second = run();
        assert_eq!(
            first.factor.max_abs_diff(&second.factor),
            0.0,
            "p={p}: repeated distributed runs disagree"
        );
        assert_eq!(
            first.factor.max_abs_diff(seq.factor()),
            0.0,
            "p={p}: distributed factor differs from sequential"
        );
    }
}

/// One fan-out baseline run: gathered factor plus per-rank virtual clocks
/// and message counters — everything the send order can perturb.
fn fanout_run(a: &CscMatrix, p: usize) -> (CscMatrix, Vec<(f64, u64, u64)>) {
    let n = a.ncols();
    let gathered = std::sync::Mutex::new(None);
    let stats = std::sync::Mutex::new(vec![(0.0f64, 0u64, 0u64); p]);
    Machine::new(p, CostModel::bluegene_p()).run(|rank| {
        let cols = fanout::factorize_rank(rank, a).unwrap();
        if let Some(l) = fanout::gather_l(rank, n, &cols) {
            *gathered.lock().unwrap() = Some(l);
        }
        let s = rank.stats();
        stats.lock().unwrap()[rank.rank()] = (rank.clock(), s.msgs_sent, s.bytes_sent);
    });
    let l = gathered.into_inner().unwrap().expect("rank 0 gathers L");
    (l, stats.into_inner().unwrap())
}

/// The fan-out baseline must be bitwise repeatable in factor values AND in
/// its simulated schedule (clocks, traffic). This pins the sorted drain of
/// the column cache: an unordered `HashMap::drain` in the cleanup path
/// reorders `free()` calls and perturbs the memory/timing accounting from
/// run to run.
#[test]
fn fanout_baseline_is_bitwise_repeatable_at_2_4_8_ranks() {
    let a0 = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
    let fill = parfact::order::order_matrix(&a0, Method::default());
    let a = fill.apply_sym_lower(&a0);
    for p in [2usize, 4, 8] {
        let (l1, s1) = fanout_run(&a, p);
        let (l2, s2) = fanout_run(&a, p);
        assert_eq!(l1, l2, "p={p}: repeated fan-out runs disagree on L");
        assert_eq!(
            s1, s2,
            "p={p}: repeated fan-out runs disagree on clocks/traffic"
        );
    }
}
