//! End-to-end tests on symmetric **indefinite** systems: the Helmholtz
//! model problem through the sparse no-pivot LDLᵀ (with equilibration) and
//! the dense Bunch–Kaufman kernel as the robust reference.

use parfact::core::solver::{FactorOpts, RhsBlock, SolveOpts, SparseCholesky};
use parfact::core::{FactorError, FactorKind};
use parfact::dense::bunch_kaufman::factorize_bk;
use parfact::sparse::{gen, ops};

#[test]
fn helmholtz_rejected_by_cholesky_solved_by_bk() {
    // Interior shift: indefinite. The grid is chosen so the shift is far
    // from any eigenvalue (no near-singularity).
    let a = gen::helmholtz2d(9, 9, 1.7);
    assert!(matches!(
        SparseCholesky::factorize(&a, &FactorOpts::default()),
        Err(FactorError::NotPositiveDefinite { .. })
    ));
    // Dense Bunch-Kaufman handles it regardless of pivot order.
    let n = a.nrows();
    let mut dense = parfact::dense::DMat::zeros(n, n);
    let full = a.sym_to_full();
    for c in 0..n {
        let (rows, vals) = full.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            dense[(r, c)] = v;
        }
    }
    let mut w = dense.clone();
    let f = factorize_bk(n, w.as_mut_slice(), n).unwrap();
    let (pos, neg, zero) = f.inertia();
    assert_eq!(zero, 0);
    assert!(neg > 0, "interior shift must produce negative eigenvalues");
    assert!(pos > neg, "most of the spectrum stays positive");

    let xstar: Vec<f64> = (0..n).map(|i| ((i * 5) % 13) as f64 / 4.0 - 1.0).collect();
    let mut b = vec![0.0; n];
    a.sym_spmv(&xstar, &mut b);
    let x = f.solve(&b);
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-8);
    }
}

#[test]
fn sparse_ldlt_on_mildly_indefinite_helmholtz() {
    // Small shift on a modest grid: indefinite but no pivot happens to
    // vanish under the ND ordering — the regime the no-pivot sparse LDLᵀ
    // targets. Iterative refinement mops up pivoting-free growth.
    let a = gen::helmholtz2d(12, 12, 0.5);
    let n = a.nrows();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt))
        .expect("no-pivot LDLt on mildly indefinite system");
    let xstar: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut b = vec![0.0; n];
    a.sym_spmv(&xstar, &mut b);
    let out = chol
        .solve_with(RhsBlock::single(&b), &SolveOpts::new().refine(2))
        .unwrap();
    let resid = out.residual.unwrap();
    assert!(resid < 1e-8, "residual {resid}");
    let maxerr = out
        .x
        .iter()
        .zip(&xstar)
        .fold(0.0f64, |m, (u, v)| m.max((u - v).abs()));
    assert!(maxerr < 1e-6, "error {maxerr}");
    // Sylvester: number of negative pivots = number of eigenvalues below
    // the shift; must be positive and small.
    let nneg = chol.factor().d.iter().filter(|&&d| d < 0.0).count();
    assert!((1..20).contains(&nneg), "nneg = {nneg}");
}

#[test]
fn anisotropic_problem_end_to_end() {
    let a = gen::laplace2d_aniso(40, 40, 1e-3);
    let n = a.nrows();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let b = vec![1.0; n];
    let x = chol.solve(&b);
    assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    // Orderings must remain valid despite extreme weights.
    for m in [
        parfact::order::Method::MinDegree,
        parfact::order::Method::default(),
    ] {
        let chol2 = SparseCholesky::factorize(&a, &FactorOpts::new().ordering(m)).unwrap();
        let x2 = chol2.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x2, &b) < 1e-12);
    }
}
