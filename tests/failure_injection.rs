//! Failure injection and degenerate-input battery at the solver level:
//! every engine must reject bad inputs with typed errors (never UB, never
//! a wrong answer) and handle boundary shapes.

use parfact::core::dist::run_distributed;
use parfact::core::mapping::MapStrategy;
use parfact::core::smp::SmpOpts;
use parfact::core::solver::{DistOpts, Engine, FactorOpts, RhsBlock, SolveOpts, SparseCholesky};
use parfact::core::{FactorError, FactorKind};
use parfact::mpsim::model::CostModel;
use parfact::order::Method;
use parfact::sparse::coo::CooMatrix;
use parfact::sparse::{gen, io};

#[test]
fn indefinite_rejected_by_every_llt_engine() {
    let a = gen::indefinite(60, 21);
    for engine in [
        Engine::Sequential,
        Engine::Smp(SmpOpts {
            threads: 3,
            big_front: 32,
        }),
    ] {
        let r = SparseCholesky::factorize(&a, &FactorOpts::new().engine(engine));
        match r {
            Err(FactorError::NotPositiveDefinite { value, .. }) => assert!(value <= 0.0),
            other => panic!("expected NotPositiveDefinite, got {:?}", other.is_ok()),
        }
    }
}

#[test]
fn zero_matrix_is_rejected_not_nan() {
    // All-zero diagonal: first pivot is 0, which is not positive.
    let mut coo = CooMatrix::new(4, 4);
    for i in 0..4 {
        coo.push(i, i, 0.0);
    }
    let a = coo.to_csc();
    let r = SparseCholesky::factorize(&a, &FactorOpts::default());
    assert!(matches!(r, Err(FactorError::NotPositiveDefinite { col: _, value }) if value == 0.0));
    // LDLt also refuses (exactly-zero pivot).
    let r2 = SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt));
    assert!(matches!(r2, Err(FactorError::ZeroPivot { .. })));
}

#[test]
fn nan_and_inf_inputs_are_rejected() {
    let mut coo = CooMatrix::new(3, 3);
    coo.push(0, 0, 1.0);
    coo.push(1, 1, f64::NAN);
    coo.push(2, 2, 1.0);
    let a = coo.to_csc();
    let r = SparseCholesky::factorize(&a, &FactorOpts::default());
    assert!(matches!(r, Err(FactorError::NotPositiveDefinite { .. })));

    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 0, f64::INFINITY);
    coo.push(1, 1, 1.0);
    let a = coo.to_csc();
    // An infinite pivot is "positive": the factorization may accept it but
    // must not crash, and the solve must stay non-UB (values may be inf).
    if let Ok(chol) = SparseCholesky::factorize(&a, &FactorOpts::default()) {
        let _ = chol.solve(&[1.0, 1.0]);
    }
}

#[test]
fn pivot_error_reports_usable_column() {
    // Break positive-definiteness at a KNOWN original index and make sure
    // the reported (permuted) column maps back inside the matrix.
    let mut a = gen::random_spd(50, 3, 5);
    {
        let colptr = a.colptr().to_vec();
        let vals = a.values_mut();
        vals[colptr[20]] = -1.0; // diagonal of column 20
    }
    match SparseCholesky::factorize(&a, &FactorOpts::default()) {
        Err(FactorError::NotPositiveDefinite { col, .. }) => assert!(col < 50),
        other => panic!("expected failure, got ok={}", other.is_ok()),
    }
}

#[test]
fn empty_and_singleton_systems() {
    // 1x1.
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 4.0);
    let a = coo.to_csc();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    assert_eq!(chol.solve(&[8.0]), vec![2.0]);
}

#[test]
fn forest_matrix_disconnected_components() {
    // Block-diagonal with three disconnected tridiagonal blocks: the
    // assembly tree is a forest; every engine must handle multiple roots.
    let mut coo = CooMatrix::new(30, 30);
    for b in 0..3 {
        let base = b * 10;
        for i in 0..10 {
            coo.push(base + i, base + i, 2.0);
            if i + 1 < 10 {
                coo.push(base + i + 1, base + i, -1.0);
            }
        }
    }
    let a = coo.to_csc();
    let xstar: Vec<f64> = (0..30).map(|i| (i % 4) as f64).collect();
    let mut b = vec![0.0; 30];
    a.sym_spmv(&xstar, &mut b);
    for engine in [
        Engine::Sequential,
        Engine::Smp(SmpOpts {
            threads: 2,
            big_front: 8,
        }),
    ] {
        let chol = SparseCholesky::factorize(&a, &FactorOpts::new().engine(engine)).unwrap();
        let x = chol.solve(&b);
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-10);
        }
    }
    // Distributed too.
    let out = run_distributed(
        4,
        CostModel::zero_cost(),
        &a,
        Method::default(),
        &Default::default(),
        MapStrategy::default(),
        Some(&b),
    )
    .expect("SPD");
    let x = out.x.unwrap();
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-10);
    }
}

#[test]
fn malformed_matrix_market_inputs() {
    for bad in [
        "",                                                                   // empty
        "%%MatrixMarket matrix coordinate real symmetric",                    // no size line
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n0 1 1.0\n",  // 0-based index
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 abc\n",  // bad value
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // complex
    ] {
        assert!(io::parse_sym_lower(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn rectangular_matrix_market_rejected_for_solver() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n";
    assert!(io::parse_sym_lower(text).is_err());
}

/// Distributed engine at `p` simulated ranks, zero-cost model (degenerate
/// inputs should fail identically regardless of the machine).
fn dist_engine(p: usize) -> Engine {
    Engine::Dist(DistOpts {
        ranks: p,
        model: CostModel::zero_cost(),
        ..DistOpts::default()
    })
}

#[test]
fn dist_rejects_indefinite_at_2_4_8_ranks() {
    let a = gen::indefinite(60, 21);
    for p in [2, 4, 8] {
        let r = SparseCholesky::factorize(&a, &FactorOpts::new().engine(dist_engine(p)));
        match r {
            Err(FactorError::NotPositiveDefinite { value, .. }) => {
                assert!(value <= 0.0, "p={p}")
            }
            other => panic!(
                "p={p}: expected NotPositiveDefinite, got ok={}",
                other.is_ok()
            ),
        }
    }
}

#[test]
fn dist_rejects_zero_matrix_at_2_4_8_ranks() {
    // All-zero diagonal over enough columns that every rank count gets a
    // non-trivial mapping; the zero pivot must surface from whichever rank
    // owns it, as a typed error — never a NaN-filled "factor".
    let mut coo = CooMatrix::new(24, 24);
    for i in 0..24 {
        coo.push(i, i, 0.0);
    }
    let a = coo.to_csc();
    for p in [2, 4, 8] {
        let r = SparseCholesky::factorize(&a, &FactorOpts::new().engine(dist_engine(p)));
        assert!(
            matches!(r, Err(FactorError::NotPositiveDefinite { value, .. }) if value == 0.0),
            "p={p}"
        );
    }
}

#[test]
fn dist_rejects_nan_and_survives_inf_at_2_4_8_ranks() {
    let mut a = gen::tridiagonal(24);
    {
        let colptr = a.colptr().to_vec();
        let vals = a.values_mut();
        vals[colptr[11]] = f64::NAN; // diagonal of column 11
    }
    for p in [2, 4, 8] {
        let r = SparseCholesky::factorize(&a, &FactorOpts::new().engine(dist_engine(p)));
        assert!(
            matches!(r, Err(FactorError::NotPositiveDefinite { .. })),
            "p={p}: NaN diagonal must be rejected"
        );
    }

    let mut a = gen::tridiagonal(24);
    {
        let colptr = a.colptr().to_vec();
        let vals = a.values_mut();
        vals[colptr[5]] = f64::INFINITY;
    }
    for p in [2, 4, 8] {
        // An infinite pivot is "positive": the run may accept it but must
        // terminate with either a factor or a typed error — never hang.
        let _ = SparseCholesky::factorize(&a, &FactorOpts::new().engine(dist_engine(p)));
    }
}

#[test]
fn dist_factor_reports_dimension_mismatch_on_bad_rhs() {
    let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
    for p in [2, 4, 8] {
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().engine(dist_engine(p))).unwrap();
        let short = vec![1.0; 17];
        let r = chol.solve_with(RhsBlock::single(&short), &SolveOpts::new());
        assert!(
            matches!(r, Err(FactorError::DimensionMismatch { .. })),
            "p={p}"
        );
    }
}

#[test]
fn refinement_on_already_exact_solution_is_stable() {
    let a = gen::tridiagonal(20);
    let b = vec![0.0; 20]; // zero rhs: x = 0 exactly
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let out = chol
        .solve_with(RhsBlock::single(&b), &SolveOpts::new().refine(3))
        .unwrap();
    assert!(out.x.iter().all(|&v| v == 0.0));
    assert_eq!(out.residual, Some(0.0));
}
