//! Fault injection + recovery drills for the distributed engine.
//!
//! The contract under test, end to end:
//!
//! 1. **Bitwise recovery** — a rank crashed at *any* point of the run
//!    (virtual-time sweep, send-count sweep, any rank count) restarts from
//!    the checkpoint store's consistent cut and produces a factor bitwise
//!    identical to the fault-free run.
//! 2. **Typed failure** — when recovery is disabled or impossible, the run
//!    ends in a typed [`FactorError`] (`RankFailed` / `TimedOut`), never a
//!    hang, never a panic, and never a spurious `Deadlock`.
//! 3. **Checkpoints pay** — a late crash recovered from checkpoints redoes
//!    less work than the full factorization.
//!
//! Everything here is deterministic: same plan, same seed, same bits.

use parfact::core::dist::{
    prepare, run_distributed_faulty, run_distributed_prepared, DistOutcome, FaultRun,
};
use parfact::core::mapping::MapStrategy;
use parfact::core::solver::{DistOpts, Engine, FactorOpts, SparseCholesky};
use parfact::core::FactorError;
use parfact::mpsim::model::CostModel;
use parfact::mpsim::FaultPlan;
use parfact::order::Method;
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::gen;
use parfact::sparse::perm::Perm;
use parfact::symbolic::Symbolic;
use std::sync::Arc;

/// The shared test problem: big enough for real grid fronts at 8 ranks,
/// small enough to sweep crash times over many runs.
fn problem() -> CscMatrix {
    gen::laplace2d(14, 12, gen::Stencil2d::FivePoint)
}

struct Prepared {
    sym: Arc<Symbolic>,
    ap: CscMatrix,
    perm: Perm,
}

fn prep(a: &CscMatrix) -> Prepared {
    let (sym, ap, perm) = prepare(a, Method::default(), &Default::default());
    Prepared { sym, ap, perm }
}

fn fault_free(p: usize, pr: &Prepared) -> DistOutcome {
    run_distributed_prepared(
        p,
        CostModel::bluegene_p(),
        &pr.ap,
        &pr.sym,
        &pr.perm,
        MapStrategy::default(),
        false,
        None,
    )
    .unwrap()
}

fn recover(p: usize, pr: &Prepared, plan: FaultPlan, checkpoint: bool) -> FaultRun {
    run_distributed_faulty(
        p,
        CostModel::bluegene_p(),
        &pr.ap,
        &pr.sym,
        &pr.perm,
        MapStrategy::default(),
        None,
        1,
        false,
        &plan,
        None,
        checkpoint,
        2,
    )
    .unwrap()
}

#[test]
fn checkpoint_mode_without_faults_is_bitwise_identical() {
    // The deferred-send schedule changes when messages travel, never what
    // they carry: a checkpointing run with an empty plan must reproduce the
    // plain factor bit for bit.
    let a = problem();
    let pr = prep(&a);
    for p in [1usize, 2, 4, 8] {
        let plain = fault_free(p, &pr);
        let ck = recover(p, &pr, FaultPlan::new(), true);
        assert_eq!(ck.restarts, 0, "p={p}");
        assert!(ck.counts.is_zero(), "p={p}");
        assert_eq!(
            ck.outcome.factor.max_abs_diff(&plain.factor),
            0.0,
            "p={p}: checkpoint-mode factor must equal plain factor bitwise"
        );
    }
}

#[test]
fn crash_time_sweep_recovers_bitwise_at_2_4_8_ranks() {
    // Property sweep: crash one rank at each of a spread of virtual times
    // covering the whole makespan (epoch boundaries included), at every
    // rank count. Every single recovery must be bitwise.
    let a = problem();
    let pr = prep(&a);
    let mut crashes_fired = 0u64;
    for p in [2usize, 4, 8] {
        let plain = fault_free(p, &pr);
        let t_end = plain.factor_time_s;
        for victim in [p - 1, p / 2] {
            for k in 0..10 {
                let t = t_end * (0.03 + 0.105 * k as f64);
                let run = recover(p, &pr, FaultPlan::new().crash_at(victim, t), true);
                crashes_fired += run.counts.crashes;
                assert_eq!(
                    run.outcome.factor.max_abs_diff(&plain.factor),
                    0.0,
                    "p={p} victim={victim} t={t:.6}: recovered factor differs"
                );
                assert_eq!(run.restarts, run.counts.crashes, "one restart per crash");
            }
        }
    }
    assert!(
        crashes_fired >= 30,
        "sweep was supposed to actually kill ranks (fired {crashes_fired})"
    );
}

#[test]
fn crash_on_send_sweep_recovers_bitwise() {
    // Same property keyed on message counts instead of clocks: kill the
    // victim just before its k-th send, for ks across the whole run.
    let a = problem();
    let pr = prep(&a);
    for p in [2usize, 4, 8] {
        let plain = fault_free(p, &pr);
        for k in [1usize, 2, 3, 5, 8, 13, 21, 34] {
            let run = recover(p, &pr, FaultPlan::new().crash_on_send(1, k as u64), true);
            assert_eq!(
                run.outcome.factor.max_abs_diff(&plain.factor),
                0.0,
                "p={p} send={k}: recovered factor differs"
            );
        }
    }
}

#[test]
fn crash_early_recovers_from_scratch() {
    // A crash before the first completed epoch leaves no snapshot; the
    // restart must fall back to a clean re-run and still be bitwise.
    let a = problem();
    let pr = prep(&a);
    for p in [2usize, 4, 8] {
        let plain = fault_free(p, &pr);
        let run = recover(p, &pr, FaultPlan::new().crash_at(0, 1e-9), true);
        assert_eq!(run.counts.crashes, 1, "p={p}");
        assert_eq!(run.restarts, 1, "p={p}");
        assert_eq!(run.outcome.factor.max_abs_diff(&plain.factor), 0.0, "p={p}");
    }
}

#[test]
fn crash_late_restarts_from_checkpoint_not_scratch() {
    // A late crash must resume from the consistent cut: the final attempt
    // re-executes only the tail, so it performs measurably fewer flops
    // than the fault-free run (the whole point of checkpointing).
    let a = gen::laplace3d(8, 8, 8, gen::Stencil3d::SevenPoint);
    let pr = prep(&a);
    for p in [4usize, 8] {
        let plain = fault_free(p, &pr);
        let run = recover(
            p,
            &pr,
            FaultPlan::new().crash_at(p - 1, plain.factor_time_s * 0.85),
            true,
        );
        assert_eq!(run.counts.crashes, 1, "p={p}: late crash must fire");
        assert_eq!(run.restarts, 1, "p={p}");
        assert_eq!(run.outcome.factor.max_abs_diff(&plain.factor), 0.0, "p={p}");
        assert!(
            run.outcome.total_flops < 0.9 * plain.total_flops,
            "p={p}: restart redid {:.3e} of {:.3e} flops — checkpoint restore \
             should have skipped the completed epochs",
            run.outcome.total_flops,
            plain.total_flops
        );
    }
}

#[test]
fn delay_storm_and_duplicates_do_not_change_the_bits() {
    // Link faults shift arrival clocks and replay messages; the canonical
    // extend-add order makes the numbers immune. Pile delays and
    // duplication on every link around rank 0, plus a mid-run crash.
    let a = problem();
    let pr = prep(&a);
    for p in [2usize, 4, 8] {
        let plain = fault_free(p, &pr);
        let mut plan = FaultPlan::new().crash_at(p / 2, plain.factor_time_s * 0.4);
        for q in 1..p {
            plan = plan.delay_link(0, q, 40.0).delay_link(q, 0, 40.0);
        }
        plan = plan.duplicate_link(1 % p, 0);
        let run = recover(p, &pr, plan, true);
        assert_eq!(
            run.outcome.factor.max_abs_diff(&plain.factor),
            0.0,
            "p={p}: delay storm changed the factor"
        );
        assert!(run.counts.delayed_msgs > 0, "p={p}: storm never fired");
    }
}

#[test]
fn unrecovered_crash_is_a_typed_rank_failure_not_a_hang() {
    // max_restarts = 0: the crash verdict must surface as the typed error.
    let a = problem();
    let pr = prep(&a);
    for p in [2usize, 4, 8] {
        let plain = fault_free(p, &pr);
        let err = run_distributed_faulty(
            p,
            CostModel::bluegene_p(),
            &pr.ap,
            &pr.sym,
            &pr.perm,
            MapStrategy::default(),
            None,
            1,
            false,
            &FaultPlan::new().crash_at(1, plain.factor_time_s * 0.3),
            None,
            true,
            0,
        )
        .err()
        .expect("run must fail");
        match err {
            FactorError::RankFailed { ranks, detail } => {
                assert_eq!(ranks, vec![1], "p={p}");
                assert!(!detail.is_empty(), "p={p}");
            }
            other => panic!("p={p}: expected RankFailed, got {other}"),
        }
    }
}

#[test]
fn lost_messages_surface_as_typed_timeouts_never_spurious_deadlock() {
    // A delay storm pushing arrivals far past the receive deadline is the
    // simulator's model of message loss. With restarts exhausted it must
    // end in `TimedOut` carrying (rank, src, tag, waited) — and is never
    // misclassified as a protocol deadlock.
    let a = problem();
    let pr = prep(&a);
    for p in [2usize, 4] {
        let plain = fault_free(p, &pr);
        let mut plan = FaultPlan::new();
        for q in 1..p {
            plan = plan.delay_link(q, 0, 1e12);
        }
        let err = run_distributed_faulty(
            p,
            CostModel::bluegene_p(),
            &pr.ap,
            &pr.sym,
            &pr.perm,
            MapStrategy::default(),
            None,
            1,
            false,
            &plan,
            Some(plain.factor_time_s * 4.0),
            false,
            1,
        )
        .err()
        .expect("run must fail");
        match err {
            FactorError::TimedOut {
                rank,
                src,
                waited_s,
                ..
            } => {
                assert!(src > 0 && src < p, "p={p}: delayed source, got src={src}");
                assert!(rank < p, "p={p}");
                assert!(waited_s > 0.0, "p={p}");
            }
            FactorError::Deadlock { detail } => {
                panic!("p={p}: lost message misreported as deadlock: {detail}")
            }
            other => panic!("p={p}: expected TimedOut, got {other}"),
        }
    }
}

#[test]
fn numeric_errors_outrank_fault_verdicts_and_are_not_retried() {
    // An indefinite input under an armed fault plan must come back as the
    // numeric error, not as a fault verdict or a retry loop.
    let a = gen::indefinite(60, 7);
    let pr = prep(&a);
    let err = run_distributed_faulty(
        4,
        CostModel::zero_cost(),
        &pr.ap,
        &pr.sym,
        &pr.perm,
        MapStrategy::default(),
        None,
        1,
        false,
        &FaultPlan::new().crash_at(3, 1e30),
        None,
        true,
        2,
    )
    .err()
    .expect("run must fail");
    assert!(
        matches!(err, FactorError::NotPositiveDefinite { .. }),
        "got {err}"
    );
}

#[test]
fn solve_after_recovery_matches_fault_free_solution_bitwise() {
    let a = problem();
    let n = a.nrows();
    let pr = prep(&a);
    let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let plain = run_distributed_prepared(
        4,
        CostModel::bluegene_p(),
        &pr.ap,
        &pr.sym,
        &pr.perm,
        MapStrategy::default(),
        false,
        Some(&b),
    )
    .unwrap();
    let t = plain.factor_time_s;
    let run = run_distributed_faulty(
        4,
        CostModel::bluegene_p(),
        &pr.ap,
        &pr.sym,
        &pr.perm,
        MapStrategy::default(),
        Some(&b),
        1,
        false,
        &FaultPlan::new().crash_at(2, t * 0.5),
        None,
        true,
        2,
    )
    .unwrap();
    let xf = plain.x.unwrap();
    let xr = run.outcome.x.expect("recovered run solves too");
    for (i, (pv, rv)) in xf.iter().zip(&xr).enumerate() {
        assert_eq!(pv.to_bits(), rv.to_bits(), "x[{i}] differs after recovery");
    }
}

#[test]
fn facade_runs_fault_plans_and_reports_them() {
    // The whole path through `SparseCholesky`: parseable plan in
    // `DistOpts`, recovery underneath, fault section in the report.
    let a = problem();
    let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let chol = SparseCholesky::factorize(
        &a,
        &FactorOpts::new().engine(Engine::Dist(DistOpts {
            faults: FaultPlan::parse("crash:1@t=0,delay:0-1:10").unwrap(),
            checkpoint: true,
            ..DistOpts::default()
        })),
    )
    .unwrap();
    assert_eq!(
        chol.factor().max_abs_diff(seq.factor()),
        0.0,
        "recovered distributed factor must still equal the sequential one"
    );
    let faults = chol.report().faults.expect("fault section");
    assert_eq!(faults.crashes, 1);
    assert_eq!(faults.restarts, 1);
    // The enriched report round-trips through JSON with the fault section.
    let back = parfact::FactorReport::from_json_str(&chol.report().to_json_string()).unwrap();
    assert_eq!(&back, chol.report());
}

#[test]
fn repeated_recovery_runs_are_bitwise_reproducible() {
    // Determinism of the whole recovery pipeline: same plan, same machine,
    // same bits — clocks included.
    let a = problem();
    let pr = prep(&a);
    let plan = FaultPlan::new()
        .crash_at(2, 0.002)
        .delay_link(0, 3, 15.0)
        .duplicate_link(3, 0);
    let r1 = recover(4, &pr, plan.clone(), true);
    let r2 = recover(4, &pr, plan, true);
    assert_eq!(r1.outcome.factor.max_abs_diff(&r2.outcome.factor), 0.0);
    assert_eq!(
        r1.outcome.factor_time_s.to_bits(),
        r2.outcome.factor_time_s.to_bits()
    );
    assert_eq!(r1.total_makespan_s.to_bits(), r2.total_makespan_s.to_bits());
    assert_eq!(r1.counts, r2.counts);
    assert_eq!(r1.restarts, r2.restarts);
}
