//! Scalability-analytics contracts: comm-matrix recording is provably
//! non-perturbing (traced ≡ untraced, bitwise), the matrix reconciles with
//! the per-rank send/receive counters for arbitrary message patterns, the
//! paper's predicted communication volume brackets the measured volume,
//! and the metrics export round-trips through its own parser.

use parfact::core::dist::{prepare, run_distributed_prepared_traced};
use parfact::core::mapping::{map_tree, MapStrategy};
use parfact::core::scalability::predict;
use parfact::core::solver::{DistOpts, Engine, FactorOpts, SparseCholesky};
use parfact::mpsim::model::CostModel;
use parfact::mpsim::Machine;
use parfact::order::Method;
use parfact::sparse::gen;
use parfact::symbolic::AmalgOpts;
use parfact::trace::Registry;
use parfact::TraceLevel;
use proptest::prelude::*;

/// Acceptance criterion: turning the comm matrix on changes *nothing* —
/// not a factor bit, not a virtual clock tick — at 2, 4, and 8 ranks.
#[test]
fn comm_matrix_recording_is_bitwise_non_perturbing() {
    let a = gen::laplace3d(6, 5, 4, gen::Stencil3d::SevenPoint);
    let b = vec![1.0; a.nrows()];
    let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
    for ranks in [2usize, 4, 8] {
        let run = |comm: bool| {
            run_distributed_prepared_traced(
                ranks,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                Some(&b),
                1,
                false,
                comm,
            )
            .unwrap()
        };
        let plain = run(false);
        let recorded = run(true);
        assert!(plain.comm.is_none());
        let m = recorded.comm.as_ref().expect("matrix recorded");
        assert_eq!(
            recorded.factor.max_abs_diff(&plain.factor),
            0.0,
            "ranks={ranks}: recording perturbed the factor"
        );
        assert_eq!(
            recorded.factor_time_s.to_bits(),
            plain.factor_time_s.to_bits(),
            "ranks={ranks}: recording perturbed the factor makespan"
        );
        assert_eq!(
            recorded.solve_time_s.to_bits(),
            plain.solve_time_s.to_bits(),
            "ranks={ranks}: recording perturbed the solve makespan"
        );
        // Every deterministic stat agrees (`queue_peak` is a physical
        // high-water diagnostic and legitimately varies run to run).
        for (r, (a, b)) in recorded.stats.iter().zip(&plain.stats).enumerate() {
            let det = |s: &parfact::mpsim::RankStats| {
                (
                    s.clock_s.to_bits(),
                    s.compute_s.to_bits(),
                    s.comm_s.to_bits(),
                    s.comm_hidden_s.to_bits(),
                    s.flops.to_bits(),
                    (s.bytes_sent, s.msgs_sent, s.bytes_recv, s.msgs_recv),
                    s.mem_peak,
                )
            };
            assert_eq!(det(a), det(b), "ranks={ranks}: rank {r} stats differ");
        }
        // The matrix agrees with the independent per-rank counters.
        assert_eq!(m.nranks, ranks);
        for r in 0..ranks {
            assert_eq!(
                m.sent_bytes(r),
                recorded.stats[r].bytes_sent,
                "ranks={ranks}: row {r} sum != bytes_sent"
            );
            assert_eq!(
                m.posted_bytes(r),
                recorded.stats[r].bytes_recv,
                "ranks={ranks}: column {r} sum != bytes_recv"
            );
        }
        assert!(m.total_bytes() > 0, "ranks={ranks}: no traffic recorded");
        // No traffic on the diagonal: ranks never message themselves.
        for r in 0..ranks {
            for c in 0..m.nclasses() {
                assert_eq!(m.at(r, r, c), (0, 0), "ranks={ranks}: self-send");
            }
        }
    }
}

/// Acceptance criterion: the paper's model predicts the measured total
/// communication volume within 2x, through the public solver facade (the
/// report's `volume_model_ratio`), on a 3-D problem where the top of the
/// tree is genuinely distributed.
#[test]
fn measured_volume_is_within_2x_of_model() {
    let a = gen::laplace3d(12, 12, 12, gen::Stencil3d::SevenPoint);
    let opts = FactorOpts::new()
        .engine(Engine::Dist(DistOpts {
            ranks: 16,
            ..DistOpts::default()
        }))
        .trace(TraceLevel::Counters);
    let chol = SparseCholesky::factorize(&a, &opts).unwrap();
    let r = chol.report();
    let sc = r.scalability.as_ref().expect("dist traced run has model");
    let ratio = sc
        .volume_model_ratio()
        .expect("both measured and predicted volume present");
    assert!(
        (0.5..=2.0).contains(&ratio),
        "measured/predicted volume ratio {ratio} out of [0.5, 2]: measured {} predicted {}",
        sc.measured_total_bytes(),
        sc.predicted_total_bytes()
    );
    // The matrix rode along and its totals agree with the rank rows.
    let m = sc.comm.as_ref().expect("comm matrix recorded");
    let row_total: u64 = sc.ranks.iter().map(|r| r.measured_bytes).sum();
    assert_eq!(m.total_bytes(), row_total);
}

/// The standalone predictor and the report agree: same mapping, same
/// numbers (the solver does not re-derive the model differently).
#[test]
fn report_prediction_matches_standalone_predictor() {
    let a = gen::laplace2d(24, 24, gen::Stencil2d::FivePoint);
    let ranks = 8;
    let opts = FactorOpts::new()
        .engine(Engine::Dist(DistOpts {
            ranks,
            ..DistOpts::default()
        }))
        .trace(TraceLevel::Counters);
    let chol = SparseCholesky::factorize(&a, &opts).unwrap();
    let sc = chol.report().scalability.clone().expect("scalability");
    let map = map_tree(chol.symbolic(), ranks, MapStrategy::default());
    let pred = predict(chol.symbolic(), &map);
    assert_eq!(sc.ranks.len(), ranks);
    for (r, row) in sc.ranks.iter().enumerate() {
        assert_eq!(row.predicted_bytes, pred.bytes[r], "rank {r} bytes");
        assert_eq!(row.predicted_mem_peak, pred.mem[r], "rank {r} mem");
    }
}

/// `--metrics-out` payload: the Prometheus exposition built from a real
/// distributed report parses back and re-renders byte-identically, and
/// carries the scalability section.
#[test]
fn metrics_exposition_from_real_run_round_trips() {
    let a = gen::laplace3d(7, 6, 5, gen::Stencil3d::SevenPoint);
    let opts = FactorOpts::new()
        .engine(Engine::Dist(DistOpts {
            ranks: 4,
            ..DistOpts::default()
        }))
        .trace(TraceLevel::Counters);
    let chol = SparseCholesky::factorize(&a, &opts).unwrap();
    let reg = Registry::from_report(chol.report());
    let text = reg.to_prometheus();
    for needle in [
        "parfact_phase_seconds{phase=\"numeric\"}",
        "parfact_mem_peak_bytes",
        "parfact_volume_model_ratio",
        "parfact_comm_bytes_total{",
        "parfact_rank_stat{rank=\"0\",stat=\"bytes_sent\"}",
    ] {
        assert!(text.contains(needle), "missing {needle} in exposition");
    }
    let back = Registry::parse_prometheus(&text).unwrap();
    assert_eq!(back.to_prometheus(), text, "round trip not byte-identical");
}

/// One scripted message in a random exchange plan.
#[derive(Debug, Clone)]
struct Msg {
    src: usize,
    dst: usize,
    tag: u64,
    words: usize,
}

/// Deterministic random exchange plan: `nmsgs` messages between distinct
/// ranks (self-sends excluded — with `p = 1` the plan is empty and the
/// matrix must be all zeros). Derived from a seed because the vendored
/// proptest shim has no collection strategies.
fn make_plan(p: usize, seed: u64, nmsgs: usize) -> Vec<Msg> {
    if p < 2 {
        return Vec::new();
    }
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..nmsgs)
        .map(|_| {
            let src = (next() % p as u64) as usize;
            // Offset by 1..p so dst != src always.
            let dst = (src + 1 + (next() % (p as u64 - 1)) as usize) % p;
            Msg {
                src,
                dst,
                tag: next() % 24,
                words: (next() % 64) as usize,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite invariant at 1–8 ranks: for *any* message pattern, the
    /// comm-matrix row sums equal each rank's `bytes_sent`/`msgs_sent` and
    /// the column sums equal `bytes_recv`/`msgs_recv` once the plan drains
    /// — the matrix and the scalar counters never disagree.
    #[test]
    fn comm_matrix_reconciles_with_rank_counters(
        p in 1usize..=8,
        seed in any::<u64>(),
        nmsgs in 0usize..40,
    ) {
        let plan = make_plan(p, seed, nmsgs);
        let classify = |t: u64| (t % 3) as usize;
        let report = Machine::new(p, CostModel::zero_cost())
            .comm_matrix(&["a", "b", "c"], classify)
            .run({
                let plan = plan.clone();
                move |rank| {
                    let me = rank.rank();
                    // Send everything first (sends never block), then drain
                    // in plan order; per-(src,tag) FIFO matching makes the
                    // consume order deterministic.
                    for m in plan.iter().filter(|m| m.src == me) {
                        rank.send(m.dst, m.tag, vec![0.5f64; m.words]);
                    }
                    for m in plan.iter().filter(|m| m.dst == me) {
                        let v: Vec<f64> = rank.recv(m.src, m.tag);
                        assert_eq!(v.len(), m.words);
                    }
                }
            });
        let m = report.comm.as_ref().expect("classifier installed");
        let mut total_bytes = 0u64;
        let mut total_msgs = 0u64;
        for r in 0..p {
            prop_assert_eq!(m.sent_bytes(r), report.stats[r].bytes_sent, "row {}", r);
            prop_assert_eq!(m.sent_msgs(r), report.stats[r].msgs_sent, "row {}", r);
            prop_assert_eq!(m.posted_bytes(r), report.stats[r].bytes_recv, "col {}", r);
            prop_assert_eq!(m.posted_msgs(r), report.stats[r].msgs_recv, "col {}", r);
            total_bytes += report.stats[r].bytes_sent;
            total_msgs += report.stats[r].msgs_sent;
        }
        prop_assert_eq!(m.total_bytes(), total_bytes);
        prop_assert_eq!(m.total_msgs(), total_msgs);
        // Class totals partition the grand total.
        let by_class: u64 = (0..3).map(|c| m.class_bytes(c)).sum();
        prop_assert_eq!(by_class, total_bytes);
        // Expected byte count from the plan itself.
        let planned: u64 = plan.iter().map(|m| 8 * m.words as u64).sum();
        prop_assert_eq!(total_bytes, planned);
        prop_assert_eq!(total_msgs, plan.len() as u64);
    }
}
