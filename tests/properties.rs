//! Property-based tests (proptest) over randomly generated systems:
//! the invariants every engine must hold on *arbitrary* valid inputs, not
//! just the hand-picked cases.

use parfact::core::dist::run_distributed;
use parfact::core::mapping::MapStrategy;
use parfact::core::smp::SmpOpts;
use parfact::core::solver::{Engine, FactorOpts, RhsBlock, SolveOpts, SparseCholesky};
use parfact::mpsim::model::CostModel;
use parfact::order::Method;
use parfact::sparse::coo::CooMatrix;
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::perm::Perm;
use parfact::sparse::{gen, io, ops};
use parfact::symbolic::{colcount, etree, AmalgOpts, NONE};
use proptest::prelude::*;

/// Strategy: a random symmetric-lower SPD matrix (diagonally dominant) of
/// order 5..=60 with random sparsity.
fn spd_matrix() -> impl Strategy<Value = CscMatrix> {
    (5usize..=60, 1usize..=6, any::<u64>()).prop_map(|(n, k, seed)| gen::random_spd(n, k, seed))
}

/// Strategy: a random symmetric *pattern* matrix (values irrelevant) used
/// for symbolic-analysis invariants.
fn sym_pattern() -> impl Strategy<Value = CscMatrix> {
    (4usize..=50, 0usize..=5, any::<u64>()).prop_map(|(n, k, seed)| gen::random_spd(n, k, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn solve_has_small_residual_for_every_ordering(a in spd_matrix(), seed in 0usize..1000) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (((i * 31 + seed) % 89) as f64) / 11.0 - 4.0).collect();
        for ordering in [Method::Natural, Method::Rcm, Method::MinDegree, Method::default()] {
            let chol = SparseCholesky::factorize(&a, &FactorOpts::new().ordering(ordering)).unwrap();
            let x = chol.solve(&b);
            prop_assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-10, "ordering {:?}", ordering);
        }
    }

    #[test]
    fn smp_factor_is_bitwise_sequential(a in spd_matrix()) {
        let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let smp = SparseCholesky::factorize(
            &a,
            &FactorOpts::new().engine(Engine::Smp(SmpOpts { threads: 3, big_front: 16 })),
        ).unwrap();
        prop_assert_eq!(seq.factor().max_abs_diff(smp.factor()), 0.0);
    }

    #[test]
    fn distributed_factor_is_bitwise_sequential(a in spd_matrix(), p in 1usize..=6) {
        let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let out = run_distributed(
            p, CostModel::zero_cost(), &a,
            Method::default(), &AmalgOpts::default(), MapStrategy::default(), None,
        ).expect("SPD");
        prop_assert_eq!(out.factor.max_abs_diff(seq.factor()), 0.0);
    }

    #[test]
    fn permutation_roundtrip(n in 1usize..200, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Perm::random(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
        prop_assert_eq!(p.apply_inv_vec(&p.apply_vec(&x)), x);
        prop_assert_eq!(p.compose(&p.inverse()), Perm::identity(n));
    }

    #[test]
    fn symmetric_permutation_preserves_solution(a in spd_matrix(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Perm::random(n, &mut rng);
        let pa = p.apply_sym_lower(&a);
        pa.check_sym_lower().unwrap();
        // Solve both systems; solutions must match after unpermuting.
        let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let x = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap().solve(&b);
        let pb = p.apply_vec(&b);
        let px = SparseCholesky::factorize(&pa, &FactorOpts::default()).unwrap().solve(&pb);
        let back = p.apply_inv_vec(&px);
        for (u, v) in x.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn matrix_market_roundtrip(a in spd_matrix()) {
        let text = io::write_sym_lower(&a);
        let b = io::parse_sym_lower(&text).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn etree_is_postordered_after_postordering(a in sym_pattern()) {
        let parent0 = etree::etree(&a);
        let post = Perm::from_vec(etree::postorder(&parent0));
        let rl = etree::relabel(&parent0, &post);
        prop_assert!(etree::is_postordered(&rl));
        // Subtree sizes sum to n over roots.
        let sizes = etree::subtree_sizes(&rl);
        let total: usize = rl.iter().enumerate()
            .filter(|(_, &p)| p == NONE)
            .map(|(j, _)| sizes[j]).sum();
        prop_assert_eq!(total, a.ncols());
    }

    #[test]
    fn fast_colcounts_match_naive(a in sym_pattern()) {
        let parent0 = etree::etree(&a);
        let post = Perm::from_vec(etree::postorder(&parent0));
        let ap = post.apply_sym_lower(&a);
        let parent = etree::relabel(&parent0, &post);
        prop_assert_eq!(
            colcount::col_counts(&ap, &parent),
            colcount::col_counts_naive(&ap, &parent)
        );
    }

    #[test]
    fn factor_nnz_at_least_matrix_nnz(a in spd_matrix()) {
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        prop_assert!(chol.factor_nnz() >= a.nnz());
        prop_assert!(chol.factor_flops() >= chol.factor_nnz() as f64);
    }

    #[test]
    fn refinement_never_hurts(a in spd_matrix()) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 19) as f64 - 9.0).collect();
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x0 = chol.solve(&b);
        let r0 = ops::norm_inf(&ops::sym_residual(&a, &x0, &b));
        let out = chol
            .solve_with(RhsBlock::single(&b), &SolveOpts::new().refine(2))
            .unwrap();
        let r1 = out.residual.unwrap();
        prop_assert!(r1 <= r0.max(1e-14) * 1.0001, "refined {r1} vs plain {r0}");
    }

    #[test]
    fn orderings_are_valid_permutations(a in sym_pattern()) {
        for m in [Method::Rcm, Method::MinDegree, Method::default()] {
            let p = parfact::order::order_matrix(&a, m);
            // from_vec inside order_matrix validates; double-check coverage.
            let mut seen = vec![false; a.ncols()];
            for &o in p.perm() {
                prop_assert!(!seen[o]);
                seen[o] = true;
            }
        }
    }

    #[test]
    fn extend_add_is_child_order_independent_in_value(
        n in 6usize..30, k in 1usize..4, seed in any::<u64>()
    ) {
        // The *sum* assembled into a parent front must not depend on which
        // engine computed it; amalgamation settings shuffle the tree shape,
        // and the reconstruction must stay correct under all of them.
        let a = gen::random_spd(n, k, seed);
        for amalg in [
            AmalgOpts { min_width: 0, relax_frac: 0.0 },
            AmalgOpts { min_width: 4, relax_frac: 0.1 },
            AmalgOpts { min_width: 16, relax_frac: 0.5 },
        ] {
            let chol = SparseCholesky::factorize(&a, &FactorOpts::new().amalg(amalg)).unwrap();
            let err = parfact::core::factor::reconstruction_error(
                chol.factor(), chol.permuted_matrix());
            prop_assert!(err < 1e-9, "amalg {:?}: err {err}", amalg);
        }
    }

    #[test]
    fn coo_duplicate_summing(n in 2usize..20, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut dense = vec![0.0f64; n * n];
        for _ in 0..4 * n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            let v = rng.gen_range(-2.0..2.0);
            coo.push(i, j, v);
            dense[j * n + i] += v;
        }
        let csc = coo.to_csc();
        for j in 0..n {
            for i in 0..n {
                let got = csc.get(i, j).unwrap_or(0.0);
                prop_assert!((got - dense[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
