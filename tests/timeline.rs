//! Timeline-profiler integration tests: lane invariants on arbitrary
//! systems (proptest) and the structure of the exported Chrome trace.

use parfact::core::solver::{DistOpts, Engine, FactorOpts, SparseCholesky};
use parfact::sparse::gen;
use parfact::trace::{json, LaneKind, Timeline};
use parfact::TraceLevel;
use proptest::prelude::*;

fn dist_opts(ranks: usize) -> FactorOpts {
    FactorOpts::new()
        .engine(Engine::Dist(DistOpts {
            ranks,
            ..DistOpts::default()
        }))
        .trace(TraceLevel::Timeline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On arbitrary SPD systems and rank counts, the recorded spans form a
    /// valid timeline: every span has non-negative duration, lanes are
    /// start-sorted, and real (positive-duration) intervals on one lane
    /// never overlap — in *exact* virtual time, tolerance zero.
    #[test]
    fn dist_spans_form_valid_lanes(
        n in 12usize..=50,
        k in 1usize..=4,
        seed in any::<u64>(),
        ranks in 1usize..=6,
    ) {
        let a = gen::random_spd(n, k, seed);
        let chol = SparseCholesky::factorize(&a, &dist_opts(ranks)).unwrap();
        let r = chol.report();
        prop_assert!(!r.spans.is_empty());
        let tl = Timeline::from_spans(&r.spans);
        // The full stream (numeric virtual-time lanes + wall-clock analysis
        // lanes) tolerates float rounding; the numeric lanes alone must be
        // exact — tolerance zero.
        prop_assert!(tl.validate(1e-9).is_ok(), "{:?}", tl.validate(1e-9));
        let numeric: Vec<_> = r
            .spans
            .iter()
            .filter(|s| !s.phase.is_analysis())
            .cloned()
            .collect();
        let ntl = Timeline::from_spans(&numeric);
        prop_assert!(ntl.validate(0.0).is_ok(), "{:?}", ntl.validate(0.0));
        // Every rank that did attributed work appears, and no numeric span
        // starts before virtual time zero or after the profiled makespan.
        // Analysis lanes run on their own wall-clock origin and belong to
        // analysis workers, not ranks, so only non-negativity applies.
        let p = r.profile.as_ref().unwrap();
        for lane in &tl.lanes {
            if lane.kind == LaneKind::Analysis {
                for s in &lane.spans {
                    prop_assert!(s.start_s >= 0.0);
                }
                continue;
            }
            prop_assert!(lane.who < ranks);
            for s in &lane.spans {
                prop_assert!(s.start_s >= 0.0);
                prop_assert!(s.start_s + s.dur_s <= p.makespan_s + 1e-12);
            }
        }
        prop_assert!(p.critical_path_s <= p.makespan_s + 1e-12);
    }
}

/// Golden structural test of the Chrome Trace Event export: parse the JSON
/// back and check the contract that Perfetto / `chrome://tracing` rely on.
#[test]
fn chrome_trace_export_structure() {
    let a = gen::laplace3d(6, 6, 5, gen::Stencil3d::SevenPoint);
    let ranks = 4;
    // Pin the analysis pool to 2 workers so analysis-lane pids stay inside
    // the rank range regardless of the host's core count.
    let chol = SparseCholesky::factorize(&a, &dist_opts(ranks).analysis_threads(2)).unwrap();
    let tl = Timeline::from_spans(&chol.report().spans);
    let text = tl.to_chrome_trace("rank").to_string_compact();

    let j = json::parse(&text).expect("export is valid JSON");
    assert!(j.get("displayTimeUnit").is_some());
    let events = j
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut lanes_named: Vec<(u64, u64)> = Vec::new(); // (pid, tid)
    let mut process_named = vec![false; ranks];
    let mut x_events = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        let pid = ev.get("pid").and_then(|p| p.as_f64()).expect("pid") as usize;
        assert!(pid < ranks, "pid {pid} out of range");
        match ph {
            "M" => {
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
                let arg = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .expect("metadata name arg");
                match name {
                    "process_name" => {
                        assert_eq!(arg, format!("rank {pid}"));
                        process_named[pid] = true;
                    }
                    "thread_name" => {
                        let tid = ev.get("tid").and_then(|t| t.as_f64()).unwrap() as u64;
                        let expected = LaneKind::ALL.iter().find(|k| k.tid() == tid).unwrap();
                        assert_eq!(arg, expected.name());
                        lanes_named.push((pid as u64, tid));
                    }
                    other => panic!("unexpected metadata event '{other}'"),
                }
            }
            "X" => {
                // Complete events carry microsecond timestamps + duration.
                let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts");
                let dur = ev.get("dur").and_then(|d| d.as_f64()).expect("dur");
                assert!(ts >= 0.0 && dur > 0.0);
                assert!(ev.get("name").is_some() && ev.get("cat").is_some());
                x_events += 1;
            }
            "i" => {
                // Instant events (zero-duration markers) need a scope.
                assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t"));
            }
            other => panic!("unexpected event phase '{other}'"),
        }
    }
    assert!(x_events > 0, "no complete events exported");
    assert!(process_named.iter().all(|&p| p), "every rank gets a name");
    // The acceptance bar: the 3 numeric lanes (compute/comm/wait) per
    // rank, plus an analysis lane on every pid that hosted an analysis
    // worker (pid 0 always does — the sequential prologue runs there).
    for pid in 0..ranks as u64 {
        let numeric = lanes_named
            .iter()
            .filter(|(p, t)| *p == pid && *t != LaneKind::Analysis.tid())
            .count();
        assert_eq!(numeric, 3, "rank {pid} must expose 3 numeric lanes");
    }
    assert!(
        lanes_named.contains(&(0, LaneKind::Analysis.tid())),
        "worker 0 must expose an analysis lane"
    );
}

/// The sync (strict postorder) schedule skews per-rank clocks far more
/// than the event-driven one; the profile invariant must hold regardless.
#[test]
fn sync_schedule_profile_stays_within_makespan() {
    let a = gen::laplace3d(6, 6, 6, gen::Stencil3d::SevenPoint);
    for ranks in [4, 8] {
        let chol = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .engine(Engine::Dist(DistOpts {
                    ranks,
                    sync_schedule: true,
                    ..DistOpts::default()
                }))
                .trace(TraceLevel::Timeline),
        )
        .unwrap();
        let p = chol.report().profile.as_ref().unwrap();
        assert!(
            p.critical_path_s + p.critical_path_wait_s <= p.makespan_s + 1e-12,
            "ranks {ranks}: path {} + wait {} vs makespan {}",
            p.critical_path_s,
            p.critical_path_wait_s,
            p.makespan_s
        );
        assert!(p.critical_path_s > 0.0);
    }
}

/// The same factorization traced and untraced produces bitwise-identical
/// factors through the façade — tracing is pure observation.
#[test]
fn timeline_trace_is_pure_observation() {
    let a = gen::laplace2d(18, 16, gen::Stencil2d::FivePoint);
    let plain = SparseCholesky::factorize(
        &a,
        &FactorOpts::new().engine(Engine::Dist(DistOpts::default())),
    )
    .unwrap();
    let traced = SparseCholesky::factorize(&a, &dist_opts(DistOpts::default().ranks)).unwrap();
    assert_eq!(traced.factor().max_abs_diff(plain.factor()), 0.0);
    assert!(plain.report().spans.is_empty());
    assert!(!traced.report().spans.is_empty());
}
