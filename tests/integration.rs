//! Cross-crate integration tests: the full pipeline (generator → ordering →
//! symbolic → numeric → solve) through every engine, checked against
//! independent oracles.

use parfact::core::baseline::{fanout, leftlook};
use parfact::core::dist::run_distributed;
use parfact::core::mapping::MapStrategy;
use parfact::core::smp::SmpOpts;
use parfact::core::solver::{Engine, FactorOpts, SparseCholesky};
use parfact::core::FactorKind;
use parfact::mpsim::model::CostModel;
use parfact::mpsim::Machine;
use parfact::order::Method;
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::{gen, io};
use parfact::symbolic::AmalgOpts;

fn rhs_for(a: &CscMatrix, seed: usize) -> (Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let xstar: Vec<f64> = (0..n)
        .map(|i| (((i * 37 + seed * 101) % 97) as f64) / 17.0 - 2.5)
        .collect();
    let mut b = vec![0.0; n];
    a.sym_spmv(&xstar, &mut b);
    (xstar, b)
}

#[test]
fn end_to_end_all_engines_agree_on_solution() {
    let matrices: Vec<(&str, CscMatrix)> = vec![
        (
            "laplace2d",
            gen::laplace2d(20, 17, gen::Stencil2d::FivePoint),
        ),
        (
            "laplace3d",
            gen::laplace3d(7, 6, 7, gen::Stencil3d::SevenPoint),
        ),
        ("elasticity", gen::elasticity3d(4, 4, 3)),
        ("random", gen::random_spd(400, 6, 7)),
    ];
    for (name, a) in &matrices {
        let (xstar, b) = rhs_for(a, 1);
        let seq = SparseCholesky::factorize(a, &FactorOpts::default()).unwrap();
        let smp = SparseCholesky::factorize(
            a,
            &FactorOpts::new().engine(Engine::Smp(SmpOpts {
                threads: 4,
                big_front: 96,
            })),
        )
        .unwrap();
        let xs = seq.solve(&b);
        let xp = smp.solve(&b);
        for ((a_, b_), c_) in xs.iter().zip(&xp).zip(&xstar) {
            assert!((a_ - b_).abs() < 1e-12, "{name}: engines disagree");
            assert!((a_ - c_).abs() < 1e-6, "{name}: wrong solution");
        }
    }
}

#[test]
fn multifrontal_matches_leftlooking_oracle() {
    // Same permutation, strict supernodes: identical factor values.
    let a0 = gen::laplace2d(15, 15, gen::Stencil2d::FivePoint);
    let perm = parfact::order::order_matrix(&a0, Method::MinDegree);
    let a = perm.apply_sym_lower(&a0);
    let oracle = leftlook::factorize_leftlooking(&a).unwrap();

    let chol = SparseCholesky::factorize(
        &a,
        &FactorOpts::new()
            .ordering(Method::Natural)
            .amalg(AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            }),
    )
    .unwrap();
    // Compare column by column in the permuted space of the solver.
    let l_mf = chol.factor().to_sparse_l();
    // chol applied its own postorder on top; map oracle columns through it.
    let post = &chol.factor().perm;
    for newc in 0..a.ncols() {
        let oldc = post.old_of_new(newc);
        let (rows_mf, vals_mf) = l_mf.col(newc);
        let (rows_or, vals_or) = oracle.l.col(oldc);
        assert_eq!(rows_mf.len(), rows_or.len(), "col {newc} nnz");
        for ((rm, vm), (ro, vo)) in rows_mf.iter().zip(vals_mf).zip(rows_or.iter().zip(vals_or)) {
            assert_eq!(post.old_of_new(*rm), *ro, "row index mismatch");
            assert!(
                (vm - vo).abs() <= 1e-12 * vo.abs().max(1.0),
                "value mismatch at col {newc}: {vm} vs {vo}"
            );
        }
    }
}

#[test]
fn distributed_equals_sequential_and_solves() {
    let a = gen::elasticity3d(4, 3, 3);
    let (xstar, b) = rhs_for(&a, 3);
    let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    for p in [2usize, 5, 8] {
        let out = run_distributed(
            p,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::default(),
            Some(&b),
        )
        .expect("SPD");
        assert_eq!(
            out.factor.max_abs_diff(seq.factor()),
            0.0,
            "p={p}: distributed factor differs from sequential"
        );
        let x = out.x.unwrap();
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-6, "p={p}");
        }
    }
}

#[test]
fn fanout_baseline_solves_same_system() {
    let a0 = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
    let fill = parfact::order::order_matrix(&a0, Method::default());
    let a = fill.apply_sym_lower(&a0);
    let n = a.ncols();
    let gathered = std::sync::Mutex::new(None);
    Machine::new(4, CostModel::bluegene_p()).run(|rank| {
        let cols = fanout::factorize_rank(rank, &a).unwrap();
        if let Some(l) = fanout::gather_l(rank, n, &cols) {
            *gathered.lock().unwrap() = Some(l);
        }
    });
    let l = gathered.into_inner().unwrap().expect("gathered L");
    // Forward/backward solve with the gathered sparse factor.
    let (xstar, b) = rhs_for(&a, 5);
    let mut x = b.clone();
    for j in 0..n {
        let (rows, vals) = l.col(j);
        let xj = x[j] / vals[0];
        x[j] = xj;
        for (&r, &v) in rows[1..].iter().zip(&vals[1..]) {
            x[r] -= v * xj;
        }
    }
    for j in (0..n).rev() {
        let (rows, vals) = l.col(j);
        let mut acc = x[j];
        for (&r, &v) in rows[1..].iter().zip(&vals[1..]) {
            acc -= v * x[r];
        }
        x[j] = acc / vals[0];
    }
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-7);
    }
}

#[test]
fn matrix_market_roundtrip_through_solver() {
    let a = gen::random_spd(120, 5, 99);
    let text = io::write_sym_lower(&a);
    let a2 = io::parse_sym_lower(&text).unwrap();
    assert_eq!(a, a2);
    let (xstar, b) = rhs_for(&a2, 7);
    let chol = SparseCholesky::factorize(&a2, &FactorOpts::default()).unwrap();
    let x = chol.solve(&b);
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-7);
    }
}

#[test]
fn ldlt_pipeline_on_indefinite_system() {
    let a = gen::indefinite(150, 11);
    let (xstar, b) = rhs_for(&a, 9);
    let chol = SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt)).unwrap();
    let x = chol.solve(&b);
    for (xi, xs) in x.iter().zip(&xstar) {
        assert!((xi - xs).abs() < 1e-6);
    }
    // Sylvester check: pivot signs reveal the single negative eigenvalue.
    assert_eq!(chol.factor().d.iter().filter(|&&d| d < 0.0).count(), 1);
}

#[test]
fn dist_memory_and_gflops_reporting() {
    let a = gen::laplace3d(8, 8, 8, gen::Stencil3d::SevenPoint);
    let out1 = run_distributed(
        1,
        CostModel::bluegene_p(),
        &a,
        Method::default(),
        &AmalgOpts::default(),
        MapStrategy::default(),
        None,
    )
    .expect("SPD");
    let out8 = run_distributed(
        8,
        CostModel::bluegene_p(),
        &a,
        Method::default(),
        &AmalgOpts::default(),
        MapStrategy::default(),
        None,
    )
    .expect("SPD");
    assert!(out8.max_factor_bytes < out1.max_factor_bytes);
    assert!(out8.factor_gflops() > 0.0);
    // Assembly accounting differs slightly between the local and
    // distributed paths; totals must agree to within a couple percent.
    let rel = (out8.total_flops - out1.total_flops).abs() / out1.total_flops;
    assert!(rel < 0.02, "flop totals diverged: {rel}");
    assert!(out8.max_mem_peak() < out1.max_mem_peak());
}

#[test]
fn mapping_ablation_proportional_beats_flat() {
    let a = gen::laplace3d(10, 10, 10, gen::Stencil3d::SevenPoint);
    let common = |strategy| {
        run_distributed(
            8,
            CostModel::bluegene_p(),
            &a,
            Method::default(),
            &AmalgOpts::default(),
            strategy,
            None,
        )
        .expect("SPD")
    };
    let prop = common(MapStrategy::default());
    let flat = common(MapStrategy::Flat {
        use_2d: true,
        nb: parfact::dense::chol::NB,
    });
    // Identical numerics...
    assert_eq!(prop.factor.max_abs_diff(&flat.factor), 0.0);
    // ...but flat mapping pays for distributing every tiny front.
    // The gap widens with problem size (EXP-A1 shows the full sweep); at
    // this small size demand a conservative 25%.
    assert!(
        flat.factor_time_s > 1.25 * prop.factor_time_s,
        "flat {:.6}s should be slower than proportional {:.6}s",
        flat.factor_time_s,
        prop.factor_time_s
    );
}
