#!/usr/bin/env sh
# Single entry point for the committed benchmark artifacts.
#
# Check mode (default) is a warn-only performance gate: run the quick
# kernel sweep and compare each (kernel, n, k) packed_gflops rate against
# the committed BENCH_pr2.json baseline. Prints a WARN line for every
# kernel that regressed by more than the tolerance (default 30%, override
# with BENCH_CHECK_TOL=0.5). Also checks the batched-solve artifact
# (BENCH_pr6.json): the committed batched-vs-singles speedup must hold
# the 2x acceptance bar, and a fresh quick bench_solve run must keep
# blocked solves at least as fast as single-RHS loops. Finally checks the
# parallel-analysis artifact (BENCH_pr7.json): the committed modeled
# speedup at 4 threads must hold 1.5x, and a fresh quick bench_analysis
# run must stay deterministic and at least break even. Finally measures
# crash-recovery overhead: an injected crash with checkpointed restart
# must keep the end-to-end simulated makespan under 2.5x fault-free.
#
#   scripts/bench_check.sh [baseline.json]     (default: BENCH_pr2.json)
#
# Regen mode rebuilds the committed artifacts with full (non-quick) runs
# on an otherwise-idle machine — this replaces the old bench_pr2.sh:
#
#   scripts/bench_check.sh regen [pr2|analysis|all]   (default: all)
#
# Check mode always exits 0: CI machines are noisy and the committed
# baseline comes from a different host, so this is a trend alarm, not a
# hard gate.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "regen" ]; then
    which="${2:-all}"
    cargo build --release -p parfact-bench
    case "$which" in
    pr2 | all) ./target/release/bench_pr2 BENCH_pr2.json ;;
    esac
    case "$which" in
    analysis | pr7 | all) ./target/release/bench_analysis BENCH_pr7.json ;;
    esac
    case "$which" in
    scale | pr9 | all) ./target/release/bench_scale BENCH_pr9.json ;;
    esac
    case "$which" in
    pr2 | analysis | pr7 | scale | pr9 | all) exit 0 ;;
    *)
        echo "unknown regen target '$which' (pr2|analysis|scale|all)" >&2
        exit 2
        ;;
    esac
fi

baseline="${1:-BENCH_pr2.json}"
tol="${BENCH_CHECK_TOL:-0.3}"
fresh=$(mktemp /tmp/bench_check.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT

BENCH_QUICK=1 cargo run -q --release -p parfact-bench --bin bench_pr2 -- "$fresh"

# Flatten one kernel record per line: kernel|n|k|packed_gflops. The JSON
# is machine-written (one "key": value pair per line), so line-oriented
# awk is enough — no JSON parser dependency.
flatten() {
    awk '
        /"kernel":/ { gsub(/[",]/, "", $2); kernel = $2 }
        /"n":/      { gsub(/,/, "", $2); n = $2 }
        /"k":/      { gsub(/,/, "", $2); k = $2 }
        /"packed_gflops":/ {
            gsub(/,/, "", $2)
            print kernel "|" n "|" k "|" $2
        }
    ' "$1"
}

flatten "$baseline" > "$fresh.base"
flatten "$fresh" > "$fresh.new"
trap 'rm -f "$fresh" "$fresh.base" "$fresh.new"' EXIT

warned=0
compared=0
while IFS='|' read -r kernel n k base_gf; do
    new_gf=$(awk -F'|' -v key="$kernel|$n|$k" \
        '$1 "|" $2 "|" $3 == key { print $4 }' "$fresh.new")
    [ -n "$new_gf" ] || continue
    compared=$((compared + 1))
    is_slow=$(awk -v b="$base_gf" -v c="$new_gf" -v t="$tol" \
        'BEGIN { print (c < b * (1 - t)) ? 1 : 0 }')
    if [ "$is_slow" = 1 ]; then
        echo "WARN: $kernel n=$n k=$k: $new_gf GF/s vs baseline $base_gf GF/s"
        warned=1
    else
        echo "ok:   $kernel n=$n k=$k: $new_gf GF/s (baseline $base_gf)"
    fi
done < "$fresh.base"

if [ "$compared" = 0 ]; then
    echo "bench_check: no comparable (kernel, n, k) entries between the quick run and $baseline"
elif [ "$warned" = 1 ]; then
    echo "bench_check: kernel rates regressed vs $baseline (warn-only; see above)"
else
    echo "bench_check: $compared kernel rates within ${tol} of $baseline"
fi

# --- Batched-solve gate (warn-only, like the kernel gate above) ----------
# Two checks against BENCH_pr6.json: the committed artifact must still
# claim the >= 2x batched-vs-singles speedup the PR was accepted with, and
# a fresh quick run must not show blocked solves LOSING to single-RHS
# loops (speedup < 1 would mean the blocked sweep itself regressed; the
# quick grid is too small to reproduce the full 2x headroom).
solve_baseline="BENCH_pr6.json"
if [ -f "$solve_baseline" ]; then
    # "speedup" appears exactly once, inside batched_vs_singles.
    committed=$(awk '/"speedup":/ { gsub(/,/, "", $2); print $2 }' "$solve_baseline")
    if [ -z "$committed" ]; then
        echo "WARN: $solve_baseline has no batched_vs_singles.speedup entry"
    else
        below=$(awk -v s="$committed" 'BEGIN { print (s < 2.0) ? 1 : 0 }')
        if [ "$below" = 1 ]; then
            echo "WARN: committed $solve_baseline speedup ${committed}x is below the 2x acceptance bar"
        else
            echo "ok:   committed batched-vs-singles speedup ${committed}x (bar: 2x)"
        fi
    fi

    solve_fresh=$(mktemp /tmp/bench_solve.XXXXXX.json)
    BENCH_QUICK=1 cargo run -q --release -p parfact-bench --bin bench_solve -- "$solve_fresh"
    quick_speedup=$(awk '/"speedup":/ { gsub(/,/, "", $2); print $2 }' "$solve_fresh")
    rm -f "$solve_fresh"
    if [ -z "$quick_speedup" ]; then
        echo "WARN: quick bench_solve run produced no speedup entry"
    else
        losing=$(awk -v s="$quick_speedup" 'BEGIN { print (s < 1.0) ? 1 : 0 }')
        if [ "$losing" = 1 ]; then
            echo "WARN: quick run: blocked solve slower than single-RHS loop (${quick_speedup}x)"
        else
            echo "ok:   quick batched-vs-singles speedup ${quick_speedup}x (bar: 1x on the quick grid)"
        fi
    fi
else
    echo "WARN: $solve_baseline is missing — the batched-solve gate did NOT run; restore the committed artifact or regen it (scripts/bench_check.sh regen)"
fi

# --- Analysis-scaling gate (warn-only) -----------------------------------
# Two checks against BENCH_pr7.json: the committed artifact must still
# claim the >= 1.5x modeled analysis speedup at 4 threads the parallel-
# analysis work was accepted with (the artifact itself records ~2.6x on
# lap3d-32; 1.5x leaves re-measurement margin), and a fresh quick run must
# stay bitwise deterministic with a modeled speedup of at least 1x (the
# quick grid is too small to reproduce the full headroom).
analysis_baseline="BENCH_pr7.json"
if [ -f "$analysis_baseline" ]; then
    # modeled_speedup appears once per sweep row and once in the headline
    # object; the headline (the 4-thread figure) is written last.
    committed=$(awk '/"modeled_speedup":/ { gsub(/,/, "", $2); v = $2 } END { print v }' "$analysis_baseline")
    if [ -z "$committed" ]; then
        echo "WARN: $analysis_baseline has no headline modeled_speedup entry"
    else
        below=$(awk -v s="$committed" 'BEGIN { print (s < 1.5) ? 1 : 0 }')
        if [ "$below" = 1 ]; then
            echo "WARN: committed modeled analysis speedup ${committed}x is below the 1.5x bar"
        else
            echo "ok:   committed modeled analysis speedup ${committed}x at 4 threads (bar: 1.5x)"
        fi
    fi

    analysis_fresh=$(mktemp /tmp/bench_analysis.XXXXXX.json)
    BENCH_QUICK=1 cargo run -q --release -p parfact-bench --bin bench_analysis -- "$analysis_fresh"
    quick_speedup=$(awk '/"modeled_speedup":/ { gsub(/,/, "", $2); v = $2 } END { print v }' "$analysis_fresh")
    quick_det=$(awk '/"deterministic":/ { gsub(/,/, "", $2); v = $2 } END { print v }' "$analysis_fresh")
    rm -f "$analysis_fresh"
    if [ "$quick_det" != "true" ]; then
        echo "WARN: quick bench_analysis run was not bitwise deterministic"
    fi
    if [ -z "$quick_speedup" ]; then
        echo "WARN: quick bench_analysis run produced no modeled_speedup entry"
    else
        losing=$(awk -v s="$quick_speedup" 'BEGIN { print (s < 1.0) ? 1 : 0 }')
        if [ "$losing" = 1 ]; then
            echo "WARN: quick run: modeled analysis speedup ${quick_speedup}x below break-even"
        else
            echo "ok:   quick modeled analysis speedup ${quick_speedup}x at 4 threads (bar: 1x on the quick grid)"
        fi
    fi
else
    echo "WARN: $analysis_baseline is missing — the analysis-scaling gate did NOT run; restore the committed artifact or regen it (scripts/bench_check.sh regen)"
fi

# --- Scalability-model gate (warn-only) ----------------------------------
# Two checks against BENCH_pr9.json: the committed artifact's headline
# volume_model_ratio (measured / predicted comm volume at p=64 on
# lap3d-32) must still sit inside the [0.5, 2] acceptance window, and a
# fresh quick bench_scale run's ratio must agree with the committed one
# within 1.25x in either direction (the quick grid is smaller, but both
# ratios are dimensionless model fits and should be near 1; a drift past
# 1.25x means the engine's traffic or the model changed).
scale_baseline="BENCH_pr9.json"
if [ -f "$scale_baseline" ]; then
    # volume_model_ratio appears once per sweep row and once in the
    # headline object; the headline is written last.
    committed=$(awk '/"volume_model_ratio":/ { gsub(/,/, "", $2); v = $2 } END { print v }' "$scale_baseline")
    if [ -z "$committed" ]; then
        echo "WARN: $scale_baseline has no headline volume_model_ratio entry"
    else
        out=$(awk -v r="$committed" 'BEGIN { print (r < 0.5 || r > 2.0) ? 1 : 0 }')
        if [ "$out" = 1 ]; then
            echo "WARN: committed volume_model_ratio ${committed} is outside the [0.5, 2] acceptance window"
        else
            echo "ok:   committed volume_model_ratio ${committed} at p=64 (window: [0.5, 2])"
        fi
    fi

    scale_fresh=$(mktemp /tmp/bench_scale.XXXXXX.json)
    BENCH_QUICK=1 cargo run -q --release -p parfact-bench --bin bench_scale -- "$scale_fresh"
    quick_ratio=$(awk '/"volume_model_ratio":/ { gsub(/,/, "", $2); v = $2 } END { print v }' "$scale_fresh")
    rm -f "$scale_fresh"
    if [ -z "$quick_ratio" ]; then
        echo "WARN: quick bench_scale run produced no volume_model_ratio entry"
    else
        drift=$(awk -v q="$quick_ratio" -v c="$committed" \
            'BEGIN { r = q / c; if (r < 1) r = 1 / r; print (r > 1.25) ? 1 : 0 }')
        if [ "$drift" = 1 ]; then
            echo "WARN: quick volume_model_ratio ${quick_ratio} drifted >1.25x from committed ${committed}"
        else
            echo "ok:   quick volume_model_ratio ${quick_ratio} (committed ${committed}, tolerance 1.25x)"
        fi
    fi
else
    echo "WARN: $scale_baseline is missing — the scalability-model gate did NOT run; restore the committed artifact or regen it (scripts/bench_check.sh regen scale)"
fi

# --- Fault-recovery overhead gate (warn-only) ----------------------------
# Factor the same problem fault-free and under a deterministic mid-run
# crash with checkpointed recovery, then compare simulated makespans. The
# recovery run pays for the crashed attempt plus a restart that replays
# only the tail past the checkpoint cut, so its end-to-end virtual cost
# must stay under 2.5x the fault-free makespan (a scratch restart alone
# would already cost ~2x; the margin absorbs the deferred-send schedule).
ff_json=$(mktemp /tmp/bench_fault_ff.XXXXXX.json)
cr_json=$(mktemp /tmp/bench_fault_cr.XXXXXX.json)
cargo run -q --release --bin parfact-solve -- --gen lap3d:12 --ranks 8 \
    --report "$ff_json" >/dev/null
cargo run -q --release --bin parfact-solve -- --gen lap3d:12 --ranks 8 \
    --inject crash:3@send=5 --report "$cr_json" >/dev/null
ff_mk=$(awk '/"clock_s":/ { gsub(/,/, "", $2); if ($2 > m) m = $2 } END { print m }' "$ff_json")
cr_mk=$(awk '/"total_makespan_s":/ { gsub(/,/, "", $2); print $2 }' "$cr_json")
crashes=$(awk '/"crashes":/ { gsub(/,/, "", $2); print $2 }' "$cr_json")
rm -f "$ff_json" "$cr_json"
if [ -z "$ff_mk" ] || [ -z "$cr_mk" ]; then
    echo "WARN: fault-recovery runs produced no makespan entries"
elif [ "${crashes:-0}" = 0 ]; then
    echo "WARN: injected crash never fired; recovery overhead not measured"
else
    ratio=$(awk -v c="$cr_mk" -v f="$ff_mk" 'BEGIN { printf "%.2f", c / f }')
    over=$(awk -v r="$ratio" 'BEGIN { print (r > 2.5) ? 1 : 0 }')
    if [ "$over" = 1 ]; then
        echo "WARN: crash-recovery makespan ${cr_mk}s is ${ratio}x fault-free ${ff_mk}s (bar: 2.5x)"
    else
        echo "ok:   crash-recovery makespan ${cr_mk}s vs fault-free ${ff_mk}s (${ratio}x, bar: 2.5x)"
    fi
fi
exit 0
