#!/usr/bin/env sh
# Regenerate BENCH_pr2.json: packed-vs-naive dense kernel rates plus
# end-to-end factorization times on the EXP-R1 suite matrices.
#
#   scripts/bench_pr2.sh [out.json]     (default: BENCH_pr2.json)
#
# Set BENCH_QUICK=1 for a fast smoke run (CI); leave it unset to produce
# the committed artifact. Run on an otherwise-idle machine.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p parfact-bench --bin bench_pr2
exec ./target/release/bench_pr2 "${1:-BENCH_pr2.json}"
