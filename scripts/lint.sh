#!/usr/bin/env sh
# Single entry point for the static gates CI enforces — run it locally
# before pushing and you will not be surprised by the lint job.
#
#   1. rustfmt        — formatting, check-only
#   2. clippy         — warnings are errors, all targets
#   3. parfact-lint   — the workspace determinism & protocol rules
#                       (R1 host clocks, R2 unordered iteration, R3
#                       undocumented unsafe, R4 FMA contraction, R5 raw
#                       message tags, R6 entropy-seeded RNGs), deny mode.
#
# Any JSON report path in $1 is forwarded to parfact-lint (CI uploads it
# as an artifact; locally it is optional).

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> parfact-lint --deny-all"
if [ "${1:-}" != "" ]; then
    cargo run --release -p parfact-lint -- --deny-all --json "$1"
else
    cargo run --release -p parfact-lint -- --deny-all
fi

echo "lint.sh: all gates clean"
