//! Compare fill-reducing orderings on a family of matrices: fill, predicted
//! factor flops, and supernode structure — a miniature of EXP-A4.
//!
//! ```text
//! cargo run --release --example ordering_explorer
//! ```

use parfact::order::{nd::NdOpts, Method};
use parfact::sparse::csc::CscMatrix;
use parfact::sparse::gen;
use parfact::symbolic::{analyze, AmalgOpts};

fn report(name: &str, a: &CscMatrix) {
    println!(
        "--- {name}: n = {}, nnz(lower) = {} ---",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:>18} {:>12} {:>10} {:>12} {:>9}",
        "ordering", "nnz(L)", "fill", "Mflop", "supernodes"
    );
    for (label, method) in [
        ("natural", Method::Natural),
        ("RCM", Method::Rcm),
        ("min degree", Method::MinDegree),
        (
            "nested dissection",
            Method::NestedDissection(NdOpts::default()),
        ),
    ] {
        let perm = parfact::order::order_matrix(a, method);
        let ap = perm.apply_sym_lower(a);
        let (sym, _) = analyze(&ap, &AmalgOpts::default());
        println!(
            "{:>18} {:>12} {:>9.2}x {:>12.1} {:>10}",
            label,
            sym.factor_nnz(),
            sym.factor_nnz() as f64 / a.nnz() as f64,
            sym.factor_flops() / 1e6,
            sym.nsuper()
        );
    }
    println!();
}

fn main() {
    report(
        "2-D Laplacian 60x60",
        &gen::laplace2d(60, 60, gen::Stencil2d::FivePoint),
    );
    report(
        "3-D Laplacian 14^3",
        &gen::laplace3d(14, 14, 14, gen::Stencil3d::SevenPoint),
    );
    report(
        "3-D elasticity 8^3 (3 dof/node)",
        &gen::elasticity3d(8, 8, 8),
    );
    report("random SPD n=3000, ~8/row", &gen::random_spd(3000, 8, 42));
    println!("(expected shape: ND wins on 2-D/3-D meshes, minimum degree is competitive");
    println!(" on small/irregular problems, RCM and natural trail far behind)");
}
