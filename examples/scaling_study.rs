//! Strong-scaling study on the simulated massively parallel machine:
//! multifrontal (subtree-to-subcube, 2-D fronts) versus the classic
//! fan-out column Cholesky, on a Blue Gene/P-class cost model.
//!
//! ```text
//! cargo run --release --example scaling_study [grid_dim]
//! ```
//!
//! This is a miniature of experiment EXP-F1 (see EXPERIMENTS.md).

use parfact::core::baseline::fanout;
use parfact::core::dist::run_distributed;
use parfact::core::mapping::MapStrategy;
use parfact::mpsim::model::CostModel;
use parfact::mpsim::Machine;
use parfact::order::Method;
use parfact::sparse::gen;
use parfact::symbolic::AmalgOpts;

fn main() {
    let dim: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("grid dim"))
        .unwrap_or(16);
    let a = gen::laplace3d(dim, dim, dim, gen::Stencil3d::SevenPoint);
    println!(
        "3-D Laplacian {dim}^3: n = {}, nnz(lower) = {}  |  machine: Blue Gene/P-class",
        a.nrows(),
        a.nnz()
    );
    println!();
    println!(
        "{:>6} {:>14} {:>10} {:>14} {:>10} {:>9}",
        "ranks", "multifrontal", "Gflop/s", "fan-out", "Gflop/s", "MF speedup"
    );

    let model = CostModel::bluegene_p();
    let mut t1_mf = 0.0f64;
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let mf = run_distributed(
            p,
            model,
            &a,
            Method::default(),
            &AmalgOpts::default(),
            MapStrategy::default(),
            None,
        )
        .expect("SPD");
        // Fan-out baseline (uses the natural ordering internally applied by
        // the caller; give it the same fill-reducing permutation for a fair
        // fight).
        let fill = parfact::order::order_matrix(&a, Method::default());
        let af = fill.apply_sym_lower(&a);
        let fo = Machine::new(p, model).run(|rank| {
            fanout::factorize_rank(rank, &af).expect("fan-out failed");
        });
        if p == 1 {
            t1_mf = mf.factor_time_s;
        }
        println!(
            "{:>6} {:>12.1}ms {:>10.2} {:>12.1}ms {:>10.2} {:>8.1}x",
            p,
            mf.factor_time_s * 1e3,
            mf.factor_gflops(),
            fo.makespan_s * 1e3,
            fo.total_flops() / fo.makespan_s / 1e9,
            t1_mf / mf.factor_time_s,
        );
    }
    println!();
    println!("(simulated time from the α-β-γ cost model; algorithms and numerics are real)");
}
