//! A structural-mechanics-shaped workload: factor a 3-D elasticity-style
//! stiffness matrix with the shared-memory parallel engine, then reuse the
//! symbolic analysis across "load steps" (refactorization with new values —
//! the pattern sheet-metal-forming simulations hammer on).
//!
//! ```text
//! cargo run --release --example structural_analysis [nx] [ny] [nz]
//! ```

use parfact::core::smp::SmpOpts;
use parfact::core::solver::{Engine, FactorOpts, RhsBlock, SolveEngine, SolveOpts, SparseCholesky};
use parfact::sparse::{gen, ops};
use std::time::Instant;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("grid dims must be integers"))
        .collect();
    let (nx, ny, nz) = match args.as_slice() {
        [x, y, z] => (*x, *y, *z),
        [] => (14, 14, 14),
        _ => panic!("usage: structural_analysis [nx ny nz]"),
    };

    // 3 degrees of freedom per node, 27-point connectivity: the structure
    // that makes supernodal solvers shine on mechanics problems.
    let a = gen::elasticity3d(nx, ny, nz);
    println!(
        "elasticity mesh {nx}x{ny}x{nz}: n = {} dof, nnz(lower) = {}",
        a.nrows(),
        a.nnz()
    );

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let opts = FactorOpts::new().engine(Engine::Smp(SmpOpts {
        threads,
        ..SmpOpts::default()
    }));
    let t0 = Instant::now();
    let mut chol = SparseCholesky::factorize(&a, &opts).expect("stiffness matrix must be SPD");
    println!(
        "factor ({} threads): {:.0} ms  |  nnz(L) = {}, {:.2} Gflop",
        threads,
        t0.elapsed().as_secs_f64() * 1e3,
        chol.factor_nnz(),
        chol.factor_flops() / 1e9
    );

    // Static load: uniform gravity-ish right-hand side. Solve with one
    // refinement step on the tree-parallel engine.
    let b = vec![-9.81; a.nrows()];
    let solve_opts = SolveOpts::new()
        .refine(1)
        .engine(SolveEngine::Smp { threads });
    let out = chol
        .solve_with(RhsBlock::single(&b), &solve_opts)
        .expect("solve");
    println!(
        "solve + 1 refinement: residual = {:.3e}, max displacement = {:.4}",
        out.residual.unwrap(),
        out.x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    );

    // Load stepping: same sparsity, stiffening material each step.
    let mut a_step = a.clone();
    for step in 1..=3 {
        for v in a_step.values_mut() {
            *v *= 1.15;
        }
        let t = Instant::now();
        chol.refactorize(
            &a_step,
            Engine::Smp(SmpOpts {
                threads,
                ..SmpOpts::default()
            }),
        )
        .expect("refactorization");
        let x = chol.solve(&b);
        println!(
            "load step {step}: refactor {:.0} ms (symbolic reused), residual {:.3e}",
            t.elapsed().as_secs_f64() * 1e3,
            ops::sym_residual_inf(&a_step, &x, &b)
        );
    }
    println!("ok");
}
