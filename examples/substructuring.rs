//! Substructuring (domain decomposition) with the Schur-complement API:
//! split a 2-D domain into two subdomains along an interface line,
//! eliminate the interiors with the multifrontal solver, solve the dense
//! interface problem, and back-substitute — the classic workflow the
//! paper's solver family serves as a subdomain engine for.
//!
//! ```text
//! cargo run --release --example substructuring [nx] [ny]
//! ```

use parfact::core::schur::{dense_spd_solve, schur_complement};
use parfact::core::solver::{FactorOpts, SparseCholesky};
use parfact::sparse::{gen, ops};
use std::time::Instant;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("grid dims"))
        .collect();
    let (nx, ny) = match args.as_slice() {
        [x, y] => (*x, *y),
        [] => (121, 80),
        _ => panic!("usage: substructuring [nx ny]"),
    };
    assert!(nx % 2 == 1, "nx must be odd so a middle column exists");
    let a = gen::laplace2d(nx, ny, gen::Stencil2d::FivePoint);
    let n = a.nrows();
    println!("domain {nx}x{ny}: n = {n}");

    // Interface: the middle grid column. Removing it splits the domain in
    // half, so the interior factorization is two independent subdomains.
    let mid = nx / 2;
    let interface: Vec<usize> = (0..ny).map(|y| mid + nx * y).collect();
    println!(
        "interface: {} vertices (grid column x = {mid})",
        interface.len()
    );

    // A manufactured problem with a known solution.
    let xstar: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) / 5.0 - 1.5).collect();
    let mut b = vec![0.0; n];
    a.sym_spmv(&xstar, &mut b);

    let t0 = Instant::now();
    let sc = schur_complement(&a, &interface, &FactorOpts::default()).expect("SPD subdomains");
    println!(
        "schur: dense {0}x{0} interface operator formed in {1:.0} ms",
        sc.ninterface(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t1 = Instant::now();
    let x = sc.solve_full(&b, dense_spd_solve);
    println!(
        "substructured solve: {:.0} ms, scaled residual = {:.3e}",
        t1.elapsed().as_secs_f64() * 1e3,
        ops::sym_residual_inf(&a, &x, &b)
    );

    // Cross-check against the monolithic solver.
    let t2 = Instant::now();
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
    let xd = chol.solve(&b);
    println!(
        "monolithic solve: {:.0} ms (factor+solve)",
        t2.elapsed().as_secs_f64() * 1e3
    );
    let maxdiff = x
        .iter()
        .zip(&xd)
        .fold(0.0f64, |m, (u, v)| m.max((u - v).abs()));
    println!("max |x_substructured - x_monolithic| = {maxdiff:.3e}");
    assert!(maxdiff < 1e-8, "methods must agree");
    println!("ok");
}
