//! Quickstart: factor a sparse SPD system and solve it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parfact::prelude::*;
use parfact::sparse::{gen, ops};

fn main() {
    // A model problem: 2-D Poisson equation on a 100x100 grid
    // (5-point stencil), 10,000 unknowns, symmetric positive definite.
    let a = gen::laplace2d(100, 100, Stencil2d::FivePoint);
    println!("matrix: n = {}, nnz(lower) = {}", a.nrows(), a.nnz());

    // Right-hand side for a known solution, so we can check the answer.
    let xstar: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut b = vec![0.0; a.nrows()];
    a.sym_spmv(&xstar, &mut b);

    // Analyze + factor with the defaults: nested-dissection ordering,
    // relaxed supernodes, sequential multifrontal LLᵀ.
    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).expect("SPD factorization");
    let r = chol.report();
    println!(
        "analysis: nnz(L) = {} ({:.2}x fill), {:.1} Mflop predicted",
        chol.factor_nnz(),
        chol.factor_nnz() as f64 / a.nnz() as f64,
        chol.factor_flops() / 1e6
    );
    println!(
        "times: ordering {:.1} ms, symbolic {:.1} ms, numeric {:.1} ms",
        r.ordering_s * 1e3,
        r.symbolic_s * 1e3,
        r.numeric_s * 1e3
    );

    // Solve and verify.
    let x = chol.solve(&b);
    let err = x
        .iter()
        .zip(&xstar)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    println!(
        "solve: max |x - x*| = {err:.3e}, scaled residual = {:.3e}",
        ops::sym_residual_inf(&a, &x, &b)
    );
    assert!(err < 1e-8, "solution check failed");
    println!("ok");
}
