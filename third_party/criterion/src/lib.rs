//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset parfact's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros — on a simple wall-clock harness: per sample
//! it times a batch of iterations and reports the fastest sample (a
//! robust point estimate under scheduler noise). No plots, no baselines;
//! results print as one line per benchmark.

use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing state for one benchmark. The user closure calls `iter*` once;
/// the harness inside records warm-up plus samples.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    best: Option<Duration>,
    mean: Duration,
    samples: usize,
}

impl Bencher {
    fn run_samples(&mut self, mut one_iter: impl FnMut() -> Duration) {
        // Warm up until the budget is spent (at least one iteration).
        let warm_start = Instant::now();
        loop {
            one_iter();
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measure: fixed sample count, but stop early when the
        // measurement-time budget runs out.
        let meas_start = Instant::now();
        let mut total = Duration::ZERO;
        let mut best: Option<Duration> = None;
        let mut samples = 0usize;
        while samples < self.sample_size {
            let dt = one_iter();
            total += dt;
            best = Some(best.map_or(dt, |b| b.min(dt)));
            samples += 1;
            if samples >= 3 && meas_start.elapsed() >= self.measurement {
                break;
            }
        }
        self.best = best;
        self.mean = total / samples.max(1) as u32;
        self.samples = samples;
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run_samples(|| {
            let t = Instant::now();
            std::hint::black_box(routine());
            t.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            t.elapsed()
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            best: None,
            mean: Duration::ZERO,
            samples: 0,
        };
        f(&mut bencher);
        let best = bencher.best.unwrap_or(Duration::ZERO);
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(
                    "  {:.3} Melem/s",
                    n as f64 / best.as_secs_f64().max(1e-12) / 1e6
                )
            }
            Throughput::Bytes(n) => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / best.as_secs_f64().max(1e-12) / (1 << 20) as f64
                )
            }
        });
        println!(
            "{}/{}: best {}  mean {}  ({} samples){}",
            self.name,
            id.0,
            fmt_duration(best),
            fmt_duration(bencher.mean),
            bencher.samples,
            rate.unwrap_or_default(),
        );
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..1000).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        g.finish();
    }
}
