//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Parfact uses randomness only for reproducible test-problem generation
//! and randomized test inputs, always seeded through
//! `StdRng::seed_from_u64`. This shim supplies exactly that surface —
//! `Rng::{gen, gen_range, gen_bool}` over the range types the workspace
//! samples — on top of a splitmix64 generator, which passes the
//! statistical bar those uses need. It is NOT the real rand and must not
//! be used for anything security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Core source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1; // hi - lo < 2^64 - 1 for the sizes parfact uses
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// `RngCore` (as in real rand 0.8).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Stands in for rand's
    /// `StdRng`; statistically fine for test-data generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero orbit and decorrelate small seeds.
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
