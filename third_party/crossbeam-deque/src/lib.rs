//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Provides the `Injector`/`Steal` subset the SMP engine uses. The real
//! crate is a lock-free FIFO; this one is a mutexed `VecDeque`, which is
//! semantically identical (FIFO, linearizable steals) and fast enough for
//! the work granularity parfact schedules (whole supernodes).

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert!(matches!(inj.steal(), Steal::Success(1)));
        assert!(matches!(inj.steal(), Steal::Success(2)));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_cover_all_items() {
        let inj = Injector::new();
        for i in 0..1000 {
            inj.push(i);
        }
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    match inj.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                });
            }
        });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }
}
