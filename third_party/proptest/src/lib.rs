//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API that parfact's property
//! tests use: the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` attribute,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, range and tuple
//! strategies, `any::<T>()`, and `Strategy::prop_map`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! inputs are generated from a deterministic per-test seed (reruns are
//! exactly reproducible), and failing cases are reported but not shrunk.

pub mod test_runner {
    /// Run configuration; only `cases` is honored.
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name and
    /// case index, so every test sees a distinct but reproducible stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u64, u32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64_unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64_unit() * 2e6 - 1e6
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failures abort the current case with
/// a formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: {} == {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__lhs == *__rhs, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs != *__rhs,
            "assertion failed: {} != {}",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(arg in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])+
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(n in 3usize..10, x in -1.0f64..1.0, seed in any::<u64>()) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            let _ = seed;
        }

        #[test]
        fn prop_map_composes(v in (1usize..=4, 0usize..3).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!((10..50).contains(&v), "v = {}", v);
            prop_assert_eq!(v, v);
            prop_assert_ne!(v, v + 1);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[allow(unused)]
                fn always_fails(n in 0usize..10) {
                    prop_assert!(false, "boom {}", n);
                }
            }
            always_fails();
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("boom"), "got: {msg}");
    }
}
