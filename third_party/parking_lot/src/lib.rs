//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses, backed by
//! `std::sync`. Semantics match parking_lot where they matter here:
//! `lock()` is infallible (poisoning is swallowed, like parking_lot's
//! no-poisoning design) and `Condvar::wait_for` takes the guard by
//! `&mut` instead of by value.

use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard wrapper. The inner `Option` exists only so `Condvar::wait_for`
/// can temporarily move the std guard out through a `&mut` reference;
/// it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7; // must not panic despite std poisoning
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let r = {
            let mut g = pair.0.lock();
            pair.1.wait_for(&mut g, Duration::from_millis(5))
        };
        assert!(r.timed_out());

        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }
}
