//! `parfact-profile` — timeline profiler for the distributed engine.
//!
//! Runs one factorization at [`parfact::TraceLevel::Timeline`], writes the
//! per-rank Gantt trace as Chrome Trace Event JSON (load it in Perfetto or
//! `chrome://tracing`), and prints the critical-path profile: where the
//! virtual time went per rank (compute / comm / wait), which assembly-tree
//! edges blocked the longest, and how close the run is to its critical
//! path.
//!
//! ```text
//! parfact-profile <matrix.mtx | --gen spec> [options]
//!
//!   --gen <spec>        lap2d:NX[xNY] | lap3d:NX[xNYxNZ] | elast3d:NX[xNYxNZ]
//!   --ranks <p>         simulated ranks                  (default 4)
//!   --threads <t>       profile the SMP engine instead (t host threads)
//!   --ordering <m>      nd | amd | rcm | natural         (default nd)
//!   --analysis-threads <t>  worker threads for the analysis phase
//!                       (default: inherit; result is bitwise identical)
//!   --sync              strict-postorder blocking schedule (EXP-A7 baseline)
//!   --inject <spec>     fault plan for the distributed run: crash:<r>@t=<s>
//!                       | crash:<r>@send=<k> | delay:<src>-<dst>:<alphas>
//!                       | dup:<src>-<dst> (comma-separated); checkpointed
//!                       recovery is enabled and the trace shows the final
//!                       (successful) attempt
//!   --out <file>        Chrome trace output path   (default trace.json)
//!   --metrics-out <f>   also export the run's report as Prometheus text
//!                       exposition (phase timings, per-rank stats, comm
//!                       matrix, scalability model)
//!   --top <k>           blocking edges to show           (default 8)
//! ```

use parfact::core::smp::SmpOpts;
use parfact::core::solver::{DistOpts, Engine, FactorOpts, SparseCholesky};
use parfact::order::Method;
use parfact::sparse::{gen, io};
use parfact::trace::{profile, Timeline};
use parfact::TraceLevel;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    matrix: String,
    gen: Option<String>,
    ranks: usize,
    threads: usize,
    ordering: Method,
    analysis_threads: usize,
    sync: bool,
    inject: parfact::mpsim::FaultPlan,
    out: String,
    metrics_out: Option<String>,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: String::new(),
        gen: None,
        ranks: 4,
        threads: 0,
        ordering: Method::default(),
        analysis_threads: 0,
        sync: false,
        inject: parfact::mpsim::FaultPlan::new(),
        out: "trace.json".to_string(),
        metrics_out: None,
        top: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gen" => args.gen = Some(it.next().ok_or("--gen needs a spec")?),
            "--ranks" => {
                args.ranks = it
                    .next()
                    .ok_or("--ranks needs a count")?
                    .parse()
                    .map_err(|_| "--ranks needs an integer")?
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads needs an integer")?
            }
            "--ordering" => {
                args.ordering = match it.next().ok_or("--ordering needs a value")?.as_str() {
                    "nd" => Method::default(),
                    "amd" | "mindeg" => Method::MinDegree,
                    "rcm" => Method::Rcm,
                    "natural" => Method::Natural,
                    other => return Err(format!("unknown ordering '{other}'")),
                }
            }
            "--analysis-threads" => {
                args.analysis_threads = it
                    .next()
                    .ok_or("--analysis-threads needs a count")?
                    .parse()
                    .map_err(|_| "--analysis-threads needs an integer")?
            }
            "--sync" => args.sync = true,
            "--inject" => {
                let spec = it.next().ok_or("--inject needs a fault spec")?;
                args.inject = parfact::mpsim::FaultPlan::parse(&spec)?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a file")?,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a file")?)
            }
            "--top" => {
                args.top = it
                    .next()
                    .ok_or("--top needs a count")?
                    .parse()
                    .map_err(|_| "--top needs an integer")?
            }
            "--help" | "-h" => return Err("usage".into()),
            other if args.matrix.is_empty() && !other.starts_with('-') => {
                args.matrix = other.to_string()
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if args.matrix.is_empty() && args.gen.is_none() {
        return Err("no matrix file or --gen spec given".into());
    }
    if args.ranks == 0 && args.threads == 0 {
        return Err("--ranks must be positive".into());
    }
    if !args.inject.is_empty() && args.threads > 0 {
        return Err("--inject only applies to the distributed engine".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "usage" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("usage: parfact-profile <matrix.mtx | --gen spec> [--ranks p] [--threads t] [--ordering nd|amd|rcm|natural] [--analysis-threads t] [--sync] [--inject spec] [--out f] [--metrics-out f] [--top k]");
            return ExitCode::from(2);
        }
    };

    let a = match &args.gen {
        Some(spec) => match gen::by_spec(spec) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match io::read_sym_lower(Path::new(&args.matrix)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error reading {}: {e}", args.matrix);
                return ExitCode::FAILURE;
            }
        },
    };

    let (engine, label) = if args.threads > 0 {
        (
            Engine::Smp(SmpOpts {
                threads: args.threads,
                ..SmpOpts::default()
            }),
            "worker",
        )
    } else {
        (
            Engine::Dist(DistOpts {
                ranks: args.ranks,
                sync_schedule: args.sync,
                faults: args.inject.clone(),
                checkpoint: !args.inject.is_empty(),
                ..DistOpts::default()
            }),
            "rank",
        )
    };
    println!(
        "profiling: n = {}, nnz(lower) = {}, engine = {}{}",
        a.nrows(),
        a.nnz(),
        match &engine {
            Engine::Smp(s) => format!("smp x{}", s.threads),
            _ => format!("dist x{}", args.ranks),
        },
        if args.sync { " (sync schedule)" } else { "" }
    );

    let opts = FactorOpts::new()
        .ordering(args.ordering)
        .engine(engine)
        .analysis_threads(args.analysis_threads)
        .trace(TraceLevel::Timeline);
    let chol = match SparseCholesky::factorize(&a, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("factorization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = chol.report();

    if let Some(f) = &r.faults {
        println!(
            "faults: {} crash(es), {} restart(s), {} delayed / {} duplicated msg(s), {} timeout(s)",
            f.crashes, f.restarts, f.delayed_msgs, f.duplicated_msgs, f.timeouts
        );
    }

    let tl = Timeline::from_spans(&r.spans);
    let json = tl.to_chrome_trace(label).to_string_compact() + "\n";
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("error writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "trace: {} spans across {} lanes written to {} (open in https://ui.perfetto.dev)",
        r.spans.len(),
        tl.lanes.len(),
        args.out
    );

    if let Some(path) = &args.metrics_out {
        let reg = parfact::trace::Registry::from_report(r);
        if let Err(e) = std::fs::write(path, reg.to_prometheus()) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "metrics: {} families written to {path} (Prometheus text exposition)",
            reg.families().len()
        );
    }

    // Analysis-phase breakdown: the pipeline stages and their wall-clock
    // shares, rendered ahead of the numeric critical-path profile. These
    // spans also appear in the Chrome trace on each worker's "analysis"
    // lane.
    if let Some(ar) = &r.analysis {
        let total = ar.total_s().max(f64::MIN_POSITIVE);
        println!("analysis ({} threads, {:.1} ms):", ar.threads, total * 1e3);
        for (name, s) in ar.stages() {
            if s > 0.0 {
                println!(
                    "  {name:<9} {:>8.2} ms  {:>5.1}%",
                    s * 1e3,
                    100.0 * s / total
                );
            }
        }
    }

    // The report's profile keeps a fixed top-k; recompute at the requested
    // depth so --top works without touching the report schema.
    let p = profile::analyze(&chol.symbolic().tree.parent, &r.spans, &r.ranks, args.top);
    let mut text = String::new();
    p.render(&mut text);
    print!("{text}");
    ExitCode::SUCCESS
}
