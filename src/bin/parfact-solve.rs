//! `parfact-solve` — command-line direct solver for Matrix Market systems.
//!
//! ```text
//! parfact-solve <matrix.mtx | --gen spec> [options]
//!
//!   --gen <spec>        generate the problem instead of reading a file:
//!                       lap2d:NX[xNY] | lap3d:NX[xNYxNZ] | elast3d:NX[xNYxNZ]
//!   --rhs <file>        right-hand side: whitespace-separated numbers
//!                       (default: b = A * ones, so x* = ones)
//!   --out <file>        write the solution, one value per line
//!   --ordering <m>      nd | amd | rcm | natural        (default nd)
//!   --nd-cutoff <n>     nested-dissection leaf size: subgraphs at most
//!                       this large switch to minimum degree (default 96;
//!                       only valid with --ordering nd)
//!   --analysis-threads <t>  worker threads for the ordering + symbolic
//!                       phase (default: inherit --threads / machine);
//!                       the result is bitwise identical at any count
//!   --ldlt              LDLt instead of Cholesky (symmetric indefinite)
//!   --threads <t>       SMP engine with t threads (default: sequential);
//!                       the solve phase uses the same thread pool
//!   --ranks <p>         distributed engine on p simulated ranks
//!   --inject <spec>     fault plan for the distributed run (needs --ranks);
//!                       comma-separated: crash:<r>@t=<s> | crash:<r>@send=<k>
//!                       | delay:<src>-<dst>:<alphas> | dup:<src>-<dst>.
//!                       Checkpointed recovery is enabled automatically;
//!                       the run restarts from the last consistent cut and
//!                       the factor is bitwise identical to a fault-free run
//!   --refine <k>        iterative-refinement steps     (default 1)
//!   --nrhs <k>          solve k right-hand sides as one blocked batch
//!                       (columns beyond the first are rotations of b);
//!                       --out writes the first column  (default 1)
//!   --stats             print condition estimate and log-determinant
//!   --report <file>     write the factorization report (counters traced,
//!                       solve section included) as JSON
//!   --metrics-out <f>   export the same report as Prometheus text
//!                       exposition (counters, gauges, histograms); implies
//!                       counter tracing like --report
//!   --trace-out <file>  record a timeline trace and write it as Chrome
//!                       Trace Event JSON (open in Perfetto), solve spans
//!                       included; also prints the critical-path profile
//! ```
//!
//! The matrix must be square and symmetric (Matrix Market `symmetric`, or
//! `general` with both triangles present — the lower triangle is used).

use parfact::core::analysis;
use parfact::core::smp::SmpOpts;
use parfact::core::solver::{
    DistOpts, Engine, FactorOpts, RhsBlock, SolveEngine, SolveOpts, SparseCholesky,
};
use parfact::core::FactorKind;
use parfact::order::Method;
use parfact::sparse::{gen, io, ops};
use parfact::trace::Timeline;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    matrix: String,
    gen: Option<String>,
    rhs: Option<String>,
    out: Option<String>,
    ordering: Method,
    nd_cutoff: Option<usize>,
    analysis_threads: usize,
    ldlt: bool,
    threads: usize,
    ranks: usize,
    inject: parfact::mpsim::FaultPlan,
    refine: usize,
    nrhs: usize,
    stats: bool,
    report: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: String::new(),
        gen: None,
        rhs: None,
        out: None,
        ordering: Method::default(),
        nd_cutoff: None,
        analysis_threads: 0,
        ldlt: false,
        threads: 0,
        ranks: 0,
        inject: parfact::mpsim::FaultPlan::new(),
        refine: 1,
        nrhs: 1,
        stats: false,
        report: None,
        metrics_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gen" => args.gen = Some(it.next().ok_or("--gen needs a spec")?),
            "--rhs" => args.rhs = Some(it.next().ok_or("--rhs needs a file")?),
            "--out" => args.out = Some(it.next().ok_or("--out needs a file")?),
            "--ordering" => {
                args.ordering = match it.next().ok_or("--ordering needs a value")?.as_str() {
                    "nd" => Method::default(),
                    "amd" | "mindeg" => Method::MinDegree,
                    "rcm" => Method::Rcm,
                    "natural" => Method::Natural,
                    other => return Err(format!("unknown ordering '{other}'")),
                }
            }
            "--nd-cutoff" => {
                let c: usize = it
                    .next()
                    .ok_or("--nd-cutoff needs a size")?
                    .parse()
                    .map_err(|_| "--nd-cutoff needs an integer")?;
                if c == 0 {
                    return Err("--nd-cutoff must be at least 1".into());
                }
                args.nd_cutoff = Some(c);
            }
            "--analysis-threads" => {
                args.analysis_threads = it
                    .next()
                    .ok_or("--analysis-threads needs a count")?
                    .parse()
                    .map_err(|_| "--analysis-threads needs an integer")?
            }
            "--ldlt" => args.ldlt = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads needs an integer")?
            }
            "--refine" => {
                args.refine = it
                    .next()
                    .ok_or("--refine needs a count")?
                    .parse()
                    .map_err(|_| "--refine needs an integer")?
            }
            "--ranks" => {
                args.ranks = it
                    .next()
                    .ok_or("--ranks needs a count")?
                    .parse()
                    .map_err(|_| "--ranks needs an integer")?
            }
            "--inject" => {
                let spec = it.next().ok_or("--inject needs a fault spec")?;
                args.inject = parfact::mpsim::FaultPlan::parse(&spec)?;
            }
            "--nrhs" => {
                args.nrhs = it
                    .next()
                    .ok_or("--nrhs needs a count")?
                    .parse()
                    .map_err(|_| "--nrhs needs an integer")?;
                if args.nrhs == 0 {
                    return Err("--nrhs must be at least 1".into());
                }
            }
            "--stats" => args.stats = true,
            "--report" => args.report = Some(it.next().ok_or("--report needs a file")?),
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a file")?)
            }
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a file")?),
            "--help" | "-h" => return Err("usage".into()),
            other if args.matrix.is_empty() && !other.starts_with('-') => {
                args.matrix = other.to_string()
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if args.matrix.is_empty() && args.gen.is_none() {
        return Err("no matrix file or --gen spec given".into());
    }
    if !args.matrix.is_empty() && args.gen.is_some() {
        return Err("give either a matrix file or --gen, not both".into());
    }
    if args.ranks > 0 && args.threads > 1 {
        return Err("--ranks and --threads are mutually exclusive".into());
    }
    if !args.inject.is_empty() && args.ranks == 0 {
        return Err("--inject needs the distributed engine (--ranks)".into());
    }
    if let Some(c) = args.nd_cutoff {
        match args.ordering {
            Method::NestedDissection(ref mut nd) => nd.cutoff = c,
            _ => return Err("--nd-cutoff only applies to --ordering nd".into()),
        }
    }
    Ok(args)
}

fn read_vector(path: &str, n: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v: Result<Vec<f64>, _> = text.split_whitespace().map(|t| t.parse::<f64>()).collect();
    let v = v.map_err(|e| format!("parsing {path}: {e}"))?;
    if v.len() != n {
        return Err(format!("rhs has {} entries, matrix has {n} rows", v.len()));
    }
    Ok(v)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "usage" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("usage: parfact-solve <matrix.mtx | --gen spec> [--rhs f] [--out f] [--ordering nd|amd|rcm|natural] [--nd-cutoff n] [--analysis-threads t] [--ldlt] [--threads t] [--ranks p] [--inject spec] [--refine k] [--nrhs k] [--stats] [--report f] [--metrics-out f] [--trace-out f]");
            return ExitCode::from(2);
        }
    };

    let a = match &args.gen {
        Some(spec) => match gen::by_spec(spec) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match io::read_sym_lower(Path::new(&args.matrix)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error reading {}: {e}", args.matrix);
                return ExitCode::FAILURE;
            }
        },
    };
    println!("matrix: n = {}, nnz(lower) = {}", a.nrows(), a.nnz());

    let b = match &args.rhs {
        Some(path) => match read_vector(path, a.nrows()) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let ones = vec![1.0; a.nrows()];
            let mut b = vec![0.0; a.nrows()];
            a.sym_spmv(&ones, &mut b);
            println!("rhs: b = A*ones (so the exact solution is all ones)");
            b
        }
    };

    let opts = FactorOpts::new()
        .ordering(args.ordering)
        .kind(if args.ldlt {
            FactorKind::Ldlt
        } else {
            FactorKind::Llt
        })
        .engine(if args.ranks > 0 {
            // Under injection, checkpointed recovery is on: crashes restart
            // from the last consistent cut instead of failing the run.
            let checkpoint = !args.inject.is_empty();
            Engine::Dist(DistOpts {
                ranks: args.ranks,
                faults: args.inject.clone(),
                checkpoint,
                ..DistOpts::default()
            })
        } else if args.threads > 1 {
            Engine::Smp(SmpOpts {
                threads: args.threads,
                ..SmpOpts::default()
            })
        } else {
            Engine::Sequential
        })
        .analysis_threads(args.analysis_threads)
        .trace(if args.trace_out.is_some() {
            parfact::TraceLevel::Timeline
        } else if args.report.is_some() || args.metrics_out.is_some() {
            parfact::TraceLevel::Counters
        } else {
            parfact::TraceLevel::Off
        });
    let chol = match SparseCholesky::factorize(&a, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("factorization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = chol.report();
    let kernel = match r.kernel_gflops() {
        Some(kg) => format!(", kernel {kg:.2} GF/s"),
        None => String::new(),
    };
    println!(
        "factor: nnz(L) = {} ({:.2}x), {:.3} Gflop | ordering {:.0} ms, symbolic {:.0} ms, numeric {:.0} ms ({:.2} GF/s{kernel})",
        chol.factor_nnz(),
        chol.factor_nnz() as f64 / a.nnz() as f64,
        chol.factor_flops() / 1e9,
        r.ordering_s * 1e3,
        r.symbolic_s * 1e3,
        r.numeric_s * 1e3,
        r.factor_gflops()
    );
    if let Some(f) = &r.faults {
        println!(
            "faults: {} crash(es), {} restart(s), {} delayed / {} duplicated msg(s), {} timeout(s)",
            f.crashes, f.restarts, f.delayed_msgs, f.duplicated_msgs, f.timeouts
        );
    }
    if let Some(ar) = &r.analysis {
        let stages: Vec<String> = ar
            .stages()
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(name, s)| format!("{name} {:.1} ms", s * 1e3))
            .collect();
        println!("analysis: {} threads | {}", ar.threads, stages.join(", "));
    }

    // Build the right-hand-side block: column 0 is b, further columns are
    // rotations of it (distinct systems, same norm scale).
    let n = a.nrows();
    let mut block = Vec::with_capacity(n * args.nrhs);
    for j in 0..args.nrhs {
        block.extend((0..n).map(|i| b[(i + j) % n.max(1)]));
    }
    let solve_opts = SolveOpts::new()
        .refine(args.refine)
        .engine(if args.threads > 1 {
            SolveEngine::Smp {
                threads: args.threads,
            }
        } else {
            SolveEngine::Auto
        });
    let out = match chol.solve_with(RhsBlock::new(&block, args.nrhs), &solve_opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let x = out.x[..n].to_vec();
    let rsolve = chol.report_with_solve();
    let solve_line = match &rsolve.solve {
        Some(s) => format!(" | {:.1} ms, {:.2} GF/s", s.seconds * 1e3, s.gflops()),
        None => String::new(),
    };
    println!(
        "solve: nrhs = {}, residual inf-norm = {:.3e} (col 0: {:.3e}){solve_line}",
        args.nrhs,
        out.residual.unwrap_or(f64::NAN),
        ops::sym_residual_inf(&a, &x, &b)
    );

    if args.stats {
        let cond = analysis::cond1_estimate(&a, chol.factor(), 5);
        let (logdet, sign) = chol.factor().log_det();
        println!("stats: cond1 estimate = {cond:.3e}, log|det A| = {logdet:.6} (sign {sign:+.0})");
    }

    if let Some(path) = &args.trace_out {
        // The enriched report lays solve spans after the factor spans, so
        // the Chrome trace shows both phases on one axis.
        let tl = Timeline::from_spans(&rsolve.spans);
        let label = if args.ranks > 0 { "rank" } else { "worker" };
        let json = tl.to_chrome_trace(label).to_string_compact() + "\n";
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} spans across {} lanes written to {path} (open in https://ui.perfetto.dev)",
            rsolve.spans.len(),
            tl.lanes.len()
        );
        if let Some(p) = &rsolve.profile {
            let mut text = String::new();
            p.render(&mut text);
            print!("{text}");
        }
    }

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, rsolve.to_json_pretty() + "\n") {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }

    if let Some(path) = &args.metrics_out {
        let reg = parfact::trace::Registry::from_report(&rsolve);
        if let Err(e) = std::fs::write(path, reg.to_prometheus()) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "metrics: {} families written to {path} (Prometheus text exposition)",
            reg.families().len()
        );
    }

    if let Some(out) = &args.out {
        let text: String = x.iter().map(|v| format!("{v:.17e}\n")).collect();
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("error writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("solution written to {out}");
    }
    ExitCode::SUCCESS
}
