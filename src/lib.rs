//! # parfact — sparse matrix factorization on massively parallel computers
//!
//! `parfact` is a direct solver for large sparse symmetric linear systems
//! `A x = b`, reproducing the system described in *"Sparse matrix
//! factorization on massively parallel computers"* (SC 2009): a supernodal
//! multifrontal Cholesky/LDLᵀ factorization parallelized with
//! subtree-to-subcube mapping and block-cyclic distributed fronts, together
//! with every substrate it depends on — fill-reducing orderings, symbolic
//! analysis, dense kernels, and a deterministic message-passing machine
//! simulator that stands in for MPI on a massively parallel machine.
//!
//! The workspace crates are re-exported here under short names:
//!
//! - [`sparse`] — matrix formats, Matrix Market I/O, problem generators
//! - [`dense`] — blocked dense kernels (GEMM/SYRK/TRSM, partial Cholesky)
//! - [`order`] — nested dissection, AMD, RCM
//! - [`symbolic`] — elimination tree, supernodes, symbolic factorization
//! - [`mpsim`] — message-passing machine simulator with an α–β cost model
//! - [`core`] — the multifrontal solver itself (sequential, SMP, distributed)
//!
//! ## Quickstart
//!
//! ```
//! use parfact::prelude::*;
//!
//! // A 2-D Laplacian on a 20x20 grid, in symmetric-lower CSC form.
//! let a = parfact::sparse::gen::laplace2d(20, 20, Stencil2d::FivePoint);
//! let b = vec![1.0; a.nrows()];
//!
//! let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
//! let out = chol.solve_with(RhsBlock::single(&b), &SolveOpts::new()).unwrap();
//!
//! let r = parfact::sparse::ops::sym_residual_inf(&a, &out.x, &b);
//! assert!(r < 1e-8);
//! ```
//!
//! Batched right-hand sides run through the same call — stack the columns
//! and describe the block:
//!
//! ```
//! use parfact::prelude::*;
//!
//! let a = parfact::sparse::gen::laplace2d(20, 20, Stencil2d::FivePoint);
//! let n = a.nrows();
//! let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
//!
//! let b: Vec<f64> = (0..n * 4).map(|i| (i % 3) as f64).collect(); // 4 RHS
//! let out = chol.solve_with(RhsBlock::new(&b, 4), &SolveOpts::new()).unwrap();
//! assert_eq!(out.x.len(), n * 4);
//! ```

pub use parfact_core as core;
pub use parfact_dense as dense;
pub use parfact_mpsim as mpsim;
pub use parfact_order as order;
pub use parfact_sparse as sparse;
pub use parfact_symbolic as symbolic;
pub use parfact_trace as trace;

// The façade types, at the crate root: factorize with
// `parfact::SparseCholesky` and inspect the run via `parfact::FactorReport`
// without spelling out the workspace layout.
pub use parfact_core::solver::{
    DistOpts, Engine, FactorOpts, RhsBlock, SolveEngine, SolveOpts, SolveSession, Solved,
    SparseCholesky,
};
pub use parfact_core::FactorKind;
pub use parfact_order::Method;
pub use parfact_trace::{FactorReport, TraceLevel};

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use parfact_core::solver::{
        DistOpts, Engine, FactorOpts, RhsBlock, SolveEngine, SolveOpts, SolveSession, Solved,
        SparseCholesky,
    };
    pub use parfact_core::{FactorKind, OrderingChoice};
    pub use parfact_order::Method;
    pub use parfact_sparse::csc::CscMatrix;
    pub use parfact_sparse::gen::{Stencil2d, Stencil3d};
    pub use parfact_trace::{FactorReport, TraceLevel};
}
