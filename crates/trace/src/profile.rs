//! Critical-path analysis over the assembly tree plus per-rank activity
//! breakdown — the "where did the makespan go" half of the profiler.
//!
//! ## Model
//!
//! Spans attribute work to supernodes. For supernode `s`:
//!
//! * `start(s)`  = earliest start of any span attributed to `s`,
//! * `finish(s)` = latest end of any span attributed to `s`,
//! * `elapsed(s) = finish(s) − start(s)` — *elapsed*, not summed, because a
//!   grid-mapped front's spans come from several ranks at once,
//! * `ready(s)`  = latest `finish` over the children of `s` (0 for leaves),
//! * `wait(s)   = max(0, start(s) − ready(s))` — time `s` sat schedulable
//!   but unstarted: extend-add/panel waits, queueing, rank imbalance.
//!
//! The **critical path** starts at the supernode with the latest finish and
//! repeatedly steps to the child with the latest finish. Its length sums
//! each node's envelope clipped at its critical child's finish (per-rank
//! clock skew can make raw envelopes overlap); `wait` summed along the
//! path is the part the scheduler could in principle remove, and the two
//! together never exceed the makespan. The supernodes whose
//! `wait` is largest are reported as the top **blocking edges**
//! (`blocker → waiter`, where the blocker is the last-finishing child).
//!
//! Per-rank activity comes straight from the lanes: `busy` is compute-lane
//! span time, `wait` the wait-lane span time, and `idle_frac` the fraction
//! of the makespan the rank spent neither computing nor sending.

use crate::collector::{Phase, SpanEvent};
use crate::json::Json;
use crate::report::RankReport;
use crate::timeline::{LaneKind, Timeline};

/// A dependency edge on which a supernode sat waiting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockingEdge {
    /// The last-finishing child (the blocker); `None` when the wait was not
    /// attributable to a child (e.g. queueing on the owning rank).
    pub blocker: Option<usize>,
    /// The supernode that waited.
    pub waiter: usize,
    /// Seconds between the waiter becoming ready and starting.
    pub wait_s: f64,
}

/// One rank's (or worker's) share of the makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankActivity {
    pub who: usize,
    /// Compute-lane span time.
    pub busy_s: f64,
    /// Comm-lane span time (virtual-clock send occupancy).
    pub comm_s: f64,
    /// Wait-lane span time (virtual-clock stalls).
    pub wait_s: f64,
    /// `1 − (busy + comm) / makespan`, clamped to `[0, 1]`.
    pub idle_frac: f64,
}

/// The profiler's summary, embedded in
/// [`FactorReport`](crate::report::FactorReport) at
/// [`TraceLevel::Timeline`](crate::collector::TraceLevel::Timeline).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Active time along the critical path: each supernode contributes its
    /// envelope clipped to start no earlier than its critical child's
    /// finish, so overlapping envelopes (per-rank clock skew lets a grid
    /// parent's earliest span precede its child's latest) are not
    /// double-counted. Together with [`critical_path_wait_s`] this is
    /// bounded by the makespan.
    ///
    /// [`critical_path_wait_s`]: ProfileReport::critical_path_wait_s
    pub critical_path_s: f64,
    /// Sum of waits along the critical path (schedulable slack).
    pub critical_path_wait_s: f64,
    /// Supernodes on the critical path.
    pub critical_path_len: usize,
    /// End of the last span (distributed: the virtual makespan).
    pub makespan_s: f64,
    /// Per-rank/per-worker breakdown, ascending by `who`.
    pub ranks: Vec<RankActivity>,
    /// Largest waits, descending (at most the requested top-k).
    pub blocking_edges: Vec<BlockingEdge>,
    /// Rank with the deepest receive-queue high-water mark, when per-rank
    /// simulator stats are available and any queueing happened.
    pub congested_rank: Option<usize>,
}

impl ProfileReport {
    /// Fraction of the busiest rank's makespan that was idle.
    pub fn max_idle_frac(&self) -> f64 {
        self.ranks.iter().map(|r| r.idle_frac).fold(0.0, f64::max)
    }
}

/// Per-supernode span aggregate.
#[derive(Clone, Copy)]
struct Node {
    start: f64,
    finish: f64,
}

/// Build the profile from the merged span stream.
///
/// `parent[s]` is the assembly-tree parent of supernode `s`; any value
/// `>= parent.len()` (the symbolic layer's `NONE`) marks a root. Supernode
/// ids are assumed postordered (children numbered before parents), which
/// every engine in this codebase guarantees. `rank_stats` supplies the
/// simulator's per-rank queue depths for congestion flagging (pass `[]`
/// for host engines). `top_k` bounds the blocking-edge list.
pub fn analyze(
    parent: &[usize],
    spans: &[SpanEvent],
    rank_stats: &[RankReport],
    top_k: usize,
) -> ProfileReport {
    let nsuper = parent.len();
    // Solve and analysis spans are excluded up front: the readiness model
    // (a supernode is ready when its children finish) describes the
    // factorization — the backward solve walks the tree in the opposite
    // direction, and the analysis front-end runs before any supernode
    // exists — folding their envelopes in would stretch every node's
    // finish past the factor makespan and distort the critical path.
    // Communication the solve performs is unattributed and stays in the
    // comm lanes.
    let spans: Vec<SpanEvent> = spans
        .iter()
        .filter(|s| s.phase != Phase::Solve && !s.phase.is_analysis())
        .cloned()
        .collect();
    let spans = &spans[..];
    let timeline = Timeline::from_spans(spans);
    let makespan_s = timeline.end_s();

    // Per-supernode [start, finish] envelopes from attributed spans.
    let mut nodes: Vec<Option<Node>> = vec![None; nsuper];
    for s in spans {
        let Some(sn) = s.supernode else { continue };
        if sn >= nsuper {
            continue;
        }
        let end = s.start_s + s.dur_s;
        let node = nodes[sn].get_or_insert(Node {
            start: s.start_s,
            finish: end,
        });
        node.start = node.start.min(s.start_s);
        node.finish = node.finish.max(end);
    }

    // ready(s) = latest child finish; remember which child it was.
    let mut ready: Vec<f64> = vec![0.0; nsuper];
    let mut last_child: Vec<Option<usize>> = vec![None; nsuper];
    for s in 0..nsuper {
        let (Some(node), p) = (nodes[s], parent[s]) else {
            continue;
        };
        if p < nsuper && node.finish > ready[p] {
            ready[p] = node.finish;
            last_child[p] = Some(s);
        }
    }

    // Critical path: from the latest-finishing supernode, walk down the
    // latest-finishing children.
    let mut critical_path_s = 0.0;
    let mut critical_path_wait_s = 0.0;
    let mut critical_path_len = 0;
    let root = (0..nsuper)
        .filter(|&s| nodes[s].is_some())
        .max_by(|&a, &b| {
            let (fa, fb) = (nodes[a].unwrap().finish, nodes[b].unwrap().finish);
            fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
        });
    let mut cursor = root;
    while let Some(s) = cursor {
        let node = nodes[s].unwrap();
        // Clip the envelope at the critical child's finish (`ready`):
        // consecutive path segments then tile [leaf start, root finish]
        // without overlap, keeping active + wait time <= makespan.
        critical_path_s += (node.finish - node.start.max(ready[s])).max(0.0);
        critical_path_wait_s += (node.start - ready[s]).max(0.0);
        critical_path_len += 1;
        cursor = last_child[s];
    }

    // Top-k blocking edges by wait, over every supernode with spans.
    let mut edges: Vec<BlockingEdge> = (0..nsuper)
        .filter_map(|s| {
            let node = nodes[s]?;
            let wait_s = node.start - ready[s];
            (last_child[s].is_some() && wait_s > 0.0).then(|| BlockingEdge {
                blocker: last_child[s],
                waiter: s,
                wait_s,
            })
        })
        .collect();
    edges.sort_by(|a, b| {
        b.wait_s
            .partial_cmp(&a.wait_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    edges.truncate(top_k);

    // Per-rank activity from the lanes.
    let mut ranks: Vec<RankActivity> = Vec::new();
    for who in timeline.whos() {
        let lane_busy = |kind: LaneKind| -> f64 {
            timeline
                .lanes
                .iter()
                .filter(|l| l.who == who && l.kind == kind)
                .map(|l| l.busy_s())
                .sum()
        };
        let busy_s = lane_busy(LaneKind::Compute);
        let comm_s = lane_busy(LaneKind::Comm);
        let wait_s = lane_busy(LaneKind::Wait);
        let idle_frac = if makespan_s > 0.0 {
            (1.0 - (busy_s + comm_s) / makespan_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        ranks.push(RankActivity {
            who,
            busy_s,
            comm_s,
            wait_s,
            idle_frac,
        });
    }

    // Congested rank: deepest receive-queue high-water mark, if any queued.
    let congested_rank = rank_stats
        .iter()
        .max_by_key(|r| r.queue_peak)
        .filter(|r| r.queue_peak > 0)
        .map(|r| r.rank);

    ProfileReport {
        critical_path_s,
        critical_path_wait_s,
        critical_path_len,
        makespan_s,
        ranks,
        blocking_edges: edges,
        congested_rank,
    }
}

impl ProfileReport {
    /// JSON for the report payload (see [`crate::report`]).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            (
                "critical_path_s".into(),
                Json::num_f64(self.critical_path_s),
            ),
            (
                "critical_path_wait_s".into(),
                Json::num_f64(self.critical_path_wait_s),
            ),
            (
                "critical_path_len".into(),
                Json::num_usize(self.critical_path_len),
            ),
            ("makespan_s".into(), Json::num_f64(self.makespan_s)),
            (
                "ranks".into(),
                Json::Arr(
                    self.ranks
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("who".into(), Json::num_usize(r.who)),
                                ("busy_s".into(), Json::num_f64(r.busy_s)),
                                ("comm_s".into(), Json::num_f64(r.comm_s)),
                                ("wait_s".into(), Json::num_f64(r.wait_s)),
                                ("idle_frac".into(), Json::num_f64(r.idle_frac)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "blocking_edges".into(),
                Json::Arr(
                    self.blocking_edges
                        .iter()
                        .map(|e| {
                            let mut o = Vec::new();
                            if let Some(b) = e.blocker {
                                o.push(("blocker".into(), Json::num_usize(b)));
                            }
                            o.push(("waiter".into(), Json::num_usize(e.waiter)));
                            o.push(("wait_s".into(), Json::num_f64(e.wait_s)));
                            Json::Obj(o)
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(r) = self.congested_rank {
            obj.push(("congested_rank".into(), Json::num_usize(r)));
        }
        Json::Obj(obj)
    }

    /// Inverse of [`ProfileReport::to_json`]; unknown fields are ignored,
    /// missing ones default.
    pub fn from_json(j: &Json) -> Option<ProfileReport> {
        let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let mut p = ProfileReport {
            critical_path_s: f("critical_path_s"),
            critical_path_wait_s: f("critical_path_wait_s"),
            critical_path_len: j
                .get("critical_path_len")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            makespan_s: f("makespan_s"),
            congested_rank: j.get("congested_rank").and_then(Json::as_usize),
            ..ProfileReport::default()
        };
        if let Some(arr) = j.get("ranks").and_then(Json::as_arr) {
            for r in arr {
                let g = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                p.ranks.push(RankActivity {
                    who: r.get("who").and_then(Json::as_usize)?,
                    busy_s: g("busy_s"),
                    comm_s: g("comm_s"),
                    wait_s: g("wait_s"),
                    idle_frac: g("idle_frac"),
                });
            }
        }
        if let Some(arr) = j.get("blocking_edges").and_then(Json::as_arr) {
            for e in arr {
                p.blocking_edges.push(BlockingEdge {
                    blocker: e.get("blocker").and_then(Json::as_usize),
                    waiter: e.get("waiter").and_then(Json::as_usize)?,
                    wait_s: e.get("wait_s").and_then(Json::as_f64).unwrap_or(0.0),
                });
            }
        }
        Some(p)
    }

    /// Human-readable summary block (used by the CLI tools).
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "critical path: {:.3}ms over {} supernodes ({:.3}ms of it waiting); makespan {:.3}ms",
            self.critical_path_s * 1e3,
            self.critical_path_len,
            self.critical_path_wait_s * 1e3,
            self.makespan_s * 1e3,
        );
        if !self.ranks.is_empty() {
            let _ = writeln!(
                out,
                "{:>6} {:>12} {:>12} {:>12} {:>8}",
                "who", "busy", "comm", "wait", "idle"
            );
            for r in &self.ranks {
                let _ = writeln!(
                    out,
                    "{:>6} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>7.1}%",
                    r.who,
                    r.busy_s * 1e3,
                    r.comm_s * 1e3,
                    r.wait_s * 1e3,
                    r.idle_frac * 100.0,
                );
            }
        }
        if let Some(r) = self.congested_rank {
            let _ = writeln!(out, "congested rank (deepest recv queue): {r}");
        }
        for e in &self.blocking_edges {
            match e.blocker {
                Some(b) => {
                    let _ = writeln!(
                        out,
                        "blocking: supernode {} waited {:.3}ms on child {}",
                        e.waiter,
                        e.wait_s * 1e3,
                        b
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "blocking: supernode {} waited {:.3}ms",
                        e.waiter,
                        e.wait_s * 1e3
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Phase;

    const NONE: usize = usize::MAX;

    fn span(phase: Phase, sn: usize, who: usize, start_s: f64, dur_s: f64) -> SpanEvent {
        SpanEvent {
            phase,
            supernode: Some(sn),
            who,
            start_s,
            dur_s,
        }
    }

    /// Chain 0 → 1 → 2 (parent pointers up), each 1s of work, node 2
    /// starting 0.5s after node 1 finishes.
    fn chain_spans() -> (Vec<usize>, Vec<SpanEvent>) {
        let parent = vec![1, 2, NONE];
        let spans = vec![
            span(Phase::Panel, 0, 0, 0.0, 1.0),
            span(Phase::Panel, 1, 0, 1.0, 1.0),
            span(Phase::Panel, 2, 1, 2.5, 1.0),
        ];
        (parent, spans)
    }

    #[test]
    fn solve_spans_do_not_distort_the_profile() {
        let (parent, mut spans) = chain_spans();
        let base = analyze(&parent, &spans, &[], 8);
        // Backward-solve spans visit the tree root-to-leaf after the
        // factorization; the profile must come out identical with them.
        spans.push(span(Phase::Solve, 2, 1, 3.5, 0.3));
        spans.push(span(Phase::Solve, 1, 0, 3.9, 0.3));
        spans.push(span(Phase::Solve, 0, 0, 4.3, 0.3));
        let p = analyze(&parent, &spans, &[], 8);
        assert_eq!(p, base);
    }

    #[test]
    fn chain_critical_path_and_waits() {
        let (parent, spans) = chain_spans();
        let p = analyze(&parent, &spans, &[], 8);
        assert_eq!(p.critical_path_len, 3);
        assert!((p.critical_path_s - 3.0).abs() < 1e-12);
        assert!((p.critical_path_wait_s - 0.5).abs() < 1e-12);
        assert!((p.makespan_s - 3.5).abs() < 1e-12);
        assert_eq!(p.blocking_edges.len(), 1);
        assert_eq!(p.blocking_edges[0].waiter, 2);
        assert_eq!(p.blocking_edges[0].blocker, Some(1));
        assert!((p.blocking_edges[0].wait_s - 0.5).abs() < 1e-12);
        // Rank 1 computed 1s of a 3.5s makespan and never sent.
        let r1 = p.ranks.iter().find(|r| r.who == 1).unwrap();
        assert!((r1.idle_frac - (1.0 - 1.0 / 3.5)).abs() < 1e-12);
        assert_eq!(p.congested_rank, None);
    }

    #[test]
    fn balanced_tree_picks_late_child() {
        // Children 0 (fast) and 1 (slow) under root 2.
        let parent = vec![2, 2, NONE];
        let spans = vec![
            span(Phase::Panel, 0, 0, 0.0, 0.5),
            span(Phase::Panel, 1, 1, 0.0, 2.0),
            span(Phase::Panel, 2, 0, 2.25, 1.0),
        ];
        let p = analyze(&parent, &spans, &[], 8);
        assert_eq!(p.critical_path_len, 2);
        assert!((p.critical_path_s - 3.0).abs() < 1e-12);
        assert!((p.critical_path_wait_s - 0.25).abs() < 1e-12);
        assert_eq!(p.blocking_edges[0].blocker, Some(1));
    }

    #[test]
    fn grid_front_elapsed_is_envelope_not_sum() {
        // One supernode factored by two ranks concurrently: elapsed must be
        // the [min start, max end] envelope, not the 2s total of span time.
        let parent = vec![NONE];
        let spans = vec![
            span(Phase::Panel, 0, 0, 0.0, 1.0),
            span(Phase::Gemm, 0, 1, 0.25, 1.0),
        ];
        let p = analyze(&parent, &spans, &[], 8);
        assert!((p.critical_path_s - 1.25).abs() < 1e-12);
    }

    #[test]
    fn overlapping_envelopes_do_not_exceed_makespan() {
        // Per-rank clock skew: the grid parent's earliest span (rank 0
        // assembling an early child) starts before its critical child's
        // latest span (rank 1, skewed clock) ends. The path must clip the
        // overlap, not count it twice.
        let parent = vec![1, NONE];
        let spans = vec![
            span(Phase::Panel, 0, 1, 0.0, 2.0),     // child: [0, 2] on rank 1
            span(Phase::ExtendAdd, 1, 0, 1.0, 0.5), // parent starts at 1.0 < 2.0
            span(Phase::Panel, 1, 0, 2.5, 1.0),     // parent envelope [1.0, 3.5]
        ];
        let p = analyze(&parent, &spans, &[], 8);
        assert_eq!(p.critical_path_len, 2);
        // Child contributes 2.0, parent contributes [2.0, 3.5] = 1.5 only.
        assert!((p.critical_path_s - 3.5).abs() < 1e-12);
        assert_eq!(p.critical_path_wait_s, 0.0);
        assert!(p.critical_path_s + p.critical_path_wait_s <= p.makespan_s + 1e-12);
    }

    #[test]
    fn congested_rank_needs_nonzero_queue() {
        let mk = |rank: usize, queue_peak: u64| RankReport {
            rank,
            queue_peak,
            ..RankReport::default()
        };
        let (parent, spans) = chain_spans();
        let p = analyze(&parent, &spans, &[mk(0, 0), mk(1, 0)], 8);
        assert_eq!(p.congested_rank, None);
        let p = analyze(&parent, &spans, &[mk(0, 2), mk(1, 7)], 8);
        assert_eq!(p.congested_rank, Some(1));
    }

    #[test]
    fn comm_and_wait_lanes_feed_rank_activity() {
        let parent = vec![NONE];
        let mut spans = vec![span(Phase::Panel, 0, 0, 0.0, 2.0)];
        spans.push(SpanEvent {
            phase: Phase::Comm,
            supernode: None,
            who: 0,
            start_s: 2.0,
            dur_s: 0.5,
        });
        spans.push(SpanEvent {
            phase: Phase::Wait,
            supernode: None,
            who: 1,
            start_s: 0.0,
            dur_s: 1.5,
        });
        let p = analyze(&parent, &spans, &[], 8);
        let r0 = p.ranks.iter().find(|r| r.who == 0).unwrap();
        assert_eq!((r0.busy_s, r0.comm_s, r0.wait_s), (2.0, 0.5, 0.0));
        assert!(r0.idle_frac.abs() < 1e-12);
        let r1 = p.ranks.iter().find(|r| r.who == 1).unwrap();
        assert_eq!(r1.wait_s, 1.5);
        assert_eq!(r1.idle_frac, 1.0);
    }

    #[test]
    fn json_round_trip() {
        let (parent, spans) = chain_spans();
        let p = analyze(&parent, &spans, &[], 8);
        let j = p.to_json();
        let back = ProfileReport::from_json(&j).unwrap();
        assert_eq!(p, back);
        let mut s = String::new();
        p.render(&mut s);
        assert!(s.contains("critical path"));
    }
}
