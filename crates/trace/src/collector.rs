//! The metrics engine: a shared [`Collector`] holding atomic counters and
//! span events, fed by per-thread / per-rank [`LocalRecorder`]s.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every hook on the hot path is a single
//!    predictable branch on a plain `bool`; no `Instant::now()`, no atomic
//!    traffic, no allocation. The default [`TraceLevel::Off`] makes the
//!    instrumented engines bench identically to the uninstrumented seed.
//! 2. **No cross-thread contention while recording.** Worker threads
//!    accumulate into a private [`LocalRecorder`] (plain fields) and merge
//!    into the collector's atomics once, when the recorder drops. The only
//!    shared-at-record-time state is the memory high-water mark, which must
//!    be global to mean anything under concurrency — and is touched per
//!    front, not per entry.
//! 3. **Engine-agnostic.** The same counter set describes the sequential,
//!    SMP, and distributed engines; distributed runs additionally fold the
//!    simulator's per-rank statistics into the report (see
//!    [`crate::report`]).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much instrumentation to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No recording. Every hook reduces to one branch.
    #[default]
    Off,
    /// Aggregate counters and per-phase times.
    Counters,
    /// Counters plus one [`SpanEvent`] per (front, phase) — the raw
    /// material for timelines and per-supernode attribution.
    Full,
    /// Everything `Full` records plus simulator communication events
    /// (send/wait spans with virtual timestamps) and a post-run profile:
    /// per-lane timelines, Chrome-trace export, and critical-path analysis
    /// (see [`crate::timeline`] and [`crate::profile`]).
    Timeline,
}

impl TraceLevel {
    /// Is anything recorded at all?
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Are individual span events recorded?
    pub fn spans(self) -> bool {
        matches!(self, TraceLevel::Full | TraceLevel::Timeline)
    }

    /// Are communication events and the timeline profile recorded?
    pub fn timeline(self) -> bool {
        self == TraceLevel::Timeline
    }
}

/// Instrumented phases of the numeric factorization.
///
/// `Panel` covers the partial dense factorization of a front; for engines
/// whose kernel fuses the trailing update into the panel loop (the
/// sequential path) it includes that update, while the SMP big-front path
/// reports the threaded trailing update separately as `Gemm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Front assembly: scatter of original-matrix entries plus extend-add
    /// of children update matrices.
    ExtendAdd,
    /// Partial dense factorization of the pivot block (POTRF/LDLᵀ + TRSM).
    Panel,
    /// Trailing (Schur) update, where it runs as a distinct stage.
    Gemm,
    /// Triangular solves.
    Solve,
    /// Time a rank's virtual clock was occupied sending (α + β·bytes for a
    /// blocking send, α alone for a nonblocking one). Distributed engine at
    /// [`TraceLevel::Timeline`] only.
    Comm,
    /// Time a rank's virtual clock sat blocked for a message that had not
    /// yet arrived. Distributed engine at [`TraceLevel::Timeline`] only.
    Wait,
    /// Analysis: graph coarsening (heavy-edge matching + contraction)
    /// inside a multilevel bisection.
    Coarsen,
    /// Analysis: initial partition and projection of a multilevel
    /// bisection, plus separator extraction.
    Bisect,
    /// Analysis: boundary Fiduccia–Mattheyses refinement passes.
    Refine,
    /// Analysis: minimum-degree ordering of leaf subgraphs below the
    /// nested-dissection cutoff.
    Mindeg,
    /// Analysis: elimination tree construction, postorder and matrix
    /// permutation.
    Etree,
    /// Analysis: factor column counts (Gilbert–Ng–Peyton sweeps).
    Colcount,
    /// Analysis: supernode partition and per-supernode row structure.
    Structure,
    /// An injected-fault marker (crash or receive timeout) from the
    /// simulator's fault plan: a zero-duration instant stamped at the
    /// rank's virtual clock. Distributed engine at
    /// [`TraceLevel::Timeline`] under fault injection only.
    Fault,
}

impl Phase {
    /// Stable wire name (used in JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::ExtendAdd => "extend_add",
            Phase::Panel => "panel",
            Phase::Gemm => "gemm",
            Phase::Solve => "solve",
            Phase::Comm => "comm",
            Phase::Wait => "wait",
            Phase::Coarsen => "coarsen",
            Phase::Bisect => "bisect",
            Phase::Refine => "refine",
            Phase::Mindeg => "mindeg",
            Phase::Etree => "etree",
            Phase::Colcount => "colcount",
            Phase::Structure => "structure",
            Phase::Fault => "fault",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        match name {
            "extend_add" => Some(Phase::ExtendAdd),
            "panel" => Some(Phase::Panel),
            "gemm" => Some(Phase::Gemm),
            "solve" => Some(Phase::Solve),
            "comm" => Some(Phase::Comm),
            "wait" => Some(Phase::Wait),
            "coarsen" => Some(Phase::Coarsen),
            "bisect" => Some(Phase::Bisect),
            "refine" => Some(Phase::Refine),
            "mindeg" => Some(Phase::Mindeg),
            "etree" => Some(Phase::Etree),
            "colcount" => Some(Phase::Colcount),
            "structure" => Some(Phase::Structure),
            "fault" => Some(Phase::Fault),
            _ => None,
        }
    }

    /// True for the phases of the analysis front-end (ordering + symbolic).
    /// The critical-path profile excludes them the way it excludes `Solve`:
    /// its readiness model describes the numeric factorization only.
    pub fn is_analysis(self) -> bool {
        matches!(
            self,
            Phase::Coarsen
                | Phase::Bisect
                | Phase::Refine
                | Phase::Mindeg
                | Phase::Etree
                | Phase::Colcount
                | Phase::Structure
        )
    }
}

/// One timed event: `who` (thread or rank) spent `dur_s` in `phase`,
/// optionally attributed to a supernode, starting `start_s` seconds after
/// the collector was created.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub phase: Phase,
    /// Supernode the work belonged to, if attributable.
    pub supernode: Option<usize>,
    /// Recording thread (SMP) or rank (distributed).
    pub who: usize,
    pub start_s: f64,
    pub dur_s: f64,
}

/// Canonical span order: by start time, ties broken by recorder id
/// (rank/worker), further ties kept in append order (stable sort). Both
/// [`Collector::take_spans`] and the distributed engine's event merge use
/// this so every consumer sees one ordering.
pub fn sort_spans(spans: &mut [SpanEvent]) {
    spans.sort_by(|a, b| {
        a.start_s
            .partial_cmp(&b.start_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.who.cmp(&b.who))
    });
}

/// A plain snapshot of every counter. This is both the merge unit (what a
/// [`LocalRecorder`] accumulates) and the report payload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Frontal matrices factored.
    pub fronts_factored: u64,
    /// Floating-point operations of the partial factorizations (the LAPACK
    /// multiply-and-add-counted-separately convention; `n³/3` dense).
    pub flops: f64,
    /// Bytes scattered into fronts during assembly (original entries +
    /// extend-add contributions actually applied).
    pub bytes_assembled: u64,
    /// Payload bytes sent between ranks (distributed engine only).
    pub bytes_sent: u64,
    /// Messages sent between ranks (distributed engine only).
    pub msgs_sent: u64,
    /// Seconds spent assembling fronts (scatter + extend-add).
    pub extend_add_s: f64,
    /// Seconds spent in partial dense factorization kernels.
    pub panel_s: f64,
    /// Seconds spent in distinct trailing-update (GEMM-like) stages.
    pub gemm_s: f64,
    /// Seconds spent in triangular solves.
    pub solve_s: f64,
    /// Analysis seconds: multilevel coarsening.
    pub coarsen_s: f64,
    /// Analysis seconds: initial partition + projection + separator.
    pub bisect_s: f64,
    /// Analysis seconds: FM refinement.
    pub refine_s: f64,
    /// Analysis seconds: minimum-degree on leaf subgraphs.
    pub mindeg_s: f64,
    /// Analysis seconds: elimination tree + postorder + permutation.
    pub etree_s: f64,
    /// Analysis seconds: column counts.
    pub colcount_s: f64,
    /// Analysis seconds: supernode partition + row structure.
    pub structure_s: f64,
    /// High-water mark of tracked working memory (fronts, panels, update
    /// matrices), bytes.
    pub mem_peak_bytes: u64,
}

impl Counters {
    fn add_phase(&mut self, phase: Phase, dur_s: f64) {
        match phase {
            Phase::ExtendAdd => self.extend_add_s += dur_s,
            Phase::Panel => self.panel_s += dur_s,
            Phase::Gemm => self.gemm_s += dur_s,
            Phase::Solve => self.solve_s += dur_s,
            Phase::Coarsen => self.coarsen_s += dur_s,
            Phase::Bisect => self.bisect_s += dur_s,
            Phase::Refine => self.refine_s += dur_s,
            Phase::Mindeg => self.mindeg_s += dur_s,
            Phase::Etree => self.etree_s += dur_s,
            Phase::Colcount => self.colcount_s += dur_s,
            Phase::Structure => self.structure_s += dur_s,
            // Communication time is accounted by the simulator's per-rank
            // statistics (`RankReport::comm_s`); fault markers are
            // zero-duration instants. Span events only.
            Phase::Comm | Phase::Wait | Phase::Fault => {}
        }
    }

    /// Element-wise accumulate (memory peak takes the max).
    pub fn merge(&mut self, other: &Counters) {
        self.fronts_factored += other.fronts_factored;
        self.flops += other.flops;
        self.bytes_assembled += other.bytes_assembled;
        self.bytes_sent += other.bytes_sent;
        self.msgs_sent += other.msgs_sent;
        self.extend_add_s += other.extend_add_s;
        self.panel_s += other.panel_s;
        self.gemm_s += other.gemm_s;
        self.solve_s += other.solve_s;
        self.coarsen_s += other.coarsen_s;
        self.bisect_s += other.bisect_s;
        self.refine_s += other.refine_s;
        self.mindeg_s += other.mindeg_s;
        self.etree_s += other.etree_s;
        self.colcount_s += other.colcount_s;
        self.structure_s += other.structure_s;
        self.mem_peak_bytes = self.mem_peak_bytes.max(other.mem_peak_bytes);
    }
}

/// What one worker (thread id for SMP, 0 for sequential) contributed:
/// attributed kernel seconds, flops, and its own allocation high-water
/// mark. Accumulated in the [`Collector`] as recorders flush, so the host
/// engines can report per-worker rows the way the distributed engine
/// reports per-rank rows.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerSummary {
    /// Recorder id (`who` passed to [`Collector::local`]).
    pub who: usize,
    /// Seconds attributed to numeric kernels (extend-add + panel + gemm +
    /// solve) on this worker.
    pub compute_s: f64,
    /// Factorization flops performed by this worker.
    pub flops: f64,
    /// High-water mark of tracked memory *allocated by* this worker, bytes.
    /// (A front freed by a different worker under work stealing is debited
    /// there; per-worker peaks attribute allocation pressure, the global
    /// [`Counters::mem_peak_bytes`] remains the true concurrent peak.)
    pub mem_peak_bytes: u64,
}

/// Atomic f64 accumulator (bit-cast CAS loop; contention is one merge per
/// thread per factorization, so the loop never spins in practice).
#[derive(Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn add(&self, v: f64) {
        if v == 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + v;
            match self.0.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// The shared sink every engine records into.
///
/// Construct one per factorization with [`Collector::new`], hand it to an
/// engine (`factorize_seq_traced` & co.), then [`Collector::snapshot`] /
/// [`Collector::take_spans`] feed the report. A `Collector::disabled()`
/// collector is free to pass around: every hook is one branch.
pub struct Collector {
    level: TraceLevel,
    epoch: Instant,
    fronts: AtomicU64,
    flops: AtomicF64,
    bytes_assembled: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_sent: AtomicU64,
    extend_add_s: AtomicF64,
    panel_s: AtomicF64,
    gemm_s: AtomicF64,
    solve_s: AtomicF64,
    coarsen_s: AtomicF64,
    bisect_s: AtomicF64,
    refine_s: AtomicF64,
    mindeg_s: AtomicF64,
    etree_s: AtomicF64,
    colcount_s: AtomicF64,
    structure_s: AtomicF64,
    mem_cur: AtomicU64,
    mem_peak: AtomicU64,
    spans: Mutex<Vec<SpanEvent>>,
    workers: Mutex<BTreeMap<usize, WorkerSummary>>,
}

impl Collector {
    /// A collector recording at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Collector {
            level,
            // lint:allow(R1) span-timestamp epoch: wall-clock origin for traces, never feeds virtual time
            epoch: Instant::now(),
            fronts: AtomicU64::new(0),
            flops: AtomicF64::default(),
            bytes_assembled: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            extend_add_s: AtomicF64::default(),
            panel_s: AtomicF64::default(),
            gemm_s: AtomicF64::default(),
            solve_s: AtomicF64::default(),
            coarsen_s: AtomicF64::default(),
            bisect_s: AtomicF64::default(),
            refine_s: AtomicF64::default(),
            mindeg_s: AtomicF64::default(),
            etree_s: AtomicF64::default(),
            colcount_s: AtomicF64::default(),
            structure_s: AtomicF64::default(),
            mem_cur: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            workers: Mutex::new(BTreeMap::new()),
        }
    }

    /// The no-op collector engines use when the caller asked for nothing.
    pub fn disabled() -> Self {
        Collector::new(TraceLevel::Off)
    }

    /// Recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Is anything recorded at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    /// Open a private recorder for thread / rank `who`. Its contents merge
    /// into this collector when it drops (or on [`LocalRecorder::flush`]).
    pub fn local(&self, who: usize) -> LocalRecorder<'_> {
        LocalRecorder {
            tr: self,
            who,
            c: Counters::default(),
            spans: Vec::new(),
            mem_cur: Cell::new(0),
            mem_peak: Cell::new(0),
        }
    }

    /// Report a tracked working-memory allocation. Global (atomic) so the
    /// high-water mark is meaningful when several threads hold fronts
    /// concurrently.
    #[inline]
    pub fn mem_alloc(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        let cur = self.mem_cur.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        self.mem_peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Report a tracked working-memory release.
    #[inline]
    pub fn mem_free(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        // Saturating: merges of untracked frees must not wrap.
        let mut cur = self.mem_cur.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes as u64);
            match self.mem_cur.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Fold a finished recorder's counters in (called from `Drop`).
    fn absorb(&self, c: &Counters, spans: &mut Vec<SpanEvent>) {
        self.fronts.fetch_add(c.fronts_factored, Ordering::Relaxed);
        self.flops.add(c.flops);
        self.bytes_assembled
            .fetch_add(c.bytes_assembled, Ordering::Relaxed);
        self.bytes_sent.fetch_add(c.bytes_sent, Ordering::Relaxed);
        self.msgs_sent.fetch_add(c.msgs_sent, Ordering::Relaxed);
        self.extend_add_s.add(c.extend_add_s);
        self.panel_s.add(c.panel_s);
        self.gemm_s.add(c.gemm_s);
        self.solve_s.add(c.solve_s);
        self.coarsen_s.add(c.coarsen_s);
        self.bisect_s.add(c.bisect_s);
        self.refine_s.add(c.refine_s);
        self.mindeg_s.add(c.mindeg_s);
        self.etree_s.add(c.etree_s);
        self.colcount_s.add(c.colcount_s);
        self.structure_s.add(c.structure_s);
        if !spans.is_empty() {
            self.spans.lock().unwrap().append(spans);
        }
    }

    /// Merge an externally-built counter set (e.g. folded from simulator
    /// rank statistics).
    pub fn merge_counters(&self, c: &Counters) {
        self.absorb(c, &mut Vec::new());
        self.mem_peak.fetch_max(c.mem_peak_bytes, Ordering::Relaxed);
    }

    /// Fold a worker's contribution into its per-worker summary (called
    /// from [`LocalRecorder::flush`]). Seconds and flops accumulate —
    /// an engine may open several recorders for the same `who` — and the
    /// memory peak takes the max.
    fn note_worker(&self, s: WorkerSummary) {
        let mut map = self.workers.lock().unwrap();
        let e = map.entry(s.who).or_insert(WorkerSummary {
            who: s.who,
            ..WorkerSummary::default()
        });
        e.compute_s += s.compute_s;
        e.flops += s.flops;
        e.mem_peak_bytes = e.mem_peak_bytes.max(s.mem_peak_bytes);
    }

    /// Per-worker summaries accumulated so far, ordered by worker id.
    /// Meaningful once every recorder has flushed (host engines call this
    /// after the factorization joins its workers).
    pub fn worker_summaries(&self) -> Vec<WorkerSummary> {
        self.workers.lock().unwrap().values().copied().collect()
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> Counters {
        Counters {
            fronts_factored: self.fronts.load(Ordering::Relaxed),
            flops: self.flops.get(),
            bytes_assembled: self.bytes_assembled.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            extend_add_s: self.extend_add_s.get(),
            panel_s: self.panel_s.get(),
            gemm_s: self.gemm_s.get(),
            solve_s: self.solve_s.get(),
            coarsen_s: self.coarsen_s.get(),
            bisect_s: self.bisect_s.get(),
            refine_s: self.refine_s.get(),
            mindeg_s: self.mindeg_s.get(),
            etree_s: self.etree_s.get(),
            colcount_s: self.colcount_s.get(),
            structure_s: self.structure_s.get(),
            mem_peak_bytes: self.mem_peak.load(Ordering::Relaxed),
        }
    }

    /// Remove and return the recorded span events, sorted by start time
    /// (stable, ties broken by recorder id) — per-thread recorders merge in
    /// drop order, so the raw buffer interleaves arbitrarily.
    pub fn take_spans(&self) -> Vec<SpanEvent> {
        let mut spans = std::mem::take(&mut *self.spans.lock().unwrap());
        sort_spans(&mut spans);
        spans
    }

    /// Zero every counter and drop recorded spans (refactorize reuses the
    /// collector; the new numeric run starts from a clean slate).
    pub fn reset(&self) {
        self.fronts.store(0, Ordering::Relaxed);
        self.flops.reset();
        self.bytes_assembled.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.extend_add_s.reset();
        self.panel_s.reset();
        self.gemm_s.reset();
        self.solve_s.reset();
        self.coarsen_s.reset();
        self.bisect_s.reset();
        self.refine_s.reset();
        self.mindeg_s.reset();
        self.etree_s.reset();
        self.colcount_s.reset();
        self.structure_s.reset();
        self.mem_cur.store(0, Ordering::Relaxed);
        self.mem_peak.store(0, Ordering::Relaxed);
        self.spans.lock().unwrap().clear();
        self.workers.lock().unwrap().clear();
    }

    /// Seconds since the collector was created (span timestamps base).
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// An in-flight timing started by [`LocalRecorder::start`]. `None` inside
/// means tracing is off and no clock was read.
#[must_use]
pub struct Tick(Option<Instant>);

/// A thread's (or rank's) private accumulation buffer. All fields are plain
/// — recording is branch + add. Contents merge into the parent collector on
/// drop.
pub struct LocalRecorder<'a> {
    tr: &'a Collector,
    who: usize,
    c: Counters,
    spans: Vec<SpanEvent>,
    // This worker's own allocation high-water (Cells so the hooks stay
    // `&self` like the collector's). The global collector peak remains the
    // concurrent truth; this feeds the per-worker summary.
    mem_cur: Cell<u64>,
    mem_peak: Cell<u64>,
}

impl LocalRecorder<'_> {
    /// Is anything recorded at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tr.enabled()
    }

    /// Begin timing a phase. Free when tracing is off.
    #[inline]
    pub fn start(&self) -> Tick {
        if self.enabled() {
            // lint:allow(R1) phase-timing tick: measures real host work for reports, never feeds virtual time
            Tick(Some(Instant::now()))
        } else {
            Tick(None)
        }
    }

    /// Finish a timing: accumulate into the phase counter and, at
    /// [`TraceLevel::Full`], record a span event.
    #[inline]
    pub fn stop(&mut self, tick: Tick, phase: Phase, supernode: Option<usize>) {
        let Some(t0) = tick.0 else { return };
        let dur_s = t0.elapsed().as_secs_f64();
        self.c.add_phase(phase, dur_s);
        if self.tr.level.spans() {
            let end_s = self.tr.now_s();
            self.spans.push(SpanEvent {
                phase,
                supernode,
                who: self.who,
                start_s: end_s - dur_s,
                dur_s,
            });
        }
    }

    /// Count one factored front.
    #[inline]
    pub fn front_done(&mut self) {
        if self.enabled() {
            self.c.fronts_factored += 1;
        }
    }

    /// Count factorization flops.
    #[inline]
    pub fn add_flops(&mut self, flops: f64) {
        if self.enabled() {
            self.c.flops += flops;
        }
    }

    /// Count entries scattered into a front during assembly.
    #[inline]
    pub fn add_assembled_entries(&mut self, entries: u64) {
        if self.enabled() {
            self.c.bytes_assembled += entries * 8;
        }
    }

    /// Count rank-to-rank traffic (distributed engine).
    #[inline]
    pub fn add_sent(&mut self, bytes: u64, msgs: u64) {
        if self.enabled() {
            self.c.bytes_sent += bytes;
            self.c.msgs_sent += msgs;
        }
    }

    /// Tracked allocation — updates both the global high-water mark and
    /// this worker's own.
    #[inline]
    pub fn mem_alloc(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        self.tr.mem_alloc(bytes);
        let cur = self.mem_cur.get() + bytes as u64;
        self.mem_cur.set(cur);
        self.mem_peak.set(self.mem_peak.get().max(cur));
    }

    /// Tracked release (saturating locally: a front allocated on another
    /// worker may be freed here under work stealing).
    #[inline]
    pub fn mem_free(&self, bytes: usize) {
        if !self.enabled() {
            return;
        }
        self.tr.mem_free(bytes);
        self.mem_cur
            .set(self.mem_cur.get().saturating_sub(bytes as u64));
    }

    /// Merge into the parent collector now (drop does this implicitly).
    pub fn flush(&mut self) {
        self.tr.absorb(&self.c, &mut self.spans);
        if self.enabled() {
            self.tr.note_worker(WorkerSummary {
                who: self.who,
                compute_s: self.c.extend_add_s + self.c.panel_s + self.c.gemm_s + self.c.solve_s,
                flops: self.c.flops,
                mem_peak_bytes: self.mem_peak.get(),
            });
        }
        self.c = Counters::default();
    }
}

impl Drop for LocalRecorder<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let tr = Collector::disabled();
        {
            let mut rec = tr.local(0);
            let t = rec.start();
            rec.stop(t, Phase::Panel, Some(3));
            rec.add_flops(1e9);
            rec.front_done();
            rec.add_assembled_entries(10);
            rec.mem_alloc(1 << 20);
        }
        tr.mem_alloc(123);
        assert_eq!(tr.snapshot(), Counters::default());
        assert!(tr.take_spans().is_empty());
    }

    #[test]
    fn concurrent_recording_merges_exactly() {
        let tr = Collector::new(TraceLevel::Counters);
        let nthreads = 8usize;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for w in 0..nthreads {
                let tr = &tr;
                scope.spawn(move || {
                    let mut rec = tr.local(w);
                    for _ in 0..per_thread {
                        rec.front_done();
                        rec.add_flops(2.0);
                        rec.add_assembled_entries(3);
                        rec.add_sent(16, 1);
                    }
                });
            }
        });
        let c = tr.snapshot();
        let total = nthreads as u64 * per_thread;
        assert_eq!(c.fronts_factored, total);
        assert_eq!(c.flops, 2.0 * total as f64);
        assert_eq!(c.bytes_assembled, 3 * 8 * total);
        assert_eq!(c.bytes_sent, 16 * total);
        assert_eq!(c.msgs_sent, total);
    }

    #[test]
    fn concurrent_memory_high_water_is_global() {
        let tr = Collector::new(TraceLevel::Counters);
        let nthreads = 4usize;
        let barrier = std::sync::Barrier::new(nthreads);
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                let (tr, barrier) = (&tr, &barrier);
                scope.spawn(move || {
                    tr.mem_alloc(100);
                    // All threads hold 100 bytes simultaneously.
                    barrier.wait();
                    barrier.wait();
                    tr.mem_free(100);
                });
            }
        });
        assert_eq!(tr.snapshot().mem_peak_bytes, 100 * nthreads as u64);
        // Frees below zero saturate rather than wrap.
        tr.mem_free(1 << 40);
        tr.mem_alloc(1);
        assert_eq!(tr.snapshot().mem_peak_bytes, 100 * nthreads as u64);
    }

    #[test]
    fn spans_recorded_only_at_full_level() {
        for (level, expect) in [
            (TraceLevel::Counters, 0usize),
            (TraceLevel::Full, 2),
            (TraceLevel::Timeline, 2),
        ] {
            let tr = Collector::new(level);
            {
                let mut rec = tr.local(7);
                let t = rec.start();
                rec.stop(t, Phase::ExtendAdd, Some(0));
                let t = rec.start();
                rec.stop(t, Phase::Panel, None);
            }
            let spans = tr.take_spans();
            assert_eq!(spans.len(), expect, "level {level:?}");
            if expect > 0 {
                assert_eq!(spans[0].phase, Phase::ExtendAdd);
                assert_eq!(spans[0].supernode, Some(0));
                assert_eq!(spans[1].supernode, None);
                assert_eq!(spans[0].who, 7);
                assert!(spans[0].dur_s >= 0.0 && spans[0].start_s >= 0.0);
            }
            let c = tr.snapshot();
            assert!(c.extend_add_s >= 0.0 && c.panel_s >= 0.0);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let tr = Collector::new(TraceLevel::Full);
        {
            let mut rec = tr.local(0);
            rec.add_flops(5.0);
            rec.front_done();
            let t = rec.start();
            rec.stop(t, Phase::Gemm, Some(1));
        }
        tr.mem_alloc(64);
        assert_ne!(tr.snapshot(), Counters::default());
        tr.reset();
        assert_eq!(tr.snapshot(), Counters::default());
        assert!(tr.take_spans().is_empty());
    }

    #[test]
    fn flush_is_idempotent_with_drop() {
        let tr = Collector::new(TraceLevel::Counters);
        {
            let mut rec = tr.local(0);
            rec.add_flops(1.0);
            rec.flush();
            rec.add_flops(2.0);
            // Drop flushes the remainder.
        }
        assert_eq!(tr.snapshot().flops, 3.0);
    }

    #[test]
    fn counters_merge_and_phase_routing() {
        let mut a = Counters {
            flops: 1.0,
            mem_peak_bytes: 10,
            ..Counters::default()
        };
        let b = Counters {
            flops: 2.0,
            mem_peak_bytes: 7,
            msgs_sent: 4,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 3.0);
        assert_eq!(a.mem_peak_bytes, 10);
        assert_eq!(a.msgs_sent, 4);

        let mut c = Counters::default();
        for (phase, field) in [
            (Phase::ExtendAdd, 0),
            (Phase::Panel, 1),
            (Phase::Gemm, 2),
            (Phase::Solve, 3),
        ] {
            c.add_phase(phase, 1.0);
            let vals = [c.extend_add_s, c.panel_s, c.gemm_s, c.solve_s];
            assert_eq!(vals[field], 1.0);
        }
    }

    #[test]
    fn phase_names_round_trip() {
        for p in [
            Phase::ExtendAdd,
            Phase::Panel,
            Phase::Gemm,
            Phase::Solve,
            Phase::Comm,
            Phase::Wait,
            Phase::Coarsen,
            Phase::Bisect,
            Phase::Refine,
            Phase::Mindeg,
            Phase::Etree,
            Phase::Colcount,
            Phase::Structure,
            Phase::Fault,
        ] {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);

        assert!(Phase::Coarsen.is_analysis() && Phase::Structure.is_analysis());
        assert!(!Phase::Panel.is_analysis() && !Phase::Solve.is_analysis());

        let mut c = Counters::default();
        for p in [
            Phase::Coarsen,
            Phase::Bisect,
            Phase::Refine,
            Phase::Mindeg,
            Phase::Etree,
            Phase::Colcount,
            Phase::Structure,
        ] {
            c.add_phase(p, 1.0);
        }
        let vals = [
            c.coarsen_s,
            c.bisect_s,
            c.refine_s,
            c.mindeg_s,
            c.etree_s,
            c.colcount_s,
            c.structure_s,
        ];
        assert_eq!(vals, [1.0; 7]);
    }

    #[test]
    fn worker_summaries_track_per_worker_compute_and_memory() {
        let tr = Collector::new(TraceLevel::Counters);
        std::thread::scope(|scope| {
            for w in 0..3usize {
                let tr = &tr;
                scope.spawn(move || {
                    let mut rec = tr.local(w);
                    rec.add_flops((w + 1) as f64 * 100.0);
                    rec.mem_alloc(1000 * (w + 1));
                    rec.mem_free(1000 * (w + 1));
                    rec.mem_alloc(500);
                    rec.mem_free(500);
                });
            }
        });
        let ws = tr.worker_summaries();
        assert_eq!(ws.len(), 3);
        for (w, s) in ws.iter().enumerate() {
            assert_eq!(s.who, w);
            assert_eq!(s.flops, (w + 1) as f64 * 100.0);
            assert_eq!(s.mem_peak_bytes, 1000 * (w as u64 + 1));
            assert!(s.compute_s >= 0.0);
        }
        // A second recorder for the same worker accumulates time/flops and
        // maxes memory.
        {
            let mut rec = tr.local(1);
            rec.add_flops(1.0);
            rec.mem_alloc(10);
        }
        let ws = tr.worker_summaries();
        assert_eq!(ws[1].flops, 201.0);
        assert_eq!(ws[1].mem_peak_bytes, 2000);
        tr.reset();
        assert!(tr.worker_summaries().is_empty());
    }

    #[test]
    fn disabled_collector_records_no_worker_summaries() {
        let tr = Collector::disabled();
        {
            let mut rec = tr.local(0);
            rec.add_flops(1.0);
            rec.mem_alloc(64);
        }
        assert!(tr.worker_summaries().is_empty());
    }

    #[test]
    fn take_spans_returns_start_order_with_stable_ties() {
        let tr = Collector::new(TraceLevel::Full);
        let span = |who: usize, start_s: f64| SpanEvent {
            phase: Phase::Panel,
            supernode: None,
            who,
            start_s,
            dur_s: 0.1,
        };
        // Simulate two recorders merging out of global time order.
        tr.spans
            .lock()
            .unwrap()
            .extend([span(1, 3.0), span(1, 0.5), span(0, 3.0), span(0, 0.25)]);
        let got = tr.take_spans();
        let key: Vec<(usize, f64)> = got.iter().map(|s| (s.who, s.start_s)).collect();
        assert_eq!(key, vec![(0, 0.25), (1, 0.5), (0, 3.0), (1, 3.0)]);
    }
}
