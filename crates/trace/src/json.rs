//! Minimal JSON tree, emitter, and parser.
//!
//! The build environment cannot fetch serde, so reports serialize through
//! this hand-rolled layer instead. The wire format is plain JSON — the
//! same documents `serde_json` would produce for the report structs — so
//! external tooling sees nothing unusual. Numbers are kept as their
//! source text inside the tree, which lets `u64` counters round-trip
//! exactly (no detour through `f64`).

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Number, stored as its literal text.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    pub fn num_f64(v: f64) -> Json {
        if v.is_finite() {
            // `{:?}` prints the shortest representation that round-trips.
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    pub fn num_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            Json::Null => Some(0.0),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out);
        out
    }

    /// Pretty-print with two-space indentation (the shape `serde_json`'s
    /// pretty printer produces).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.emit_pretty(&mut out, 0);
        out
    }

    fn emit(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit(out);
                }
                out.push('}');
            }
        }
    }

    fn emit_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.emit_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    emit_string(k, out);
                    out.push_str(": ");
                    v.emit_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.emit(out),
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Escape `s` for inclusion inside a JSON string literal (the quotes are
/// NOT added). This is the single escaping routine for every string the
/// trace crate emits — the `Json` tree, the Chrome-trace writer, and the
/// report writer all route through it — so a span/lane/supernode name
/// containing `"`, `\`, or control characters can never produce a document
/// Perfetto or `JSON.parse` rejects.
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Convenience form of [`json_escape`] returning a fresh `String`.
pub fn json_escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    json_escape(s, &mut out);
    out
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    json_escape(s, out);
    out.push('"');
}

pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.parse::<f64>().is_err() {
            return Err(self.err(&format!("bad number '{text}'")));
        }
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("lap2d \"quoted\"\n")),
            ("n".into(), Json::num_u64(40_000)),
            ("flops".into(), Json::num_f64(1.234e9)),
            ("exact".into(), Json::num_u64(u64::MAX)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::num_f64(0.1), Json::num_f64(-2.5e-7)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
        // u64 values beyond 2^53 survive exactly.
        assert_eq!(
            parse(&doc.to_string_compact())
                .unwrap()
                .get("exact")
                .unwrap()
                .as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn f64_shortest_repr_roundtrips() {
        for v in [0.1 + 0.2, 1e-300, -3.5, 6.02214076e23, 0.0] {
            let j = Json::num_f64(v);
            let back = parse(&j.to_string_compact()).unwrap().as_f64().unwrap();
            assert_eq!(back, v);
        }
        assert_eq!(Json::num_f64(f64::INFINITY), Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_escape_golden() {
        // Golden cases: quotes, backslashes, and control characters must
        // all come out as legal JSON escapes.
        for (raw, want) in [
            (r#"plain name"#, r#"plain name"#),
            (r#"say "hi""#, r#"say \"hi\""#),
            (r"back\slash", r"back\\slash"),
            ("tab\there", r"tab\there"),
            ("line\nbreak\r", r"line\nbreak\r"),
            ("bell\u{7}null\u{0}", "bell\\u0007null\\u0000"),
            ("unicode µ∆ ok", "unicode µ∆ ok"),
            (
                r#"mix "q" \ and
ctrl"#,
                r#"mix \"q\" \\ and\nctrl"#,
            ),
        ] {
            assert_eq!(json_escaped(raw), want, "escaping {raw:?}");
            // And the full document containing it must parse back to the
            // original string.
            let doc = Json::Obj(vec![("name".into(), Json::str(raw))]);
            let text = doc.to_string_compact();
            assert_eq!(
                parse(&text).unwrap().get("name").unwrap().as_str(),
                Some(raw),
                "round-tripping {raw:?} through {text}"
            );
        }
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let j = parse(" { \"k\\u0041\\n\" : [ 1 , 2.5e1 ] } ").unwrap();
        assert_eq!(
            j.get("kA\n").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(25.0)
        );
    }
}
