//! Per-rank / per-worker timelines assembled from merged [`SpanEvent`]s,
//! and their export to the Chrome Trace Event Format.
//!
//! A [`Timeline`] groups spans into **lanes**: one `(who, kind)` pair per
//! lane, where `who` is the recording rank (distributed) or worker thread
//! (SMP) and [`LaneKind`] classifies the span's phase as compute,
//! communication, or wait. Within a lane spans are sorted by start time and
//! must not overlap — each lane is the serial history of one clock
//! (distributed ranks advance a virtual α-β clock; host workers advance
//! wall time). Gaps between consecutive spans in the compute lane are the
//! lane's *idle* time.
//!
//! [`Timeline::to_chrome_trace`] emits the Trace Event Format JSON
//! (`{"traceEvents": [...]}` with "X" complete events and "M" metadata
//! naming each process/thread) that Perfetto and `chrome://tracing` load
//! directly. Each `who` becomes a process (`pid`) and each lane kind a
//! thread (`tid`) within it, so the viewer shows a Gantt row per lane.

use crate::collector::{sort_spans, Phase, SpanEvent};
use crate::json::Json;

/// Which Gantt row of a rank/worker a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LaneKind {
    /// Numeric work: assembly, panels, trailing updates, solves.
    Compute,
    /// Virtual-clock occupancy of sends (α + β·bytes, or α for isend).
    Comm,
    /// Virtual-clock stalls waiting for unarrived messages.
    Wait,
    /// Analysis-phase work (ordering + symbolic): wall-clock spans with
    /// their own time origin, kept off the numeric lanes so virtual-clock
    /// traces stay exactly adjacent.
    Analysis,
}

impl LaneKind {
    /// Lane a phase is drawn in.
    pub fn of(phase: Phase) -> LaneKind {
        match phase {
            Phase::Comm => LaneKind::Comm,
            // Fault markers are zero-duration instants stamped where the
            // rank stopped or timed out — drawn on the wait lane so they
            // sit next to the stall they explain.
            Phase::Wait | Phase::Fault => LaneKind::Wait,
            p if p.is_analysis() => LaneKind::Analysis,
            _ => LaneKind::Compute,
        }
    }

    /// Stable display / wire name.
    pub fn name(self) -> &'static str {
        match self {
            LaneKind::Compute => "compute",
            LaneKind::Comm => "comm",
            LaneKind::Wait => "wait",
            LaneKind::Analysis => "analysis",
        }
    }

    /// Chrome-trace thread id: fixed so lanes sort compute → comm → wait →
    /// analysis.
    pub fn tid(self) -> u64 {
        match self {
            LaneKind::Compute => 0,
            LaneKind::Comm => 1,
            LaneKind::Wait => 2,
            LaneKind::Analysis => 3,
        }
    }

    /// All kinds, in `tid` order.
    pub const ALL: [LaneKind; 4] = [
        LaneKind::Compute,
        LaneKind::Comm,
        LaneKind::Wait,
        LaneKind::Analysis,
    ];
}

/// One Gantt row: every span of one `(who, kind)` pair, sorted by start.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Rank (distributed) or worker thread (SMP/seq).
    pub who: usize,
    pub kind: LaneKind,
    pub spans: Vec<SpanEvent>,
}

impl Lane {
    /// Total time covered by spans.
    pub fn busy_s(&self) -> f64 {
        self.spans.iter().map(|s| s.dur_s).sum()
    }

    /// Total gap time between consecutive spans (first span start to last
    /// span end). Zero for lanes with fewer than two spans.
    pub fn idle_gap_s(&self) -> f64 {
        let mut idle = 0.0;
        for w in self.spans.windows(2) {
            let gap = w[1].start_s - (w[0].start_s + w[0].dur_s);
            if gap > 0.0 {
                idle += gap;
            }
        }
        idle
    }

    /// Earliest span start (None for an empty lane).
    pub fn start_s(&self) -> Option<f64> {
        self.spans.first().map(|s| s.start_s)
    }

    /// Latest span end (None for an empty lane).
    pub fn end_s(&self) -> Option<f64> {
        self.spans
            .iter()
            .map(|s| s.start_s + s.dur_s)
            .fold(None, |m, e| Some(m.map_or(e, |m: f64| m.max(e))))
    }
}

/// Per-rank/per-worker timelines built from a merged span stream.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Lanes sorted by `(who, kind)`.
    pub lanes: Vec<Lane>,
}

impl Timeline {
    /// Group spans into lanes. The input need not be sorted; each lane ends
    /// up ordered by start time.
    pub fn from_spans(spans: &[SpanEvent]) -> Timeline {
        let mut sorted = spans.to_vec();
        sort_spans(&mut sorted);
        let mut lanes: Vec<Lane> = Vec::new();
        for s in sorted {
            let kind = LaneKind::of(s.phase);
            match lanes.iter_mut().find(|l| l.who == s.who && l.kind == kind) {
                Some(lane) => lane.spans.push(s),
                None => lanes.push(Lane {
                    who: s.who,
                    kind,
                    spans: vec![s],
                }),
            }
        }
        lanes.sort_by_key(|l| (l.who, l.kind));
        Timeline { lanes }
    }

    /// The distinct `who` ids present, ascending.
    pub fn whos(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.lanes.iter().map(|l| l.who).collect();
        ids.dedup();
        ids
    }

    /// Latest span end across every lane (the makespan origin is 0).
    pub fn end_s(&self) -> f64 {
        self.lanes
            .iter()
            .filter_map(|l| l.end_s())
            .fold(0.0, f64::max)
    }

    /// Check the lane invariants: within each lane, spans are sorted by
    /// start, have non-negative duration, and *intervals* (positive
    /// duration) overlap by at most `tol_s`. Zero-duration spans are
    /// instant markers (e.g. probe events) and may sit inside an interval
    /// — they are exempt from the overlap check. Distributed
    /// (virtual-clock) traces hold this exactly with `tol_s = 0`; host
    /// traces need a small epsilon because span bounds are reconstructed
    /// from two separate `Instant` reads.
    ///
    /// Returns `Err(description)` naming the first violated lane.
    pub fn validate(&self, tol_s: f64) -> Result<(), String> {
        for lane in &self.lanes {
            for (i, s) in lane.spans.iter().enumerate() {
                if s.dur_s < 0.0 || s.dur_s.is_nan() {
                    return Err(format!(
                        "lane ({}, {}): span {} has negative duration {}",
                        lane.who,
                        lane.kind.name(),
                        i,
                        s.dur_s
                    ));
                }
            }
            for (i, w) in lane.spans.windows(2).enumerate() {
                if w[1].start_s < w[0].start_s {
                    return Err(format!(
                        "lane ({}, {}): spans {} and {} out of order",
                        lane.who,
                        lane.kind.name(),
                        i,
                        i + 1
                    ));
                }
            }
            let mut prev_end: Option<f64> = None;
            for (i, s) in lane.spans.iter().enumerate().filter(|(_, s)| s.dur_s > 0.0) {
                if let Some(pe) = prev_end {
                    let overlap = pe - s.start_s;
                    if overlap > tol_s {
                        return Err(format!(
                            "lane ({}, {}): span {} overlaps the previous interval \
                             by {:.3e}s (tol {:.3e})",
                            lane.who,
                            lane.kind.name(),
                            i,
                            overlap,
                            tol_s
                        ));
                    }
                }
                let end = s.start_s + s.dur_s;
                prev_end = Some(prev_end.map_or(end, |pe: f64| pe.max(end)));
            }
        }
        Ok(())
    }

    /// Export as Chrome Trace Event Format JSON. `who_label` names each
    /// process, e.g. `"rank"` (distributed) or `"worker"` (SMP).
    ///
    /// Every `who` gets all three lane kinds as named threads (even if a
    /// lane recorded nothing) so traces from different runs line up in the
    /// viewer. Spans become "X" complete events with microsecond
    /// timestamps; zero-duration spans (probe markers) become "i" instant
    /// events.
    pub fn to_chrome_trace(&self, who_label: &str) -> Json {
        let us = |s: f64| Json::num_f64(s * 1e6);
        let mut events: Vec<Json> = Vec::new();
        for who in self.whos() {
            events.push(Json::Obj(vec![
                ("name".into(), Json::str("process_name")),
                ("ph".into(), Json::str("M")),
                ("pid".into(), Json::num_usize(who)),
                ("tid".into(), Json::num_u64(0)),
                (
                    "args".into(),
                    Json::Obj(vec![(
                        "name".into(),
                        Json::str(&format!("{who_label} {who}")),
                    )]),
                ),
            ]));
            for kind in LaneKind::ALL {
                events.push(Json::Obj(vec![
                    ("name".into(), Json::str("thread_name")),
                    ("ph".into(), Json::str("M")),
                    ("pid".into(), Json::num_usize(who)),
                    ("tid".into(), Json::num_u64(kind.tid())),
                    (
                        "args".into(),
                        Json::Obj(vec![("name".into(), Json::str(kind.name()))]),
                    ),
                ]));
            }
        }
        for lane in &self.lanes {
            for s in &lane.spans {
                let mut args = vec![("phase".into(), Json::str(s.phase.name()))];
                if let Some(sn) = s.supernode {
                    args.push(("supernode".into(), Json::num_usize(sn)));
                }
                let mut ev = vec![
                    ("name".into(), Json::str(s.phase.name())),
                    ("cat".into(), Json::str(lane.kind.name())),
                    ("pid".into(), Json::num_usize(lane.who)),
                    ("tid".into(), Json::num_u64(lane.kind.tid())),
                    ("ts".into(), us(s.start_s)),
                ];
                if s.dur_s > 0.0 {
                    ev.insert(1, ("ph".into(), Json::str("X")));
                    ev.push(("dur".into(), us(s.dur_s)));
                } else {
                    ev.insert(1, ("ph".into(), Json::str("i")));
                    ev.push(("s".into(), Json::str("t")));
                }
                ev.push(("args".into(), Json::Obj(args)));
                events.push(Json::Obj(ev));
            }
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::str("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: Phase, who: usize, start_s: f64, dur_s: f64) -> SpanEvent {
        SpanEvent {
            phase,
            supernode: Some(1),
            who,
            start_s,
            dur_s,
        }
    }

    #[test]
    fn lanes_group_by_who_and_kind() {
        let spans = vec![
            span(Phase::Panel, 0, 0.0, 1.0),
            span(Phase::Comm, 0, 1.0, 0.5),
            span(Phase::Panel, 1, 0.2, 0.3),
            span(Phase::Gemm, 0, 2.0, 1.0),
            span(Phase::Wait, 1, 0.5, 0.25),
        ];
        let tl = Timeline::from_spans(&spans);
        assert_eq!(tl.lanes.len(), 4);
        assert_eq!(tl.whos(), vec![0, 1]);
        let compute0 = &tl.lanes[0];
        assert_eq!((compute0.who, compute0.kind), (0, LaneKind::Compute));
        assert_eq!(compute0.spans.len(), 2);
        assert_eq!(compute0.busy_s(), 2.0);
        assert_eq!(compute0.idle_gap_s(), 1.0);
        assert_eq!(tl.end_s(), 3.0);
        tl.validate(0.0).unwrap();
    }

    #[test]
    fn validate_catches_overlap_and_negative_duration() {
        let tl = Timeline::from_spans(&[
            span(Phase::Panel, 0, 0.0, 1.0),
            span(Phase::Panel, 0, 0.5, 1.0),
        ]);
        assert!(tl.validate(0.0).is_err());
        assert!(tl.validate(0.6).is_ok());

        let tl = Timeline::from_spans(&[span(Phase::Panel, 0, 0.0, -1.0)]);
        assert!(tl.validate(0.0).is_err());
    }

    #[test]
    fn chrome_trace_has_metadata_and_events() {
        let tl = Timeline::from_spans(&[
            span(Phase::Panel, 3, 0.5, 1.0),
            span(Phase::Comm, 3, 1.5, 0.0), // instant marker
        ]);
        let j = tl.to_chrome_trace("rank");
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 4 thread_name + 2 spans.
        assert_eq!(events.len(), 7);
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 5);
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(x.get("pid").unwrap().as_usize(), Some(3));
        assert_eq!(x.get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(1.0e6));
        assert_eq!(
            x.get("args").unwrap().get("supernode").unwrap().as_usize(),
            Some(1)
        );
        let i = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(i.get("s").unwrap().as_str(), Some("t"));
        // Round-trips through the writer/parser.
        let text = j.to_string_compact();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.get("traceEvents").unwrap().as_arr().unwrap().len(), 7);
    }
}
