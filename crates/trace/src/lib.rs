//! # parfact-trace
//!
//! Zero-cost-when-disabled instrumentation for the parfact solver stack.
//!
//! The SC'09 paper this project reproduces argues from *where time goes*:
//! per-phase breakdowns, per-supernode work, communication volume, and load
//! imbalance across processors. This crate provides the measurement layer
//! those claims need, shared by all three engines (sequential, SMP,
//! simulated-distributed):
//!
//! - [`Collector`] — the shared sink: atomic counters (flops, bytes
//!   assembled/sent, messages, fronts factored, per-phase time), memory
//!   high-water tracking, and span events.
//! - [`LocalRecorder`] — a per-thread / per-rank buffer that records with
//!   plain field updates and merges into the collector once, on drop.
//! - [`TraceLevel`] — `Off` (default; every hook is a single branch),
//!   `Counters`, or `Full` (counters + [`SpanEvent`]s).
//! - [`FactorReport`] / [`RankReport`] — the serializable run record,
//!   with JSON round-tripping via the dependency-free [`json`] module.
//!
//! The crate has no dependencies and knows nothing about matrices; engines
//! decide what to count, this crate makes counting cheap and reporting
//! uniform.

pub mod collector;
pub mod json;
pub mod report;

pub use collector::{Collector, Counters, LocalRecorder, Phase, SpanEvent, Tick, TraceLevel};
pub use report::{FactorReport, RankReport};
