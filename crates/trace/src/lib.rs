//! # parfact-trace
//!
//! Zero-cost-when-disabled instrumentation for the parfact solver stack.
//!
//! The SC'09 paper this project reproduces argues from *where time goes*:
//! per-phase breakdowns, per-supernode work, communication volume, and load
//! imbalance across processors. This crate provides the measurement layer
//! those claims need, shared by all three engines (sequential, SMP,
//! simulated-distributed):
//!
//! - [`Collector`] — the shared sink: atomic counters (flops, bytes
//!   assembled/sent, messages, fronts factored, per-phase time), memory
//!   high-water tracking, and span events.
//! - [`LocalRecorder`] — a per-thread / per-rank buffer that records with
//!   plain field updates and merges into the collector once, on drop.
//! - [`TraceLevel`] — `Off` (default; every hook is a single branch),
//!   `Counters`, `Full` (counters + [`SpanEvent`]s), or `Timeline` (spans
//!   + simulator communication events + the post-run profile).
//! - [`FactorReport`] / [`RankReport`] — the serializable run record,
//!   with JSON round-tripping via the dependency-free [`json`] module.
//! - [`timeline`] — per-rank/per-worker lanes (compute/comm/wait) built
//!   from the merged span stream, with Chrome Trace Event Format export
//!   for Perfetto / `chrome://tracing`.
//! - [`profile`] — critical-path analysis over the assembly tree plus
//!   per-rank idle/overlap breakdown and top-k blocking edges.
//!
//! The crate has no dependencies and knows nothing about matrices; engines
//! decide what to count, this crate makes counting cheap and reporting
//! uniform. (The profiler takes the assembly tree as a plain `parent`
//! slice for the same reason.)

pub mod collector;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod timeline;

pub use collector::{
    sort_spans, Collector, Counters, LocalRecorder, Phase, SpanEvent, Tick, TraceLevel,
    WorkerSummary,
};
pub use json::{json_escape, json_escaped};
pub use metrics::Registry;
pub use profile::{BlockingEdge, ProfileReport, RankActivity};
pub use report::{
    AnalysisReport, CommMatrixReport, FactorReport, FaultReport, RankReport, RankScalability,
    ScalabilityReport, SolveReport,
};
pub use timeline::{Lane, LaneKind, Timeline};
