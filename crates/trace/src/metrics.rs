//! A small, dependency-free metrics registry with Prometheus-style text
//! exposition.
//!
//! Engines publish what a run measured — phase timings, kernel rates,
//! communication matrices, memory high-water marks — into a [`Registry`] of
//! counters, gauges and histograms, which renders to the Prometheus text
//! exposition format (scrape-ready) or to the hand-rolled JSON tree.
//! [`Registry::from_report`] builds the whole surface from a finished
//! [`FactorReport`], so both CLIs can emit metrics without threading a
//! registry through the engines.
//!
//! The exposition writer is paired with a minimal parser
//! ([`Registry::parse_prometheus`]) used by the golden round-trip tests:
//! `parse(render(r)) == r` bit-for-bit on every sample value.

use crate::json::Json;
use crate::report::FactorReport;

/// Metric family kind, mirroring the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }

    fn from_name(s: &str) -> Option<Kind> {
        match s {
            "counter" => Some(Kind::Counter),
            "gauge" => Some(Kind::Gauge),
            "histogram" => Some(Kind::Histogram),
            _ => None,
        }
    }
}

/// A histogram sample: cumulative bucket counts over fixed upper bounds,
/// plus sum and count (the Prometheus histogram data model).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Bucket upper bounds, ascending. An implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Cumulative counts per bound (same length as `bounds`), then total
    /// observations in `count`.
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
}

impl Histogram {
    /// A histogram over `bounds` with every bucket empty.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        for (i, &b) in self.bounds.iter().enumerate() {
            if v <= b {
                self.counts[i] += 1;
            }
        }
        self.sum += v;
        self.count += 1;
    }
}

/// One sample within a family: a label set and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs, in render order.
    pub labels: Vec<(String, String)>,
    /// Scalar value (counter/gauge families).
    pub value: f64,
    /// Histogram value (histogram families); `value` is unused then.
    pub hist: Option<Histogram>,
}

/// A metric family: name, help text, kind, and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    pub name: String,
    pub help: String,
    pub kind: Kind,
    pub samples: Vec<Sample>,
}

/// An insertion-ordered collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    families: Vec<Family>,
}

/// Labels are passed as `&[("rank", "3")]` slices.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The families, in insertion order.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: Kind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric '{name}' re-registered with a different kind"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn upsert(&mut self, name: &str, help: &str, kind: Kind, labels: Labels, value: f64) {
        let fam = self.family_mut(name, help, kind);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(s) = fam.samples.iter_mut().find(|s| s.labels == labels) {
            s.value = value;
        } else {
            fam.samples.push(Sample {
                labels,
                value,
                hist: None,
            });
        }
    }

    /// Set a counter sample (monotonic totals; by convention the name ends
    /// in `_total`).
    pub fn counter(&mut self, name: &str, help: &str, labels: Labels, value: f64) {
        self.upsert(name, help, Kind::Counter, labels, value);
    }

    /// Set a gauge sample (point-in-time values).
    pub fn gauge(&mut self, name: &str, help: &str, labels: Labels, value: f64) {
        self.upsert(name, help, Kind::Gauge, labels, value);
    }

    /// Record an observation into a histogram sample, creating it over
    /// `bounds` on first touch.
    pub fn observe(&mut self, name: &str, help: &str, labels: Labels, bounds: &[f64], v: f64) {
        let fam = self.family_mut(name, help, Kind::Histogram);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let sample = match fam.samples.iter_mut().find(|s| s.labels == labels) {
            Some(s) => s,
            None => {
                fam.samples.push(Sample {
                    labels,
                    value: 0.0,
                    hist: Some(Histogram::new(bounds)),
                });
                fam.samples.last_mut().expect("just pushed")
            }
        };
        sample
            .hist
            .as_mut()
            .expect("histogram family sample without histogram")
            .observe(v);
    }

    /// Render to the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` headers followed by one line per sample, with
    /// histogram samples expanded into `_bucket`/`_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.name()));
            for s in &f.samples {
                match &s.hist {
                    None => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            render_labels(&s.labels, None),
                            fmt_value(s.value)
                        ));
                    }
                    Some(h) => {
                        for (i, &b) in h.bounds.iter().enumerate() {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                render_labels(&s.labels, Some(&fmt_value(b))),
                                h.counts[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            render_labels(&s.labels, Some("+Inf")),
                            h.count
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            render_labels(&s.labels, None),
                            fmt_value(h.sum)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            render_labels(&s.labels, None),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Render to a JSON tree (families → samples, histograms inline).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.families
                .iter()
                .map(|f| {
                    let samples = f
                        .samples
                        .iter()
                        .map(|s| {
                            let mut fields = vec![(
                                "labels".to_string(),
                                Json::Obj(
                                    s.labels
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::str(v)))
                                        .collect(),
                                ),
                            )];
                            match &s.hist {
                                None => fields.push(("value".to_string(), Json::num_f64(s.value))),
                                Some(h) => {
                                    fields.push((
                                        "buckets".to_string(),
                                        Json::Arr(
                                            h.bounds
                                                .iter()
                                                .zip(&h.counts)
                                                .map(|(&b, &c)| {
                                                    Json::Arr(vec![
                                                        Json::num_f64(b),
                                                        Json::num_u64(c),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ));
                                    fields.push(("sum".to_string(), Json::num_f64(h.sum)));
                                    fields.push(("count".to_string(), Json::num_u64(h.count)));
                                }
                            }
                            Json::Obj(fields)
                        })
                        .collect();
                    Json::Obj(vec![
                        ("name".to_string(), Json::str(&f.name)),
                        ("help".to_string(), Json::str(&f.help)),
                        ("type".to_string(), Json::str(f.kind.name())),
                        ("samples".to_string(), Json::Arr(samples)),
                    ])
                })
                .collect(),
        )
    }

    /// Parse text previously produced by [`Registry::to_prometheus`].
    /// Supports exactly the subset that writer emits (HELP/TYPE headers,
    /// labeled samples, histogram expansion); used by the golden
    /// round-trip tests and by downstream tooling that re-reads emitted
    /// metrics files.
    pub fn parse_prometheus(text: &str) -> Result<Registry, String> {
        let mut reg = Registry::new();
        for (ln, line) in text.lines().enumerate() {
            let err = |msg: &str| format!("line {}: {msg}: {line}", ln + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .map(|(n, h)| (n, unescape_help(h)))
                    .unwrap_or((rest, String::new()));
                // Kind is patched by the TYPE line that follows.
                match reg.families.iter_mut().find(|f| f.name == name) {
                    Some(f) => f.help = help,
                    None => reg.families.push(Family {
                        name: name.to_string(),
                        help,
                        kind: Kind::Gauge,
                        samples: Vec::new(),
                    }),
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').ok_or_else(|| err("bad TYPE"))?;
                let kind = Kind::from_name(kind).ok_or_else(|| err("unknown kind"))?;
                match reg.families.iter_mut().find(|f| f.name == name) {
                    Some(f) => f.kind = kind,
                    None => reg.families.push(Family {
                        name: name.to_string(),
                        help: String::new(),
                        kind,
                        samples: Vec::new(),
                    }),
                }
                continue;
            }
            if line.starts_with('#') {
                continue; // comment
            }
            // Sample line: name{labels} value
            let (head, value) = line.rsplit_once(' ').ok_or_else(|| err("no value"))?;
            let (name, labels) = match head.split_once('{') {
                Some((n, rest)) => {
                    let body = rest.strip_suffix('}').ok_or_else(|| err("unclosed {"))?;
                    (n, parse_labels(body).map_err(|m| err(&m))?)
                }
                None => (head, Vec::new()),
            };
            let num = |v: &str| -> Result<f64, String> {
                if v == "+Inf" {
                    Ok(f64::INFINITY)
                } else {
                    v.parse::<f64>().map_err(|_| err("bad number"))
                }
            };
            // Histogram sub-series attach to their base family.
            if let Some(base) = name.strip_suffix("_bucket") {
                if let Some(fam) = reg.families.iter_mut().find(|f| f.name == base) {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| err("bucket without le"))?
                        .1
                        .clone();
                    let rest: Vec<(String, String)> =
                        labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                    let count = num(value)? as u64;
                    let s = find_or_insert_hist(fam, rest);
                    let h = s.hist.as_mut().expect("hist sample");
                    if le == "+Inf" {
                        h.count = count;
                    } else {
                        h.bounds.push(num(&le)?);
                        h.counts.push(count);
                    }
                    continue;
                }
            }
            if let Some(base) = name.strip_suffix("_sum") {
                if let Some(fam) = reg
                    .families
                    .iter_mut()
                    .find(|f| f.name == base && f.kind == Kind::Histogram)
                {
                    let s = find_or_insert_hist(fam, labels);
                    s.hist.as_mut().expect("hist sample").sum = num(value)?;
                    continue;
                }
            }
            if let Some(base) = name.strip_suffix("_count") {
                if let Some(fam) = reg
                    .families
                    .iter_mut()
                    .find(|f| f.name == base && f.kind == Kind::Histogram)
                {
                    let s = find_or_insert_hist(fam, labels);
                    s.hist.as_mut().expect("hist sample").count = num(value)? as u64;
                    continue;
                }
            }
            let v = num(value)?;
            let fam = reg
                .families
                .iter_mut()
                .find(|f| f.name == name)
                .ok_or_else(|| err("sample before TYPE"))?;
            fam.samples.push(Sample {
                labels,
                value: v,
                hist: None,
            });
        }
        Ok(reg)
    }

    /// Build the full metrics surface from a finished factorization report:
    /// run shape, phase timings, kernel rates, per-rank statistics, the
    /// communication matrix, memory high-water marks, and the
    /// predicted-vs-measured scalability terms.
    pub fn from_report(r: &FactorReport) -> Registry {
        let mut m = Registry::new();
        let eng: Labels = &[("engine", &r.engine)];
        m.gauge("parfact_info", "Run identity; value is always 1.", eng, 1.0);
        m.gauge("parfact_n", "Matrix order.", &[], r.n as f64);
        m.gauge(
            "parfact_factor_nnz",
            "Nonzeros in the computed factor L.",
            &[],
            r.factor_nnz as f64,
        );
        m.gauge(
            "parfact_nsuper",
            "Supernodes in the assembly tree.",
            &[],
            r.nsuper as f64,
        );
        for (phase, secs) in [
            ("ordering", r.ordering_s),
            ("symbolic", r.symbolic_s),
            ("numeric", r.numeric_s),
        ] {
            m.gauge(
                "parfact_phase_seconds",
                "Wall-clock seconds per solver phase.",
                &[("phase", phase)],
                secs,
            );
        }
        for (kernel, secs) in [
            ("extend_add", r.counters.extend_add_s),
            ("panel", r.counters.panel_s),
            ("gemm", r.counters.gemm_s),
            ("solve", r.counters.solve_s),
        ] {
            if secs > 0.0 {
                m.gauge(
                    "parfact_kernel_seconds",
                    "Attributed seconds per numeric kernel phase (summed across workers).",
                    &[("kernel", kernel)],
                    secs,
                );
            }
        }
        m.counter(
            "parfact_flops_total",
            "Floating-point operations performed by the factorization.",
            &[],
            r.effective_flops(),
        );
        m.gauge(
            "parfact_factor_gflops",
            "End-to-end numeric factorization rate, Gflop/s.",
            &[],
            r.factor_gflops(),
        );
        if let Some(kg) = r.kernel_gflops() {
            m.gauge(
                "parfact_kernel_gflops",
                "Dense-kernel rate over panel+gemm attributed time, Gflop/s.",
                &[],
                kg,
            );
        }
        m.gauge(
            "parfact_mem_peak_bytes",
            "Peak tracked working memory, bytes (max across workers/ranks).",
            &[],
            r.counters.mem_peak_bytes as f64,
        );
        if let Some(ms) = r.sim_makespan_s() {
            m.gauge(
                "parfact_sim_makespan_seconds",
                "Simulated makespan: the slowest rank's virtual clock.",
                &[],
                ms,
            );
        }
        if let Some(imb) = r.load_imbalance() {
            m.gauge(
                "parfact_load_imbalance",
                "Max/mean per-rank compute time (1.0 = balanced).",
                &[],
                imb,
            );
        }
        const RANK_HELP: &str = "Per-rank statistic; labels: rank, stat.";
        for rk in &r.ranks {
            let rs = rk.rank.to_string();
            for (stat, v) in [
                ("clock_s", rk.clock_s),
                ("compute_s", rk.compute_s),
                ("comm_s", rk.comm_s),
                ("comm_hidden_s", rk.comm_hidden_s),
                ("flops", rk.flops),
                ("bytes_sent", rk.bytes_sent as f64),
                ("bytes_recv", rk.bytes_recv as f64),
                ("msgs_sent", rk.msgs_sent as f64),
                ("msgs_recv", rk.msgs_recv as f64),
                ("mem_peak_bytes", rk.mem_peak_bytes as f64),
            ] {
                m.gauge(
                    "parfact_rank_stat",
                    RANK_HELP,
                    &[("rank", &rs), ("stat", stat)],
                    v,
                );
            }
        }
        if !r.ranks.is_empty() {
            // Distribution of per-rank traffic and memory: log-spaced byte
            // buckets from 64 KiB to 4 GiB.
            let bounds: Vec<f64> = (0..17).map(|i| 65536.0 * 2f64.powi(i)).collect();
            for rk in &r.ranks {
                m.observe(
                    "parfact_rank_bytes_sent_dist",
                    "Distribution of per-rank sent bytes.",
                    &[],
                    &bounds,
                    rk.bytes_sent as f64,
                );
                m.observe(
                    "parfact_rank_mem_peak_dist",
                    "Distribution of per-rank peak tracked memory, bytes.",
                    &[],
                    &bounds,
                    rk.mem_peak_bytes as f64,
                );
            }
        }
        if let Some(s) = &r.scalability {
            for rk in &s.ranks {
                let rs = rk.rank.to_string();
                for (stat, v) in [
                    ("measured_bytes", rk.measured_bytes as f64),
                    ("predicted_bytes", rk.predicted_bytes),
                    ("measured_mem_peak", rk.measured_mem_peak as f64),
                    ("predicted_mem_peak", rk.predicted_mem_peak),
                ] {
                    m.gauge(
                        "parfact_scalability_rank",
                        "Predicted-vs-measured per-rank comm volume and peak memory.",
                        &[("rank", &rs), ("stat", stat)],
                        v,
                    );
                }
            }
            if let Some(ratio) = s.volume_model_ratio() {
                m.gauge(
                    "parfact_volume_model_ratio",
                    "Measured / predicted total communication volume.",
                    &[],
                    ratio,
                );
            }
            if let Some(b) = s.volume_balance() {
                m.gauge(
                    "parfact_volume_balance",
                    "Max/mean per-rank measured comm volume (1.0 = balanced).",
                    &[],
                    b,
                );
            }
            if let Some(b) = s.memory_balance() {
                m.gauge(
                    "parfact_memory_balance",
                    "Max/mean per-rank measured peak memory (1.0 = balanced).",
                    &[],
                    b,
                );
            }
            if let Some(c) = &s.comm {
                let nc = c.nclasses();
                for src in 0..c.nranks {
                    for dst in 0..c.nranks {
                        for class in 0..nc {
                            let (b, msgs) = c.at(src, dst, class);
                            if b == 0 && msgs == 0 {
                                continue;
                            }
                            let (ss, ds) = (src.to_string(), dst.to_string());
                            let lbl: Labels =
                                &[("src", &ss), ("dst", &ds), ("class", &c.class_names[class])];
                            m.counter(
                                "parfact_comm_bytes_total",
                                "Payload bytes per link and tag class.",
                                lbl,
                                b as f64,
                            );
                            m.counter(
                                "parfact_comm_msgs_total",
                                "Messages per link and tag class.",
                                lbl,
                                msgs as f64,
                            );
                        }
                    }
                }
            }
        }
        if let Some(s) = &r.solve {
            m.counter(
                "parfact_solve_rhs_total",
                "Right-hand-side columns solved.",
                &[],
                s.rhs as f64,
            );
            m.gauge(
                "parfact_solve_gflops",
                "Aggregate triangular-solve rate, Gflop/s.",
                &[],
                s.gflops(),
            );
        }
        if let Some(f) = &r.faults {
            for (kind, v) in [
                ("crashes", f.crashes),
                ("timeouts", f.timeouts),
                ("delayed_msgs", f.delayed_msgs),
                ("duplicated_msgs", f.duplicated_msgs),
                ("restarts", f.restarts),
            ] {
                m.counter(
                    "parfact_fault_events_total",
                    "Injected-fault and recovery events by kind.",
                    &[("kind", kind)],
                    v as f64,
                );
            }
        }
        m
    }
}

fn find_or_insert_hist(fam: &mut Family, labels: Vec<(String, String)>) -> &mut Sample {
    if let Some(i) = fam.samples.iter().position(|s| s.labels == labels) {
        return &mut fam.samples[i];
    }
    fam.samples.push(Sample {
        labels,
        value: 0.0,
        hist: Some(Histogram {
            bounds: Vec::new(),
            counts: Vec::new(),
            sum: 0.0,
            count: 0,
        }),
    });
    fam.samples.last_mut().expect("just pushed")
}

/// Render `{k="v",...}`, optionally with a trailing `le` label (histogram
/// buckets). Empty label sets render as nothing.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Shortest round-trippable decimal text for a value (Rust's `{:?}` f64
/// formatting), matching the JSON writer so both surfaces agree.
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:?}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(v: &str) -> String {
    v.replace("\\n", "\n").replace("\\\\", "\\")
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or("label without =\"")?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        rest = &rest[eq + 2..];
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, e)) => val.push(e),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key, val));
        rest = &rest[end + 1..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CommMatrixReport, RankReport, RankScalability, ScalabilityReport};

    fn sample_registry() -> Registry {
        let mut m = Registry::new();
        m.gauge("up", "Is the exporter up.", &[], 1.0);
        m.counter(
            "bytes_total",
            "Bytes by direction.",
            &[("dir", "tx")],
            1.25e9,
        );
        m.counter("bytes_total", "Bytes by direction.", &[("dir", "rx")], 3.0);
        m.gauge(
            "temp_celsius",
            "Temperature with \"quotes\" and back\\slash.",
            &[("sensor", "a\"b\\c")],
            36.625,
        );
        for v in [0.05, 0.2, 0.2, 7.5] {
            m.observe(
                "latency_seconds",
                "Request latency.",
                &[("path", "/solve")],
                &[0.1, 1.0, 5.0],
                v,
            );
        }
        m
    }

    #[test]
    fn exposition_golden_format() {
        let text = sample_registry().to_prometheus();
        let expected = "\
# HELP up Is the exporter up.
# TYPE up gauge
up 1
# HELP bytes_total Bytes by direction.
# TYPE bytes_total counter
bytes_total{dir=\"tx\"} 1250000000
bytes_total{dir=\"rx\"} 3
# HELP temp_celsius Temperature with \"quotes\" and back\\\\slash.
# TYPE temp_celsius gauge
temp_celsius{sensor=\"a\\\"b\\\\c\"} 36.625
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{path=\"/solve\",le=\"0.1\"} 1
latency_seconds_bucket{path=\"/solve\",le=\"1\"} 3
latency_seconds_bucket{path=\"/solve\",le=\"5\"} 3
latency_seconds_bucket{path=\"/solve\",le=\"+Inf\"} 4
latency_seconds_sum{path=\"/solve\"} 7.95
latency_seconds_count{path=\"/solve\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let reg = sample_registry();
        let text = reg.to_prometheus();
        let back = Registry::parse_prometheus(&text).expect("parse");
        assert_eq!(back, reg);
        // And the re-rendered text is byte-identical.
        assert_eq!(back.to_prometheus(), text);
    }

    #[test]
    fn upsert_overwrites_same_label_set() {
        let mut m = Registry::new();
        m.gauge("g", "h", &[("a", "1")], 1.0);
        m.gauge("g", "h", &[("a", "1")], 2.0);
        m.gauge("g", "h", &[("a", "2")], 3.0);
        assert_eq!(m.families()[0].samples.len(), 2);
        assert_eq!(m.families()[0].samples[0].value, 2.0);
    }

    #[test]
    fn json_export_has_families_and_histograms() {
        let j = sample_registry().to_json();
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 4);
        let hist = &arr[3];
        assert_eq!(hist.get("type").unwrap().as_str().unwrap(), "histogram");
        let s = &hist.get("samples").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("count").unwrap().as_u64().unwrap(), 4);
        assert_eq!(s.get("buckets").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn report_surface_round_trips() {
        let r = FactorReport {
            engine: "dist".to_string(),
            n: 1000,
            factor_nnz: 5000,
            nsuper: 77,
            numeric_s: 0.25,
            predicted_flops: 1e9,
            ranks: vec![
                RankReport {
                    rank: 0,
                    clock_s: 0.2,
                    compute_s: 0.15,
                    comm_s: 0.05,
                    flops: 5e8,
                    bytes_sent: 1 << 20,
                    msgs_sent: 64,
                    bytes_recv: 1 << 19,
                    msgs_recv: 32,
                    mem_peak_bytes: 1 << 22,
                    ..RankReport::default()
                },
                RankReport {
                    rank: 1,
                    clock_s: 0.21,
                    compute_s: 0.16,
                    comm_s: 0.05,
                    flops: 5e8,
                    bytes_sent: 1 << 19,
                    msgs_sent: 32,
                    bytes_recv: 1 << 20,
                    msgs_recv: 64,
                    mem_peak_bytes: 1 << 21,
                    ..RankReport::default()
                },
            ],
            scalability: Some(ScalabilityReport {
                nranks: 2,
                ranks: vec![
                    RankScalability {
                        rank: 0,
                        measured_bytes: 1 << 20,
                        predicted_bytes: 9e5,
                        measured_mem_peak: 1 << 22,
                        predicted_mem_peak: 4e6,
                    },
                    RankScalability {
                        rank: 1,
                        measured_bytes: 1 << 19,
                        predicted_bytes: 6e5,
                        measured_mem_peak: 1 << 21,
                        predicted_mem_peak: 2e6,
                    },
                ],
                comm: Some(CommMatrixReport {
                    nranks: 2,
                    class_names: vec!["extadd".into(), "panel".into()],
                    bytes: vec![0, 0, 1 << 19, 1 << 19, 1 << 18, 1 << 18, 0, 0],
                    msgs: vec![0, 0, 32, 32, 16, 16, 0, 0],
                }),
            }),
            ..FactorReport::default()
        };
        let reg = Registry::from_report(&r);
        let text = reg.to_prometheus();
        for needle in [
            "parfact_info{engine=\"dist\"} 1",
            "parfact_phase_seconds{phase=\"numeric\"} 0.25",
            "parfact_rank_stat{rank=\"0\",stat=\"bytes_sent\"} 1048576",
            "parfact_comm_bytes_total{src=\"0\",dst=\"1\",class=\"extadd\"} 524288",
            "parfact_volume_model_ratio",
            "parfact_sim_makespan_seconds 0.21",
            "parfact_rank_bytes_sent_dist_count 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Golden round trip: parse back, bit-identical re-exposition.
        let back = Registry::parse_prometheus(&text).expect("parse");
        assert_eq!(back, reg);
        assert_eq!(back.to_prometheus(), text);
    }
}
