//! Factorization reports: the serializable record a solver run produces.
//!
//! A [`FactorReport`] combines problem shape (n, nnz, supernode count),
//! phase wall-clock times, the counter snapshot from the [`crate::Collector`],
//! per-rank statistics for distributed runs, and (at
//! [`crate::TraceLevel::Full`]) the recorded span events. It converts to and
//! from the JSON tree in [`crate::json`], so reports can be written to disk
//! by experiment harnesses and read back by analysis tooling.

use crate::collector::{Counters, Phase, SpanEvent};
use crate::json::{Json, JsonError};
use crate::profile::ProfileReport;

/// Per-rank statistics for a distributed (simulated-MPI) run. Mirrors the
/// simulator's `RankStats` so those fold into the report without loss.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankReport {
    pub rank: usize,
    /// Simulated virtual clock at completion (seconds).
    pub clock_s: f64,
    /// Simulated compute time (seconds).
    pub compute_s: f64,
    /// Simulated communication time (seconds).
    pub comm_s: f64,
    /// Modelled transfer time hidden under compute by nonblocking sends
    /// (seconds): β·bytes that never occupied the sender's clock.
    pub comm_hidden_s: f64,
    /// Peak number of messages queued at this rank's mailbox at once.
    pub queue_peak: u64,
    /// Modelled floating-point operations executed by this rank.
    pub flops: f64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank sent.
    pub msgs_sent: u64,
    /// Payload bytes this rank received (consumed from its mailbox).
    pub bytes_recv: u64,
    /// Messages this rank received.
    pub msgs_recv: u64,
    /// Peak tracked memory on this rank, bytes.
    pub mem_peak_bytes: u64,
}

/// Aggregated record of the triangular solves performed against a factor.
/// Accumulated across calls (a `SolveSession` flush and an explicit
/// `solve_with` both add to it), so `rhs` counts right-hand-side *columns*,
/// not calls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveReport {
    /// Solve invocations (one blocked sweep each, any nrhs).
    pub solves: u64,
    /// Total right-hand-side columns processed.
    pub rhs: u64,
    /// Wall-clock seconds across all solves (including refinement sweeps).
    pub seconds: f64,
    /// Triangular-solve flops: `4 * nnz(L) * rhs` plus refinement work.
    pub flops: f64,
}

impl SolveReport {
    /// Aggregate solve throughput in Gflop/s; `0.0` when no time recorded.
    pub fn gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops / self.seconds / 1e9
        } else {
            0.0
        }
    }
}

/// Per-stage breakdown of the analysis front-end (ordering + symbolic).
/// Stage times are summed across analysis workers, so on a multithreaded
/// run their total can exceed the `ordering_s + symbolic_s` wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalysisReport {
    /// Worker threads the analysis phase ran with.
    pub threads: usize,
    /// Seconds in multilevel coarsening (matching + contraction).
    pub coarsen_s: f64,
    /// Seconds in initial partitioning, projection and separator extraction.
    pub bisect_s: f64,
    /// Seconds in FM refinement passes.
    pub refine_s: f64,
    /// Seconds ordering leaf subgraphs by minimum degree.
    pub mindeg_s: f64,
    /// Seconds building the elimination tree, postorder and permutation.
    pub etree_s: f64,
    /// Seconds computing factor column counts.
    pub colcount_s: f64,
    /// Seconds computing supernode row structure.
    pub structure_s: f64,
}

impl AnalysisReport {
    /// Stage rows as `(stage name, seconds)`, in pipeline order. Shared by
    /// the CLI tools that print the analysis breakdown.
    pub fn stages(&self) -> [(&'static str, f64); 7] {
        [
            ("coarsen", self.coarsen_s),
            ("bisect", self.bisect_s),
            ("refine", self.refine_s),
            ("mindeg", self.mindeg_s),
            ("etree", self.etree_s),
            ("colcount", self.colcount_s),
            ("structure", self.structure_s),
        ]
    }

    /// Total attributed analysis seconds (sum over stages; CPU time across
    /// workers, not wall clock).
    pub fn total_s(&self) -> f64 {
        self.stages().iter().map(|(_, s)| s).sum()
    }

    /// Lift the analysis stage counters out of a merged counter snapshot.
    pub fn from_counters(c: &Counters, threads: usize) -> AnalysisReport {
        AnalysisReport {
            threads,
            coarsen_s: c.coarsen_s,
            bisect_s: c.bisect_s,
            refine_s: c.refine_s,
            mindeg_s: c.mindeg_s,
            etree_s: c.etree_s,
            colcount_s: c.colcount_s,
            structure_s: c.structure_s,
        }
    }
}

/// Injected-fault and recovery activity of a distributed run. Only present
/// when a run executed under a fault plan, a receive deadline, or
/// checkpointed recovery; a fault-free run omits the section entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultReport {
    /// Ranks that crashed under the injected plan (across all attempts).
    pub crashes: u64,
    /// Receives that hit their deadline.
    pub timeouts: u64,
    /// Messages delayed by an injected link fault.
    pub delayed_msgs: u64,
    /// Duplicate message copies injected.
    pub duplicated_msgs: u64,
    /// Checkpoint restarts the recovery driver performed.
    pub restarts: u64,
    /// Sum of every attempt's simulated makespan, crashed attempts
    /// included — the end-to-end virtual cost of the recovered run, for
    /// recovery-overhead comparisons against a fault-free makespan.
    pub total_makespan_s: f64,
}

/// Src×dst traffic matrix of a distributed run, broken down by tag class
/// (`extadd` / `panel` / `solve` / `control` for the multifrontal engine).
/// Mirrors the simulator's `CommMatrix`; serialized sparsely (only nonzero
/// links) so large rank counts stay compact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommMatrixReport {
    /// Number of ranks (matrix is nranks×nranks×classes).
    pub nranks: usize,
    /// Tag-class names, indexed by class.
    pub class_names: Vec<String>,
    /// Payload bytes, indexed `(src * nranks + dst) * nclasses + class`.
    pub bytes: Vec<u64>,
    /// Message counts, same indexing.
    pub msgs: Vec<u64>,
}

impl CommMatrixReport {
    /// Number of tag classes.
    pub fn nclasses(&self) -> usize {
        self.class_names.len()
    }

    /// `(bytes, msgs)` on the `src → dst` link in `class`.
    pub fn at(&self, src: usize, dst: usize, class: usize) -> (u64, u64) {
        let i = (src * self.nranks + dst) * self.nclasses() + class;
        (self.bytes[i], self.msgs[i])
    }

    /// Bytes sent by `src` (row sum).
    pub fn sent_bytes(&self, src: usize) -> u64 {
        let nc = self.nclasses();
        let row = src * self.nranks * nc;
        self.bytes[row..row + self.nranks * nc].iter().sum()
    }

    /// Bytes posted to `dst` (column sum).
    pub fn posted_bytes(&self, dst: usize) -> u64 {
        (0..self.nranks)
            .flat_map(|s| (0..self.nclasses()).map(move |c| self.at(s, dst, c).0))
            .sum()
    }

    /// Total bytes in tag class `class` across all links.
    pub fn class_bytes(&self, class: usize) -> u64 {
        self.bytes
            .iter()
            .skip(class)
            .step_by(self.nclasses().max(1))
            .sum()
    }

    /// Total bytes across all links and classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all links and classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    fn to_json(&self) -> Json {
        // Sparse triplet encoding: [src, dst, class, bytes, msgs] for
        // nonzero links only. A p=128 matrix is mostly zeros.
        let nc = self.nclasses();
        let mut entries = Vec::new();
        for src in 0..self.nranks {
            for dst in 0..self.nranks {
                for class in 0..nc {
                    let (b, m) = self.at(src, dst, class);
                    if b != 0 || m != 0 {
                        entries.push(Json::Arr(vec![
                            Json::num_usize(src),
                            Json::num_usize(dst),
                            Json::num_usize(class),
                            Json::num_u64(b),
                            Json::num_u64(m),
                        ]));
                    }
                }
            }
        }
        Json::Obj(vec![
            ("nranks".to_string(), Json::num_usize(self.nranks)),
            (
                "classes".to_string(),
                Json::Arr(self.class_names.iter().map(|s| Json::str(s)).collect()),
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    fn from_json(j: &Json) -> Option<CommMatrixReport> {
        let nranks = j.get("nranks")?.as_usize()?;
        let class_names: Vec<String> = j
            .get("classes")?
            .as_arr()?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<_>>()?;
        let nc = class_names.len();
        let mut m = CommMatrixReport {
            nranks,
            class_names,
            bytes: vec![0; nranks * nranks * nc],
            msgs: vec![0; nranks * nranks * nc],
        };
        for e in j.get("entries")?.as_arr()? {
            let e = e.as_arr()?;
            if e.len() != 5 {
                return None;
            }
            let (src, dst, class) = (e[0].as_usize()?, e[1].as_usize()?, e[2].as_usize()?);
            if src >= nranks || dst >= nranks || class >= nc {
                return None;
            }
            let i = (src * nranks + dst) * nc + class;
            m.bytes[i] = e[3].as_u64()?;
            m.msgs[i] = e[4].as_u64()?;
        }
        Some(m)
    }
}

/// One rank's predicted-vs-measured scalability record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankScalability {
    pub rank: usize,
    /// Payload bytes this rank actually sent during factorization.
    pub measured_bytes: u64,
    /// Bytes the analytical model predicts this rank sends.
    pub predicted_bytes: f64,
    /// Measured peak tracked working memory, bytes.
    pub measured_mem_peak: u64,
    /// Peak working memory the model predicts, bytes.
    pub predicted_mem_peak: f64,
}

/// Predicted-vs-measured communication volume and peak working memory of a
/// run — the paper's scalability diagnostic: does measured per-process
/// comm volume and memory track the analytical model as p grows?
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalabilityReport {
    /// Ranks (or workers) the run executed on.
    pub nranks: usize,
    /// Per-rank predicted and measured terms.
    pub ranks: Vec<RankScalability>,
    /// Measured src×dst×class traffic matrix (distributed runs only).
    pub comm: Option<CommMatrixReport>,
}

impl ScalabilityReport {
    /// Total measured comm volume (bytes sent across ranks).
    pub fn measured_total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.measured_bytes).sum()
    }

    /// Total predicted comm volume (bytes).
    pub fn predicted_total_bytes(&self) -> f64 {
        self.ranks.iter().map(|r| r.predicted_bytes).sum()
    }

    /// Measured / predicted total comm volume; `None` when the model
    /// predicts zero (p = 1: nothing to send).
    pub fn volume_model_ratio(&self) -> Option<f64> {
        let p = self.predicted_total_bytes();
        (p > 0.0).then(|| self.measured_total_bytes() as f64 / p)
    }

    /// Max/mean of per-rank measured comm volume (1.0 = perfectly
    /// balanced); `None` when nothing was sent.
    pub fn volume_balance(&self) -> Option<f64> {
        Self::balance(self.ranks.iter().map(|r| r.measured_bytes as f64))
    }

    /// Max/mean of per-rank measured peak memory (1.0 = perfectly
    /// balanced); `None` when nothing was tracked.
    pub fn memory_balance(&self) -> Option<f64> {
        Self::balance(self.ranks.iter().map(|r| r.measured_mem_peak as f64))
    }

    /// Memory efficiency: total measured peak memory across ranks relative
    /// to the single largest rank peak times p — 1.0 means every rank peaks
    /// equally (the paper's per-process memory-overhead metric).
    pub fn memory_efficiency(&self) -> Option<f64> {
        let max = self
            .ranks
            .iter()
            .map(|r| r.measured_mem_peak)
            .max()
            .unwrap_or(0);
        if max == 0 || self.ranks.is_empty() {
            return None;
        }
        let total: u64 = self.ranks.iter().map(|r| r.measured_mem_peak).sum();
        Some(total as f64 / (max as f64 * self.ranks.len() as f64))
    }

    fn balance(vals: impl Iterator<Item = f64> + Clone) -> Option<f64> {
        let n = vals.clone().count();
        if n == 0 {
            return None;
        }
        let max = vals.clone().fold(0.0f64, f64::max);
        let mean = vals.sum::<f64>() / n as f64;
        (mean > 0.0).then(|| max / mean)
    }

    fn to_json(&self) -> Json {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("rank".to_string(), Json::num_usize(r.rank)),
                    (
                        "measured_bytes".to_string(),
                        Json::num_u64(r.measured_bytes),
                    ),
                    (
                        "predicted_bytes".to_string(),
                        Json::num_f64(r.predicted_bytes),
                    ),
                    (
                        "measured_mem_peak".to_string(),
                        Json::num_u64(r.measured_mem_peak),
                    ),
                    (
                        "predicted_mem_peak".to_string(),
                        Json::num_f64(r.predicted_mem_peak),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("nranks".to_string(), Json::num_usize(self.nranks)),
            ("ranks".to_string(), Json::Arr(ranks)),
        ];
        // Derived ratios, written for tooling, ignored on read.
        if let Some(r) = self.volume_model_ratio() {
            fields.push(("volume_model_ratio".to_string(), Json::num_f64(r)));
        }
        if let Some(b) = self.volume_balance() {
            fields.push(("volume_balance".to_string(), Json::num_f64(b)));
        }
        if let Some(b) = self.memory_balance() {
            fields.push(("memory_balance".to_string(), Json::num_f64(b)));
        }
        if let Some(c) = &self.comm {
            fields.push(("comm_matrix".to_string(), c.to_json()));
        }
        Json::Obj(fields)
    }

    fn from_json(j: &Json) -> Option<ScalabilityReport> {
        let ranks = j
            .get("ranks")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(RankScalability {
                    rank: r.get("rank")?.as_usize()?,
                    measured_bytes: r.get("measured_bytes")?.as_u64()?,
                    predicted_bytes: r.get("predicted_bytes")?.as_f64()?,
                    measured_mem_peak: r.get("measured_mem_peak")?.as_u64()?,
                    predicted_mem_peak: r.get("predicted_mem_peak")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ScalabilityReport {
            nranks: j.get("nranks")?.as_usize()?,
            ranks,
            comm: match j.get("comm_matrix") {
                Some(c) => Some(CommMatrixReport::from_json(c)?),
                None => None,
            },
        })
    }
}

/// The full record of one factorization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FactorReport {
    /// Engine that produced the factor: `"sequential"`, `"smp"`, `"dist"`.
    pub engine: String,
    /// Matrix order.
    pub n: usize,
    /// Structural nonzeros in the lower triangle of A (as analyzed).
    pub nnz_a: usize,
    /// Nonzeros in the computed factor L.
    pub factor_nnz: usize,
    /// Supernodes in the assembly tree.
    pub nsuper: usize,
    /// Flops predicted by symbolic analysis (`factor_flops()`).
    pub predicted_flops: f64,
    /// Number of `refactorize` calls performed on this factor object.
    pub refactorizations: u64,
    /// Wall-clock seconds spent ordering.
    pub ordering_s: f64,
    /// Wall-clock seconds spent in symbolic analysis.
    pub symbolic_s: f64,
    /// Wall-clock seconds of the most recent numeric factorization.
    pub numeric_s: f64,
    /// Aggregated counters from the collector (summed across threads or
    /// folded from ranks).
    pub counters: Counters,
    /// Per-rank breakdown (distributed engine only; empty otherwise).
    pub ranks: Vec<RankReport>,
    /// Span events (only at `TraceLevel::Full` and above; empty otherwise).
    pub spans: Vec<SpanEvent>,
    /// Timeline profile: critical path, per-rank idle breakdown, blocking
    /// edges (only at `TraceLevel::Timeline`; `None` otherwise).
    pub profile: Option<ProfileReport>,
    /// Solve-phase aggregate (only when the facade performed solves and the
    /// report was enriched via `report_with_solve`; `None` otherwise).
    pub solve: Option<SolveReport>,
    /// Analysis-phase breakdown (only when analysis tracing was on;
    /// `None` otherwise).
    pub analysis: Option<AnalysisReport>,
    /// Injected-fault / recovery activity (only when the run used fault
    /// injection or checkpointed recovery; `None` otherwise).
    pub faults: Option<FaultReport>,
    /// Predicted-vs-measured comm volume and peak memory (only when the
    /// run recorded them, i.e. tracing on; `None` otherwise).
    pub scalability: Option<ScalabilityReport>,
}

impl FactorReport {
    /// Flops the run actually performed: the counted total when tracing was
    /// on, the symbolic prediction otherwise (the two agree to within
    /// amalgamation padding, see the engine parity tests).
    pub fn effective_flops(&self) -> f64 {
        if self.counters.flops > 0.0 {
            self.counters.flops
        } else {
            self.predicted_flops
        }
    }

    /// End-to-end numeric factorization rate in Gflop/s (flops over
    /// `numeric_s` wall-clock — includes assembly and extraction overhead).
    /// `0.0` when no time was recorded.
    pub fn factor_gflops(&self) -> f64 {
        if self.numeric_s > 0.0 {
            self.effective_flops() / self.numeric_s / 1e9
        } else {
            0.0
        }
    }

    /// Dense-kernel rate in Gflop/s: flops over the time attributed to the
    /// panel-factorization and trailing-update phases only. Requires phase
    /// timing ([`crate::TraceLevel::Counters`] or above); `None` when those
    /// phases recorded no time.
    pub fn kernel_gflops(&self) -> Option<f64> {
        let t = self.counters.panel_s + self.counters.gemm_s;
        if t > 0.0 {
            Some(self.effective_flops() / t / 1e9)
        } else {
            None
        }
    }

    /// Simulated makespan of a distributed run: the slowest rank's virtual
    /// clock. `None` for shared-memory engines — their per-worker rank rows
    /// carry no virtual clock (`clock_s == 0`), so a report with only such
    /// rows has no simulated makespan.
    pub fn sim_makespan_s(&self) -> Option<f64> {
        let m = self.ranks.iter().map(|r| r.clock_s).fold(0.0f64, f64::max);
        (m > 0.0).then_some(m)
    }

    /// Load imbalance: max/mean of per-rank (or per-worker) compute time
    /// (1.0 = perfectly balanced). `None` when no per-rank rows or no
    /// compute time was recorded.
    pub fn load_imbalance(&self) -> Option<f64> {
        if self.ranks.is_empty() {
            return None;
        }
        let max = self
            .ranks
            .iter()
            .map(|r| r.compute_s)
            .fold(0.0f64, f64::max);
        let mean: f64 =
            self.ranks.iter().map(|r| r.compute_s).sum::<f64>() / self.ranks.len() as f64;
        if mean > 0.0 {
            Some(max / mean)
        } else {
            None
        }
    }

    /// Serialize to a JSON tree.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("engine".to_string(), Json::str(&self.engine)),
            ("n".to_string(), Json::num_usize(self.n)),
            ("nnz_a".to_string(), Json::num_usize(self.nnz_a)),
            ("factor_nnz".to_string(), Json::num_usize(self.factor_nnz)),
            ("nsuper".to_string(), Json::num_usize(self.nsuper)),
            (
                "predicted_flops".to_string(),
                Json::num_f64(self.predicted_flops),
            ),
            (
                "refactorizations".to_string(),
                Json::num_u64(self.refactorizations),
            ),
            ("ordering_s".to_string(), Json::num_f64(self.ordering_s)),
            ("symbolic_s".to_string(), Json::num_f64(self.symbolic_s)),
            ("numeric_s".to_string(), Json::num_f64(self.numeric_s)),
            // Derived rates, written for downstream tooling but never read
            // back (from_json ignores them), so round-trips stay exact.
            (
                "factor_gflops".to_string(),
                Json::num_f64(self.factor_gflops()),
            ),
            ("counters".to_string(), counters_to_json(&self.counters)),
        ];
        if let Some(kg) = self.kernel_gflops() {
            fields.push(("kernel_gflops".to_string(), Json::num_f64(kg)));
        }
        if !self.ranks.is_empty() {
            fields.push((
                "ranks".to_string(),
                Json::Arr(self.ranks.iter().map(rank_to_json).collect()),
            ));
        }
        if !self.spans.is_empty() {
            fields.push((
                "spans".to_string(),
                Json::Arr(self.spans.iter().map(span_to_json).collect()),
            ));
        }
        if let Some(p) = &self.profile {
            fields.push(("profile".to_string(), p.to_json()));
        }
        if let Some(s) = &self.solve {
            fields.push(("solve".to_string(), solve_to_json(s)));
        }
        if let Some(a) = &self.analysis {
            fields.push(("analysis".to_string(), analysis_to_json(a)));
        }
        if let Some(f) = &self.faults {
            fields.push(("faults".to_string(), faults_to_json(f)));
        }
        if let Some(s) = &self.scalability {
            fields.push(("scalability".to_string(), s.to_json()));
        }
        Json::Obj(fields)
    }

    /// Serialize to a compact JSON string (one line).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Serialize to indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Deserialize from a JSON tree. Unknown fields are ignored; missing
    /// fields default (so reports stay readable across schema growth).
    pub fn from_json(j: &Json) -> Result<FactorReport, JsonError> {
        let mut r = FactorReport::default();
        let field_err = |name: &str| JsonError {
            pos: 0,
            msg: format!("bad or missing report field '{name}'"),
        };
        r.engine = j
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| field_err("engine"))?
            .to_string();
        r.n = j
            .get("n")
            .and_then(Json::as_usize)
            .ok_or_else(|| field_err("n"))?;
        r.nnz_a = j.get("nnz_a").and_then(Json::as_usize).unwrap_or(0);
        r.factor_nnz = j.get("factor_nnz").and_then(Json::as_usize).unwrap_or(0);
        r.nsuper = j.get("nsuper").and_then(Json::as_usize).unwrap_or(0);
        r.predicted_flops = j
            .get("predicted_flops")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        r.refactorizations = j
            .get("refactorizations")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        r.ordering_s = j.get("ordering_s").and_then(Json::as_f64).unwrap_or(0.0);
        r.symbolic_s = j.get("symbolic_s").and_then(Json::as_f64).unwrap_or(0.0);
        r.numeric_s = j.get("numeric_s").and_then(Json::as_f64).unwrap_or(0.0);
        if let Some(c) = j.get("counters") {
            r.counters = counters_from_json(c).ok_or_else(|| field_err("counters"))?;
        }
        if let Some(ranks) = j.get("ranks").and_then(Json::as_arr) {
            r.ranks = ranks
                .iter()
                .map(rank_from_json)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| field_err("ranks"))?;
        }
        if let Some(spans) = j.get("spans").and_then(Json::as_arr) {
            r.spans = spans
                .iter()
                .map(span_from_json)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| field_err("spans"))?;
        }
        if let Some(p) = j.get("profile") {
            r.profile = Some(ProfileReport::from_json(p).ok_or_else(|| field_err("profile"))?);
        }
        if let Some(s) = j.get("solve") {
            r.solve = Some(solve_from_json(s).ok_or_else(|| field_err("solve"))?);
        }
        if let Some(a) = j.get("analysis") {
            r.analysis = Some(analysis_from_json(a).ok_or_else(|| field_err("analysis"))?);
        }
        if let Some(f) = j.get("faults") {
            r.faults = Some(faults_from_json(f).ok_or_else(|| field_err("faults"))?);
        }
        if let Some(s) = j.get("scalability") {
            r.scalability =
                Some(ScalabilityReport::from_json(s).ok_or_else(|| field_err("scalability"))?);
        }
        Ok(r)
    }

    /// Deserialize from JSON text.
    pub fn from_json_str(text: &str) -> Result<FactorReport, JsonError> {
        FactorReport::from_json(&crate::json::parse(text)?)
    }
}

fn counters_to_json(c: &Counters) -> Json {
    Json::Obj(vec![
        (
            "fronts_factored".to_string(),
            Json::num_u64(c.fronts_factored),
        ),
        ("flops".to_string(), Json::num_f64(c.flops)),
        (
            "bytes_assembled".to_string(),
            Json::num_u64(c.bytes_assembled),
        ),
        ("bytes_sent".to_string(), Json::num_u64(c.bytes_sent)),
        ("msgs_sent".to_string(), Json::num_u64(c.msgs_sent)),
        ("extend_add_s".to_string(), Json::num_f64(c.extend_add_s)),
        ("panel_s".to_string(), Json::num_f64(c.panel_s)),
        ("gemm_s".to_string(), Json::num_f64(c.gemm_s)),
        ("solve_s".to_string(), Json::num_f64(c.solve_s)),
        ("coarsen_s".to_string(), Json::num_f64(c.coarsen_s)),
        ("bisect_s".to_string(), Json::num_f64(c.bisect_s)),
        ("refine_s".to_string(), Json::num_f64(c.refine_s)),
        ("mindeg_s".to_string(), Json::num_f64(c.mindeg_s)),
        ("etree_s".to_string(), Json::num_f64(c.etree_s)),
        ("colcount_s".to_string(), Json::num_f64(c.colcount_s)),
        ("structure_s".to_string(), Json::num_f64(c.structure_s)),
        (
            "mem_peak_bytes".to_string(),
            Json::num_u64(c.mem_peak_bytes),
        ),
    ])
}

fn counters_from_json(j: &Json) -> Option<Counters> {
    // Analysis-stage times postdate the first schema revision: default when
    // reading reports written before the analysis phase was instrumented.
    let opt = |name: &str| j.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    Some(Counters {
        fronts_factored: j.get("fronts_factored")?.as_u64()?,
        flops: j.get("flops")?.as_f64()?,
        bytes_assembled: j.get("bytes_assembled")?.as_u64()?,
        bytes_sent: j.get("bytes_sent")?.as_u64()?,
        msgs_sent: j.get("msgs_sent")?.as_u64()?,
        extend_add_s: j.get("extend_add_s")?.as_f64()?,
        panel_s: j.get("panel_s")?.as_f64()?,
        gemm_s: j.get("gemm_s")?.as_f64()?,
        solve_s: opt("solve_s"),
        coarsen_s: opt("coarsen_s"),
        bisect_s: opt("bisect_s"),
        refine_s: opt("refine_s"),
        mindeg_s: opt("mindeg_s"),
        etree_s: opt("etree_s"),
        colcount_s: opt("colcount_s"),
        structure_s: opt("structure_s"),
        mem_peak_bytes: j.get("mem_peak_bytes")?.as_u64()?,
    })
}

fn analysis_to_json(a: &AnalysisReport) -> Json {
    Json::Obj(vec![
        ("threads".to_string(), Json::num_usize(a.threads)),
        ("coarsen_s".to_string(), Json::num_f64(a.coarsen_s)),
        ("bisect_s".to_string(), Json::num_f64(a.bisect_s)),
        ("refine_s".to_string(), Json::num_f64(a.refine_s)),
        ("mindeg_s".to_string(), Json::num_f64(a.mindeg_s)),
        ("etree_s".to_string(), Json::num_f64(a.etree_s)),
        ("colcount_s".to_string(), Json::num_f64(a.colcount_s)),
        ("structure_s".to_string(), Json::num_f64(a.structure_s)),
    ])
}

fn analysis_from_json(j: &Json) -> Option<AnalysisReport> {
    Some(AnalysisReport {
        threads: j.get("threads")?.as_usize()?,
        coarsen_s: j.get("coarsen_s")?.as_f64()?,
        bisect_s: j.get("bisect_s")?.as_f64()?,
        refine_s: j.get("refine_s")?.as_f64()?,
        mindeg_s: j.get("mindeg_s")?.as_f64()?,
        etree_s: j.get("etree_s")?.as_f64()?,
        colcount_s: j.get("colcount_s")?.as_f64()?,
        structure_s: j.get("structure_s")?.as_f64()?,
    })
}

fn faults_to_json(f: &FaultReport) -> Json {
    Json::Obj(vec![
        ("crashes".to_string(), Json::num_u64(f.crashes)),
        ("timeouts".to_string(), Json::num_u64(f.timeouts)),
        ("delayed_msgs".to_string(), Json::num_u64(f.delayed_msgs)),
        (
            "duplicated_msgs".to_string(),
            Json::num_u64(f.duplicated_msgs),
        ),
        ("restarts".to_string(), Json::num_u64(f.restarts)),
        (
            "total_makespan_s".to_string(),
            Json::num_f64(f.total_makespan_s),
        ),
    ])
}

fn faults_from_json(j: &Json) -> Option<FaultReport> {
    // Every field defaults: the section only ever grows.
    let opt = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    Some(FaultReport {
        crashes: opt("crashes"),
        timeouts: opt("timeouts"),
        delayed_msgs: opt("delayed_msgs"),
        duplicated_msgs: opt("duplicated_msgs"),
        restarts: opt("restarts"),
        total_makespan_s: j
            .get("total_makespan_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
    })
}

fn solve_to_json(s: &SolveReport) -> Json {
    Json::Obj(vec![
        ("solves".to_string(), Json::num_u64(s.solves)),
        ("rhs".to_string(), Json::num_u64(s.rhs)),
        ("seconds".to_string(), Json::num_f64(s.seconds)),
        ("flops".to_string(), Json::num_f64(s.flops)),
        // Derived rate, written for tooling, ignored on read.
        ("solve_gflops".to_string(), Json::num_f64(s.gflops())),
    ])
}

fn solve_from_json(j: &Json) -> Option<SolveReport> {
    Some(SolveReport {
        solves: j.get("solves")?.as_u64()?,
        rhs: j.get("rhs")?.as_u64()?,
        seconds: j.get("seconds")?.as_f64()?,
        flops: j.get("flops")?.as_f64()?,
    })
}

fn rank_to_json(r: &RankReport) -> Json {
    Json::Obj(vec![
        ("rank".to_string(), Json::num_usize(r.rank)),
        ("clock_s".to_string(), Json::num_f64(r.clock_s)),
        ("compute_s".to_string(), Json::num_f64(r.compute_s)),
        ("comm_s".to_string(), Json::num_f64(r.comm_s)),
        ("comm_hidden_s".to_string(), Json::num_f64(r.comm_hidden_s)),
        ("queue_peak".to_string(), Json::num_u64(r.queue_peak)),
        ("flops".to_string(), Json::num_f64(r.flops)),
        ("bytes_sent".to_string(), Json::num_u64(r.bytes_sent)),
        ("msgs_sent".to_string(), Json::num_u64(r.msgs_sent)),
        ("bytes_recv".to_string(), Json::num_u64(r.bytes_recv)),
        ("msgs_recv".to_string(), Json::num_u64(r.msgs_recv)),
        (
            "mem_peak_bytes".to_string(),
            Json::num_u64(r.mem_peak_bytes),
        ),
    ])
}

fn rank_from_json(j: &Json) -> Option<RankReport> {
    Some(RankReport {
        rank: j.get("rank")?.as_usize()?,
        clock_s: j.get("clock_s")?.as_f64()?,
        compute_s: j.get("compute_s")?.as_f64()?,
        comm_s: j.get("comm_s")?.as_f64()?,
        // Overlap fields postdate the first schema revision: default when
        // reading reports written before nonblocking communication existed.
        comm_hidden_s: j.get("comm_hidden_s").and_then(Json::as_f64).unwrap_or(0.0),
        queue_peak: j.get("queue_peak").and_then(Json::as_u64).unwrap_or(0),
        flops: j.get("flops")?.as_f64()?,
        bytes_sent: j.get("bytes_sent")?.as_u64()?,
        msgs_sent: j.get("msgs_sent")?.as_u64()?,
        // Receive counters postdate the comm-matrix revision: default when
        // reading reports written before receives were accounted.
        bytes_recv: j.get("bytes_recv").and_then(Json::as_u64).unwrap_or(0),
        msgs_recv: j.get("msgs_recv").and_then(Json::as_u64).unwrap_or(0),
        mem_peak_bytes: j.get("mem_peak_bytes")?.as_u64()?,
    })
}

fn span_to_json(s: &SpanEvent) -> Json {
    Json::Obj(vec![
        ("phase".to_string(), Json::str(s.phase.name())),
        (
            "supernode".to_string(),
            match s.supernode {
                Some(sn) => Json::num_usize(sn),
                None => Json::Null,
            },
        ),
        ("who".to_string(), Json::num_usize(s.who)),
        ("start_s".to_string(), Json::num_f64(s.start_s)),
        ("dur_s".to_string(), Json::num_f64(s.dur_s)),
    ])
}

fn span_from_json(j: &Json) -> Option<SpanEvent> {
    Some(SpanEvent {
        phase: Phase::from_name(j.get("phase")?.as_str()?)?,
        supernode: match j.get("supernode")? {
            Json::Null => None,
            other => Some(other.as_usize()?),
        },
        who: j.get("who")?.as_usize()?,
        start_s: j.get("start_s")?.as_f64()?,
        dur_s: j.get("dur_s")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> FactorReport {
        FactorReport {
            engine: "dist".to_string(),
            n: 10_000,
            nnz_a: 49_600,
            factor_nnz: 312_345,
            nsuper: 1_234,
            predicted_flops: 3.21e8,
            refactorizations: 2,
            ordering_s: 0.012,
            symbolic_s: 0.003,
            numeric_s: 0.207,
            counters: Counters {
                fronts_factored: 1_234,
                flops: 3.3e8,
                bytes_assembled: 9_876_543,
                bytes_sent: 1 << 54, // beyond 2^53: exercises exact u64 text
                msgs_sent: 4_321,
                extend_add_s: 0.04,
                panel_s: 0.15,
                gemm_s: 0.01,
                solve_s: 0.002,
                coarsen_s: 0.004,
                bisect_s: 0.003,
                refine_s: 0.002,
                mindeg_s: 0.001,
                etree_s: 0.0005,
                colcount_s: 0.0006,
                structure_s: 0.0007,
                mem_peak_bytes: 12_582_912,
            },
            ranks: vec![
                RankReport {
                    rank: 0,
                    clock_s: 1.5,
                    compute_s: 1.2,
                    comm_s: 0.3,
                    comm_hidden_s: 0.07,
                    queue_peak: 3,
                    flops: 1.6e8,
                    bytes_sent: 500,
                    msgs_sent: 10,
                    bytes_recv: 650,
                    msgs_recv: 11,
                    mem_peak_bytes: 6_000_000,
                },
                RankReport {
                    rank: 1,
                    clock_s: 1.4,
                    compute_s: 0.8,
                    comm_s: 0.6,
                    comm_hidden_s: 0.11,
                    queue_peak: 5,
                    flops: 1.7e8,
                    bytes_sent: 700,
                    msgs_sent: 12,
                    bytes_recv: 550,
                    msgs_recv: 9,
                    mem_peak_bytes: 6_582_912,
                },
            ],
            spans: vec![
                SpanEvent {
                    phase: Phase::ExtendAdd,
                    supernode: Some(7),
                    who: 1,
                    start_s: 0.001,
                    dur_s: 0.0005,
                },
                SpanEvent {
                    phase: Phase::Panel,
                    supernode: None,
                    who: 0,
                    start_s: 0.002,
                    dur_s: 0.01,
                },
            ],
            profile: None,
            solve: None,
            analysis: None,
            faults: None,
            scalability: None,
        }
    }

    #[test]
    fn faults_section_round_trips() {
        let mut r = sample_report();
        r.faults = Some(FaultReport {
            crashes: 1,
            timeouts: 2,
            delayed_msgs: 30,
            duplicated_msgs: 4,
            restarts: 1,
            total_makespan_s: 0.125,
        });
        let text = r.to_json_string();
        assert!(text.contains("\"faults\""));
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        // Reports without the section parse to None; partial sections
        // (older writers) default missing fields.
        let plain = sample_report();
        let back = FactorReport::from_json_str(&plain.to_json_string()).unwrap();
        assert_eq!(back.faults, None);
        let partial =
            FactorReport::from_json_str("{\"engine\":\"dist\",\"n\":4,\"faults\":{\"crashes\":3}}")
                .unwrap();
        let f = partial.faults.unwrap();
        assert_eq!(f.crashes, 3);
        assert_eq!(f.restarts, 0);
    }

    #[test]
    fn analysis_section_round_trips() {
        let mut r = sample_report();
        r.analysis = Some(AnalysisReport {
            threads: 4,
            coarsen_s: 0.004,
            bisect_s: 0.003,
            refine_s: 0.002,
            mindeg_s: 0.001,
            etree_s: 0.0005,
            colcount_s: 0.0006,
            structure_s: 0.0007,
        });
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let a = r.analysis.unwrap();
        assert_eq!(a.stages().len(), 7);
        assert!((a.total_s() - 0.0118).abs() < 1e-12);
        // Reports without the section parse to None.
        let plain = sample_report();
        let back = FactorReport::from_json_str(&plain.to_json_string()).unwrap();
        assert_eq!(back.analysis, None);
    }

    #[test]
    fn pre_analysis_counters_still_parse() {
        // Counter blocks written before the analysis stages were
        // instrumented lack the per-stage fields; they default to zero.
        let text = "{\"engine\":\"smp\",\"n\":4,\"counters\":{\
                    \"fronts_factored\":1,\"flops\":2.0,\
                    \"bytes_assembled\":8,\"bytes_sent\":0,\"msgs_sent\":0,\
                    \"extend_add_s\":0.1,\"panel_s\":0.2,\"gemm_s\":0.3,\
                    \"mem_peak_bytes\":64}}";
        let r = FactorReport::from_json_str(text).unwrap();
        assert_eq!(r.counters.coarsen_s, 0.0);
        assert_eq!(r.counters.structure_s, 0.0);
        assert_eq!(r.counters.panel_s, 0.2);
    }

    #[test]
    fn solve_section_round_trips() {
        let mut r = sample_report();
        r.solve = Some(SolveReport {
            solves: 3,
            rhs: 40,
            seconds: 0.004,
            flops: 5.0e7,
        });
        let text = r.to_json_string();
        assert!(text.contains("\"solve_gflops\""));
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        let g = r.solve.unwrap().gflops();
        assert!((g - 5.0e7 / 0.004 / 1e9).abs() < 1e-12, "g={g}");
        // Reports without the section parse to None.
        let plain = sample_report();
        let back = FactorReport::from_json_str(&plain.to_json_string()).unwrap();
        assert_eq!(back.solve, None);
    }

    #[test]
    fn profile_section_round_trips() {
        use crate::profile::{BlockingEdge, RankActivity};
        let mut r = sample_report();
        r.profile = Some(ProfileReport {
            critical_path_s: 1.25,
            critical_path_wait_s: 0.25,
            critical_path_len: 17,
            makespan_s: 1.5,
            ranks: vec![RankActivity {
                who: 0,
                busy_s: 1.2,
                comm_s: 0.2,
                wait_s: 0.1,
                idle_frac: 0.0667,
            }],
            blocking_edges: vec![BlockingEdge {
                blocker: Some(3),
                waiter: 9,
                wait_s: 0.2,
            }],
            congested_rank: Some(1),
        });
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        // Reports without the section parse to None.
        let plain = sample_report();
        let back = FactorReport::from_json_str(&plain.to_json_string()).unwrap();
        assert_eq!(back.profile, None);
    }

    #[test]
    fn empty_profile_section_round_trips() {
        // A degenerate profile (no spans at all — e.g. a zero-front
        // problem) still round-trips: empty vectors and a None congested
        // rank must not be confused with an absent section.
        let mut r = sample_report();
        r.profile = Some(ProfileReport::default());
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.profile.as_ref().unwrap().max_idle_frac(), 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        for text in [r.to_json_string(), r.to_json_pretty()] {
            let back = FactorReport::from_json_str(&text).unwrap();
            assert_eq!(back, r);
        }
        // The >2^53 counter survived exactly.
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.counters.bytes_sent, 1 << 54);
    }

    #[test]
    fn shared_memory_report_omits_rank_and_span_sections() {
        let r = FactorReport {
            engine: "sequential".to_string(),
            n: 100,
            ..FactorReport::default()
        };
        let text = r.to_json_string();
        assert!(!text.contains("\"ranks\""));
        assert!(!text.contains("\"spans\""));
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.sim_makespan_s(), None);
        assert_eq!(back.load_imbalance(), None);
    }

    #[test]
    fn dist_summaries() {
        let r = sample_report();
        assert_eq!(r.sim_makespan_s(), Some(1.5));
        let imb = r.load_imbalance().unwrap();
        assert!((imb - 1.2 / 1.0).abs() < 1e-12, "imb={imb}");
    }

    #[test]
    fn gflops_rates_derive_from_counters() {
        let r = sample_report();
        // Counted flops win over the prediction.
        assert_eq!(r.effective_flops(), 3.3e8);
        let fg = r.factor_gflops();
        assert!((fg - 3.3e8 / 0.207 / 1e9).abs() < 1e-12, "fg={fg}");
        let kg = r.kernel_gflops().unwrap();
        assert!((kg - 3.3e8 / 0.16 / 1e9).abs() < 1e-9, "kg={kg}");
        // Untimed run: end-to-end rate is zero, kernel rate absent.
        let empty = FactorReport::default();
        assert_eq!(empty.factor_gflops(), 0.0);
        assert_eq!(empty.kernel_gflops(), None);
        // Untraced (counters zero) but timed: falls back to the prediction.
        let untraced = FactorReport {
            predicted_flops: 2e9,
            numeric_s: 0.5,
            ..FactorReport::default()
        };
        assert_eq!(untraced.factor_gflops(), 4.0);
        // The derived fields appear in JSON output...
        let text = sample_report().to_json_string();
        assert!(text.contains("\"factor_gflops\""));
        assert!(text.contains("\"kernel_gflops\""));
        // ...without disturbing the round trip.
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(back, sample_report());
    }

    #[test]
    fn missing_required_fields_error() {
        assert!(FactorReport::from_json_str("{}").is_err());
        assert!(FactorReport::from_json_str("{\"engine\":\"smp\"}").is_err());
        // Minimal valid document.
        let r = FactorReport::from_json_str("{\"engine\":\"smp\",\"n\":5}").unwrap();
        assert_eq!(r.engine, "smp");
        assert_eq!(r.n, 5);
        assert_eq!(r.counters, Counters::default());
    }

    #[test]
    fn pre_overlap_rank_records_still_parse() {
        // Reports written before the overlap counters existed lack
        // `comm_hidden_s`/`queue_peak`; they must read back with defaults.
        let text = "{\"engine\":\"dist\",\"n\":4,\"ranks\":[{\"rank\":0,\
                    \"clock_s\":1.0,\"compute_s\":0.5,\"comm_s\":0.5,\
                    \"flops\":10.0,\"bytes_sent\":8,\"msgs_sent\":1,\
                    \"mem_peak_bytes\":64}]}";
        let r = FactorReport::from_json_str(text).unwrap();
        assert_eq!(r.ranks.len(), 1);
        assert_eq!(r.ranks[0].comm_hidden_s, 0.0);
        assert_eq!(r.ranks[0].queue_peak, 0);
    }

    fn sample_scalability() -> ScalabilityReport {
        ScalabilityReport {
            nranks: 2,
            ranks: vec![
                RankScalability {
                    rank: 0,
                    measured_bytes: 500,
                    predicted_bytes: 400.0,
                    measured_mem_peak: 6_000_000,
                    predicted_mem_peak: 5.5e6,
                },
                RankScalability {
                    rank: 1,
                    measured_bytes: 700,
                    predicted_bytes: 800.0,
                    measured_mem_peak: 6_582_912,
                    predicted_mem_peak: 7.0e6,
                },
            ],
            comm: Some(CommMatrixReport {
                nranks: 2,
                class_names: vec!["extadd".into(), "panel".into()],
                bytes: vec![0, 0, 400, 100, 600, 100, 0, 0],
                msgs: vec![0, 0, 4, 1, 5, 2, 0, 0],
            }),
        }
    }

    #[test]
    fn scalability_section_round_trips() {
        let mut r = sample_report();
        r.scalability = Some(sample_scalability());
        let text = r.to_json_string();
        assert!(text.contains("\"scalability\""));
        // Derived ratios are written for tooling...
        assert!(text.contains("\"volume_model_ratio\""));
        assert!(text.contains("\"volume_balance\""));
        assert!(text.contains("\"memory_balance\""));
        // ...but ignored on read, so the round trip is exact.
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        // Reports without the section parse to None.
        let plain = sample_report();
        let back = FactorReport::from_json_str(&plain.to_json_string()).unwrap();
        assert_eq!(back.scalability, None);
    }

    #[test]
    fn scalability_summaries() {
        let s = sample_scalability();
        assert_eq!(s.measured_total_bytes(), 1200);
        assert_eq!(s.predicted_total_bytes(), 1200.0);
        assert!((s.volume_model_ratio().unwrap() - 1.0).abs() < 1e-12);
        let vb = s.volume_balance().unwrap();
        assert!((vb - 700.0 / 600.0).abs() < 1e-12, "vb={vb}");
        let mb = s.memory_balance().unwrap();
        assert!(mb > 1.0 && mb < 1.1, "mb={mb}");
        let me = s.memory_efficiency().unwrap();
        assert!(me > 0.9 && me <= 1.0, "me={me}");
        // Comm-matrix accessors agree with the per-rank measured bytes.
        let m = s.comm.as_ref().unwrap();
        assert_eq!(m.sent_bytes(0), 500);
        assert_eq!(m.sent_bytes(1), 700);
        assert_eq!(m.posted_bytes(0), 700);
        assert_eq!(m.at(0, 1, 0), (400, 4));
        assert_eq!(m.class_bytes(1), 200);
        assert_eq!(m.total_bytes(), 1200);
    }

    #[test]
    fn zero_comm_single_rank_scalability_round_trips() {
        // A p=1 run sends nothing: ratios that would divide by zero are
        // absent, and the empty matrix still round-trips.
        let s = ScalabilityReport {
            nranks: 1,
            ranks: vec![RankScalability {
                rank: 0,
                measured_bytes: 0,
                predicted_bytes: 0.0,
                measured_mem_peak: 1024,
                predicted_mem_peak: 1000.0,
            }],
            comm: Some(CommMatrixReport {
                nranks: 1,
                class_names: vec!["extadd".into()],
                bytes: vec![0],
                msgs: vec![0],
            }),
        };
        assert_eq!(s.volume_model_ratio(), None);
        assert_eq!(s.volume_balance(), None);
        assert_eq!(s.memory_balance(), Some(1.0));
        assert_eq!(s.memory_efficiency(), Some(1.0));
        let mut r = sample_report();
        r.scalability = Some(s);
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_scalability_report_round_trips() {
        let mut r = sample_report();
        r.scalability = Some(ScalabilityReport::default());
        let s = r.scalability.as_ref().unwrap();
        assert_eq!(s.volume_model_ratio(), None);
        assert_eq!(s.memory_balance(), None);
        assert_eq!(s.memory_efficiency(), None);
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn host_engine_worker_rows_have_no_sim_makespan() {
        // Shared-memory engines publish per-worker rows with no virtual
        // clock; they must not fake a simulated makespan, but load
        // imbalance (a wall-time ratio) is still meaningful.
        let r = FactorReport {
            engine: "smp".to_string(),
            n: 100,
            ranks: vec![
                RankReport {
                    rank: 0,
                    compute_s: 0.4,
                    flops: 1e6,
                    mem_peak_bytes: 4096,
                    ..RankReport::default()
                },
                RankReport {
                    rank: 1,
                    compute_s: 0.2,
                    flops: 5e5,
                    mem_peak_bytes: 2048,
                    ..RankReport::default()
                },
            ],
            ..FactorReport::default()
        };
        assert_eq!(r.sim_makespan_s(), None);
        let imb = r.load_imbalance().unwrap();
        assert!((imb - 0.4 / 0.3).abs() < 1e-12, "imb={imb}");
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn pre_comm_matrix_rank_records_still_parse() {
        // Reports written before receive accounting lack `bytes_recv` /
        // `msgs_recv`; they must read back with zero defaults.
        let text = "{\"engine\":\"dist\",\"n\":4,\"ranks\":[{\"rank\":0,\
                    \"clock_s\":1.0,\"compute_s\":0.5,\"comm_s\":0.5,\
                    \"flops\":10.0,\"bytes_sent\":8,\"msgs_sent\":1,\
                    \"mem_peak_bytes\":64}]}";
        let r = FactorReport::from_json_str(text).unwrap();
        assert_eq!(r.ranks[0].bytes_recv, 0);
        assert_eq!(r.ranks[0].msgs_recv, 0);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let r = FactorReport::from_json_str(
            "{\"engine\":\"sequential\",\"n\":3,\"future_field\":[1,2,3]}",
        )
        .unwrap();
        assert_eq!(r.n, 3);
    }
}
