//! Property-based tests for the symbolic-analysis invariants on random
//! sparsity patterns.

use parfact_sparse::gen;
use parfact_sparse::perm::Perm;
use parfact_symbolic::{analyze, etree, AmalgOpts, NONE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analyze_invariants_hold(n in 4usize..60, k in 0usize..5, seed in any::<u64>(),
                               min_width in 0usize..12, relax in 0.0f64..0.5) {
        let a = gen::random_spd(n, k, seed);
        let (sym, ap) = analyze(&a, &AmalgOpts { min_width, relax_frac: relax });

        // Partition covers all columns contiguously.
        prop_assert_eq!(sym.sn_ptr[0], 0);
        prop_assert_eq!(*sym.sn_ptr.last().unwrap(), n);
        prop_assert!(sym.sn_ptr.windows(2).all(|w| w[0] < w[1]));

        // sn_of is consistent with the partition.
        for s in 0..sym.nsuper() {
            for c in sym.sn_cols(s) {
                prop_assert_eq!(sym.sn_of[c], s);
            }
        }

        // The assembly tree is a valid postordered forest and every
        // supernode's below rows are covered by its parent.
        prop_assert!(sym.tree.validate());
        for s in 0..sym.nsuper() {
            let p = sym.tree.parent[s];
            if p == NONE {
                prop_assert!(sym.sn_rows[s].is_empty());
                continue;
            }
            prop_assert!(p > s);
            for &r in &sym.sn_rows[s] {
                let ok = sym.sn_cols(p).contains(&r)
                    || sym.sn_rows[p].binary_search(&r).is_ok();
                prop_assert!(ok, "row {} of supernode {} not covered", r, s);
            }
        }

        // Rows are sorted, strictly beyond the pivot block, in range.
        for s in 0..sym.nsuper() {
            let c1 = sym.sn_ptr[s + 1];
            prop_assert!(sym.sn_rows[s].windows(2).all(|w| w[0] < w[1]));
            prop_assert!(sym.sn_rows[s].iter().all(|&r| r >= c1 && r < n));
        }

        // Factor never loses entries of A, and flops dominate nnz.
        prop_assert!(sym.factor_nnz() >= ap.nnz());
        prop_assert!(sym.factor_flops() >= sym.factor_nnz() as f64);
    }

    #[test]
    fn postorder_permutation_is_consistent(n in 2usize..80, k in 0usize..5, seed in any::<u64>()) {
        let a = gen::random_spd(n, k, seed);
        let parent = etree::etree(&a);
        let post = etree::postorder(&parent);
        // post is a permutation.
        let p = Perm::from_vec(post);
        // Relabeled tree is postordered and has the same root count.
        let rl = etree::relabel(&parent, &p);
        prop_assert!(etree::is_postordered(&rl));
        let roots_before = parent.iter().filter(|&&x| x == NONE).count();
        let roots_after = rl.iter().filter(|&&x| x == NONE).count();
        prop_assert_eq!(roots_before, roots_after);
    }

    #[test]
    fn strict_partition_is_finest(n in 4usize..50, k in 1usize..4, seed in any::<u64>()) {
        let a = gen::random_spd(n, k, seed);
        let strict = analyze(&a, &AmalgOpts { min_width: 0, relax_frac: 0.0 }).0;
        let relaxed = analyze(&a, &AmalgOpts { min_width: 8, relax_frac: 0.25 }).0;
        prop_assert!(relaxed.nsuper() <= strict.nsuper());
        prop_assert!(relaxed.factor_nnz() >= strict.factor_nnz());
        // Relaxed boundaries are a subset of strict boundaries... not true in
        // general for arbitrary amalgamation schemes, but ours only merges
        // fundamental supernodes, so every relaxed boundary is a strict one.
        let strict_set: std::collections::HashSet<usize> = strict.sn_ptr.iter().copied().collect();
        for b in &relaxed.sn_ptr {
            prop_assert!(strict_set.contains(b), "boundary {} not fundamental", b);
        }
    }

    #[test]
    fn amalgamation_padding_is_bounded(n in 8usize..60, k in 1usize..4, seed in any::<u64>()) {
        // The strict-size budget must cap padding: relaxed nnz stays within
        // (1 + relax) * strict nnz + tiny-merge slack.
        let a = gen::random_spd(n, k, seed);
        let strict = analyze(&a, &AmalgOpts { min_width: 0, relax_frac: 0.0 }).0;
        let relaxed = analyze(&a, &AmalgOpts { min_width: 4, relax_frac: 0.10 }).0;
        let bound = (strict.factor_nnz() as f64) * 1.35 + 64.0 * strict.nsuper() as f64;
        prop_assert!(
            (relaxed.factor_nnz() as f64) <= bound,
            "padding exploded: strict {} relaxed {}",
            strict.factor_nnz(),
            relaxed.factor_nnz()
        );
    }
}
