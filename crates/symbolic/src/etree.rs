//! Elimination tree (Liu's algorithm), postorder, and tree utilities.
//!
//! The elimination tree of a symmetric matrix has `parent(j) = min { i > j :
//! L[i][j] != 0 }`. It encodes every column dependency of the factorization
//! and is the skeleton all later analysis (and all parallelism) hangs off.

use crate::NONE;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;

/// Compute the elimination tree of a symmetric-lower CSC matrix using
/// Liu's algorithm with ancestor path compression. `O(nnz * α(n))`.
pub fn etree(a: &CscMatrix) -> Vec<usize> {
    let n = a.ncols();
    // Liu's algorithm must visit nodes i in ascending order and, for each,
    // the entries (i, j) with j < i — i.e. *row* i of the lower triangle.
    // (Sweeping columns instead can point a parent edge downward.) Row
    // access comes from the transpose.
    let at = a.to_csr();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for i in 0..n {
        let (cols, _) = at.row(i);
        for &j in cols {
            if j >= i {
                continue;
            }
            // Walk from j to the root of its current tree, compressing the
            // ancestor path to i as we go; the old root becomes i's child.
            let mut r = j;
            while r != NONE && r < i {
                let next = ancestor[r];
                ancestor[r] = i;
                if next == NONE {
                    parent[r] = i;
                }
                r = next;
            }
        }
    }
    parent
}

/// Postorder a forest given as a parent array. Children are visited in
/// ascending order, so the result is deterministic. Returns `post` where
/// `post[k]` is the original node visited `k`-th — i.e. a `new → old`
/// permutation vector.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (ascending by construction).
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NONE {
            next[j] = head[p];
            head[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != NONE {
            continue;
        }
        // Iterative DFS emitting nodes in postorder.
        stack.push(root);
        while let Some(&top) = stack.last() {
            let child = head[top];
            if child == NONE {
                post.push(top);
                stack.pop();
            } else {
                head[top] = next[child];
                stack.push(child);
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post
}

/// Relabel a parent array under a `new → old` permutation:
/// `out[new_j] = new_of_old(parent[old_j])`.
pub fn relabel(parent: &[usize], perm: &Perm) -> Vec<usize> {
    let n = parent.len();
    let mut out = vec![NONE; n];
    for newj in 0..n {
        let oldj = perm.old_of_new(newj);
        let p = parent[oldj];
        out[newj] = if p == NONE { NONE } else { perm.new_of_old(p) };
    }
    out
}

/// True iff every parent index exceeds its child (the defining property of
/// a postordered elimination tree with consecutive subtrees).
pub fn is_postordered(parent: &[usize]) -> bool {
    parent.iter().enumerate().all(|(j, &p)| p == NONE || p > j)
}

/// Number of nodes in each subtree (requires a postordered parent array).
pub fn subtree_sizes(parent: &[usize]) -> Vec<usize> {
    debug_assert!(is_postordered(parent));
    let n = parent.len();
    let mut size = vec![1usize; n];
    for j in 0..n {
        let p = parent[j];
        if p != NONE {
            size[p] += size[j];
        }
    }
    size
}

/// Depth of each node (roots have depth 0; requires postordered parents).
pub fn depths(parent: &[usize]) -> Vec<usize> {
    debug_assert!(is_postordered(parent));
    let n = parent.len();
    let mut depth = vec![0usize; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NONE {
            depth[j] = depth[p] + 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::coo::CooMatrix;
    use parfact_sparse::gen;

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = gen::tridiagonal(6);
        let parent = etree(&a);
        assert_eq!(parent, vec![1, 2, 3, 4, 5, NONE]);
    }

    #[test]
    fn etree_of_diagonal_is_forest_of_singletons() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        let parent = etree(&coo.to_csc());
        assert_eq!(parent, vec![NONE; 4]);
    }

    #[test]
    fn etree_of_arrowhead_reversed() {
        // Arrowhead with the hub FIRST: every elimination of column 0
        // connects everything; parent(j) = j+1 after fill.
        let a = gen::arrowhead(5);
        let parent = etree(&a);
        assert_eq!(parent, vec![1, 2, 3, 4, NONE]);
    }

    #[test]
    fn etree_known_small_example() {
        // From Davis' book style: A lower pattern
        // col0: {0, 3}, col1: {1, 4}, col2: {2, 4}, col3: {3, 4}, col4: {4}.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 4.0);
        }
        coo.push(3, 0, 1.0);
        coo.push(4, 1, 1.0);
        coo.push(4, 2, 1.0);
        coo.push(4, 3, 1.0);
        let parent = etree(&coo.to_csc());
        assert_eq!(parent, vec![3, 4, 4, 4, NONE]);
    }

    #[test]
    fn etree_fill_path_regression() {
        // Entries (2,0), (4,0), (3,2): eliminating 0 fills (4,2), so
        // parent[2] = 3 and parent[3] = 4 via fill. A column-order sweep
        // (the bug this guards against) wrongly produced parent[4] = 3.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 4.0);
        }
        coo.push(2, 0, 1.0);
        coo.push(4, 0, 1.0);
        coo.push(3, 2, 1.0);
        let parent = etree(&coo.to_csc());
        assert_eq!(parent, vec![2, NONE, 3, 4, NONE]);
    }

    #[test]
    fn postorder_of_path_is_identity() {
        let parent = vec![1, 2, 3, NONE];
        assert_eq!(postorder(&parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        // Star: root 3 with children 0, 1, 2.
        let parent = vec![3, 3, 3, NONE];
        let post = postorder(&parent);
        assert_eq!(post, vec![0, 1, 2, 3]);
    }

    #[test]
    fn postorder_handles_forest() {
        // Two trees: {0 -> 1} and {2 -> 3}.
        let parent = vec![1, NONE, 3, NONE];
        let post = postorder(&parent);
        assert_eq!(post.len(), 4);
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (k, &v) in post.iter().enumerate() {
                pos[v] = k;
            }
            pos
        };
        assert!(pos[0] < pos[1]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn relabel_preserves_tree_shape() {
        // Tree 0->2, 1->2 (root 2). Postorder = identity here, so test with a
        // nontrivial permutation instead.
        let parent = vec![2, 2, NONE];
        let p = Perm::from_vec(vec![2, 0, 1]); // new0=old2, new1=old0, new2=old1
        let rl = relabel(&parent, &p);
        // old2 (root) -> new0: parent NONE. old0 -> new1: parent old2 = new0.
        assert_eq!(rl, vec![NONE, 0, 0]);
    }

    #[test]
    fn postordered_etree_of_grid() {
        let a = gen::laplace2d(5, 4, gen::Stencil2d::FivePoint);
        let parent = etree(&a);
        let post = postorder(&parent);
        let p = Perm::from_vec(post);
        let rl = relabel(&parent, &p);
        assert!(is_postordered(&rl));
        // Re-permuted matrix has the same (relabeled) etree.
        let ap = p.apply_sym_lower(&a);
        assert_eq!(etree(&ap), rl);
    }

    #[test]
    fn subtree_sizes_and_depths() {
        // Postordered tree: 0->2, 1->2, 2->4, 3->4, root 4.
        let parent = vec![2, 2, 4, 4, NONE];
        assert_eq!(subtree_sizes(&parent), vec![1, 1, 3, 1, 5]);
        assert_eq!(depths(&parent), vec![2, 2, 1, 1, 0]);
    }
}
