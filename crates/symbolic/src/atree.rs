//! The assembly tree: the task graph of the multifrontal method.
//!
//! Each node is a supernode; the edge `s → parent(s)` says "the update
//! matrix produced by front `s` is assembled (extend-added) into front
//! `parent(s)`". Disjoint subtrees are independent — all parallelism in the
//! factorization, from work-stealing threads to subtree-to-subcube rank
//! mapping, is parallelism over this tree.

use crate::NONE;

/// Assembly tree over supernodes (numbered in column order = postorder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyTree {
    /// Parent supernode, `NONE` at roots.
    pub parent: Vec<usize>,
    /// Children lists (ascending).
    pub children: Vec<Vec<usize>>,
    /// Root supernodes (ascending).
    pub roots: Vec<usize>,
}

impl AssemblyTree {
    /// Build from the supernode partition and per-supernode row structures:
    /// the parent is the supernode owning the first below-pivot row.
    pub fn build(sn_ptr: &[usize], sn_of: &[usize], sn_rows: &[Vec<usize>]) -> Self {
        let nsuper = sn_ptr.len() - 1;
        let mut parent = vec![NONE; nsuper];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nsuper];
        let mut roots = Vec::new();
        for s in 0..nsuper {
            match sn_rows[s].first() {
                Some(&r) => {
                    let p = sn_of[r];
                    debug_assert!(p > s, "assembly tree must be postordered");
                    parent[s] = p;
                    children[p].push(s);
                }
                None => roots.push(s),
            }
        }
        AssemblyTree {
            parent,
            children,
            roots,
        }
    }

    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Per-node subtree aggregate of an arbitrary weight function (e.g.
    /// flops per front): `out[s] = w(s) + Σ_{child c} out[c]`.
    pub fn subtree_sum(&self, weight: impl Fn(usize) -> f64) -> Vec<f64> {
        let n = self.len();
        let mut acc: Vec<f64> = (0..n).map(&weight).collect();
        for s in 0..n {
            if self.parent[s] != NONE {
                let v = acc[s];
                acc[self.parent[s]] += v;
            }
        }
        acc
    }

    /// Depth of each supernode (roots at 0).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.len();
        let mut d = vec![0usize; n];
        for s in (0..n).rev() {
            if self.parent[s] != NONE {
                d[s] = d[self.parent[s]] + 1;
            }
        }
        d
    }

    /// Height of the tree (max depth + 1; 0 for an empty tree).
    pub fn height(&self) -> usize {
        self.depths().iter().max().map_or(0, |&d| d + 1)
    }

    /// Number of leaves.
    pub fn nleaves(&self) -> usize {
        self.children.iter().filter(|c| c.is_empty()).count()
    }

    /// The critical path length under a weight function: the maximum over
    /// leaves of the summed weight along the root path. This lower-bounds
    /// parallel factorization time and upper-bounds achievable speedup as
    /// `total / critical`.
    pub fn critical_path(&self, weight: impl Fn(usize) -> f64) -> f64 {
        let n = self.len();
        let mut up: Vec<f64> = (0..n).map(&weight).collect();
        let mut best: f64 = 0.0;
        for s in (0..n).rev() {
            if self.parent[s] != NONE {
                up[s] += up[self.parent[s]];
            }
            best = best.max(up[s]);
        }
        best
    }

    /// Validate structural invariants (postorder, mutual parent/child
    /// consistency, every non-root reachable from a root).
    pub fn validate(&self) -> bool {
        let n = self.len();
        for s in 0..n {
            let p = self.parent[s];
            if p == NONE {
                if self.roots.binary_search(&s).is_err() {
                    return false;
                }
            } else {
                if p <= s || p >= n {
                    return false;
                }
                if self.children[p].binary_search(&s).is_err() {
                    return false;
                }
            }
        }
        let child_edges: usize = self.children.iter().map(|c| c.len()).sum();
        child_edges + self.roots.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree used everywhere below:
    /// ```text
    ///        4
    ///       / \
    ///      2   3
    ///     / \
    ///    0   1
    /// ```
    fn sample() -> AssemblyTree {
        // Simulate via build(): supernodes 0..5 each one column; rows point
        // at the parent's column.
        let sn_ptr = vec![0, 1, 2, 3, 4, 5];
        let sn_of = vec![0, 1, 2, 3, 4];
        let sn_rows = vec![vec![2], vec![2], vec![4], vec![4], vec![]];
        AssemblyTree::build(&sn_ptr, &sn_of, &sn_rows)
    }

    #[test]
    fn build_sets_parents_and_children() {
        let t = sample();
        assert_eq!(t.parent, vec![2, 2, 4, 4, NONE]);
        assert_eq!(t.children[2], vec![0, 1]);
        assert_eq!(t.children[4], vec![2, 3]);
        assert_eq!(t.roots, vec![4]);
        assert!(t.validate());
    }

    #[test]
    fn subtree_sum_accumulates() {
        let t = sample();
        let acc = t.subtree_sum(|_| 1.0);
        assert_eq!(acc, vec![1.0, 1.0, 3.0, 1.0, 5.0]);
    }

    #[test]
    fn depths_and_height() {
        let t = sample();
        assert_eq!(t.depths(), vec![2, 2, 1, 1, 0]);
        assert_eq!(t.height(), 3);
        assert_eq!(t.nleaves(), 3);
    }

    #[test]
    fn critical_path_with_uniform_weights() {
        let t = sample();
        // Longest root path: 0 -> 2 -> 4 = 3 nodes.
        assert_eq!(t.critical_path(|_| 1.0), 3.0);
        // Weighted: make node 3 heavy; path 3 -> 4 dominates.
        let w = [1.0, 1.0, 1.0, 10.0, 1.0];
        assert_eq!(t.critical_path(|s| w[s]), 11.0);
    }

    #[test]
    fn forest_with_two_roots() {
        let sn_ptr = vec![0, 1, 2, 3, 4];
        let sn_of = vec![0, 1, 2, 3];
        let sn_rows = vec![vec![1], vec![], vec![3], vec![]];
        let t = AssemblyTree::build(&sn_ptr, &sn_of, &sn_rows);
        assert_eq!(t.roots, vec![1, 3]);
        assert!(t.validate());
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn validate_catches_broken_children() {
        let mut t = sample();
        t.children[2].clear();
        assert!(!t.validate());
    }
}
