//! Column counts of the Cholesky factor via the Gilbert–Ng–Peyton
//! skeleton-matrix algorithm — `nnz(L[:, j])` for every column in
//! near-linear `O(nnz(A) α(n))` time, *without* forming the structure of
//! `L`.
//!
//! This is the algorithm of Gilbert, Ng & Peyton (1994) as organized in
//! Davis' `cs_counts`: walk the skeleton entries of each row subtree,
//! crediting each new leaf and debiting the least common ancestor of
//! consecutive leaves so every path is counted exactly once.

use crate::NONE;
use parfact_sparse::csc::CscMatrix;
use parfact_trace::{Collector, Phase};

/// Internal: classify `(i, j)` as a row-subtree leaf and return the LCA of
/// `j` and the previous leaf of row `i` when it is a "subsequent" leaf.
/// `jleaf`: 0 = not a leaf, 1 = first leaf of row `i`, 2 = subsequent leaf.
/// `off` rebases the mutable per-node arrays: the parallel subtree pass
/// hands in arrays covering only its contiguous node range `[off, ...]`,
/// while the classic pass uses `off = 0` with full-length arrays.
#[allow(clippy::too_many_arguments)]
fn leaf(
    i: usize,
    j: usize,
    first: &[usize],
    maxfirst: &mut [usize],
    prevleaf: &mut [usize],
    ancestor: &mut [usize],
    jleaf: &mut u8,
    off: usize,
) -> usize {
    *jleaf = 0;
    if i <= j || (maxfirst[i - off] != NONE && first[j] <= maxfirst[i - off]) {
        return NONE;
    }
    maxfirst[i - off] = first[j];
    let jprev = prevleaf[i - off];
    prevleaf[i - off] = j;
    if jprev == NONE {
        *jleaf = 1;
        return i;
    }
    *jleaf = 2;
    // LCA of jprev and j: root of jprev in the partially-built ancestor
    // forest, with path compression.
    let mut q = jprev;
    while q != ancestor[q - off] {
        q = ancestor[q - off];
    }
    let mut s = jprev;
    while s != q {
        let sp = ancestor[s - off];
        ancestor[s - off] = q;
        s = sp;
    }
    q
}

/// Column counts (`nnz(L[:, j])`, diagonal included) of the Cholesky factor
/// of a **postordered** symmetric-lower matrix with the given (postordered)
/// elimination tree.
pub fn col_counts(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(parent.len(), n);
    debug_assert!(crate::etree::is_postordered(parent));

    // The matrix is postordered, so post[k] = k and `first[j]` is the first
    // postorder index in j's subtree = j - subtree_size(j) + 1; computed by
    // the standard sweep.
    let mut first = vec![NONE; n];
    let mut delta = vec![0isize; n];
    for k in 0..n {
        let mut j = k;
        delta[k] = if first[k] == NONE { 1 } else { 0 };
        while j != NONE && first[j] == NONE {
            first[j] = k;
            j = parent[j];
        }
    }

    let mut maxfirst = vec![NONE; n];
    let mut prevleaf = vec![NONE; n];
    let mut ancestor: Vec<usize> = (0..n).collect();

    for j in 0..n {
        if parent[j] != NONE {
            delta[parent[j]] -= 1;
        }
        // The sweep needs, for node j, the rows i > j with A[i][j] != 0 —
        // exactly column j of the lower-CSC storage.
        let (rows, _) = a.col(j);
        let mut jleaf = 0u8;
        for &i in rows {
            if i <= j {
                continue;
            }
            let q = leaf(
                i,
                j,
                &first,
                &mut maxfirst,
                &mut prevleaf,
                &mut ancestor,
                &mut jleaf,
                0,
            );
            if jleaf >= 1 {
                delta[j] += 1;
            }
            if jleaf == 2 {
                delta[q] -= 1;
            }
        }
        if parent[j] != NONE {
            ancestor[j] = parent[j];
        }
    }
    // Accumulate deltas up the tree.
    let mut colcount = delta;
    for j in 0..n {
        if parent[j] != NONE {
            let c = colcount[j];
            colcount[parent[j]] += c;
        }
    }
    colcount.into_iter().map(|c| c as usize).collect()
}

/// Granularity of the parallel decomposition: maximal subtrees at most this
/// large become independent tasks. A function of the tree alone — never of
/// the thread count — so the task list (and the span structure it produces)
/// is reproducible across runs.
fn subtree_cap(n: usize) -> usize {
    64.max(n / 32)
}

/// Column counts on `threads` workers.
///
/// Maximal etree subtrees below a size cap run as independent tasks:
/// because the matrix is postordered, a subtree is a contiguous node range
/// `[lo, r]`, every entry `(i, j)` with `j` in the subtree and `i <= r` has
/// `i` in the subtree too (rows of `A[:, j]` are etree ancestors of `j`),
/// and the LCA of two subtree nodes stays in the subtree — so each task's
/// Gilbert–Ng–Peyton state (`maxfirst` / `prevleaf` / `ancestor` / private
/// deltas) is provably subtree-local. Entries whose row lies *above* a
/// subtree root are replayed by one sequential pass over the remaining
/// "top" rows, which sees the same ancestor evolution as the classic
/// algorithm (path compression never changes the roots found).
///
/// The output is **bitwise identical** to [`col_counts`] at every thread
/// count: every delta contribution is the same integer regardless of which
/// worker computes it, and integer accumulation commutes.
pub fn col_counts_par(
    a: &CscMatrix,
    parent: &[usize],
    threads: usize,
    tr: &Collector,
) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(parent.len(), n);
    debug_assert!(crate::etree::is_postordered(parent));
    if n == 0 {
        return Vec::new();
    }

    let mut rec0 = tr.local(0);
    let t = rec0.start();
    // Sequential prologue: first-descendant sweep seeds the deltas.
    let mut first = vec![NONE; n];
    let mut delta = vec![0isize; n];
    for k in 0..n {
        let mut j = k;
        delta[k] = if first[k] == NONE { 1 } else { 0 };
        while j != NONE && first[j] == NONE {
            first[j] = k;
            j = parent[j];
        }
    }

    // Carve the antichain of maximal subtrees below the cap. Everything not
    // inside one is a "top" node; ancestors of top nodes are top, so the
    // top pass below is closed under the rows it owns.
    let size = crate::etree::subtree_sizes(parent);
    let cap = subtree_cap(n);
    let mut tasks: Vec<(usize, usize)> = Vec::new(); // (lo, root)
    let mut is_top = vec![true; n];
    for r in 0..n {
        if size[r] <= cap && (parent[r] == NONE || size[parent[r]] > cap) {
            let lo = r + 1 - size[r];
            for x in lo..=r {
                is_top[x] = false;
            }
            tasks.push((lo, r));
        }
    }
    rec0.stop(t, Phase::Colcount, None);

    // Per-subtree pass: private deltas over the contiguous range [lo, r].
    let first_ref = &first;
    let run_subtree = |lo: usize, r: usize| -> Vec<isize> {
        let w = r + 1 - lo;
        let mut d = vec![0isize; w];
        let mut maxfirst = vec![NONE; w];
        let mut prevleaf = vec![NONE; w];
        let mut ancestor: Vec<usize> = (lo..=r).collect();
        let mut jleaf = 0u8;
        for j in lo..=r {
            // The root's parent decrement escapes the range; the merge loop
            // below applies it to the global deltas instead.
            if j != r {
                d[parent[j] - lo] -= 1;
            }
            let (rows, _) = a.col(j);
            for &i in rows {
                if i <= j || i > r {
                    continue;
                }
                let q = leaf(
                    i,
                    j,
                    first_ref,
                    &mut maxfirst,
                    &mut prevleaf,
                    &mut ancestor,
                    &mut jleaf,
                    lo,
                );
                if jleaf >= 1 {
                    d[j - lo] += 1;
                }
                if jleaf == 2 {
                    d[q - lo] -= 1;
                }
            }
            if j != r {
                ancestor[j - lo] = parent[j];
            }
        }
        d
    };

    let mut results: Vec<(usize, Vec<isize>)> = Vec::with_capacity(tasks.len());
    if threads <= 1 {
        for (idx, &(lo, r)) in tasks.iter().enumerate() {
            let mut rec = tr.local(0);
            let t = rec.start();
            let d = run_subtree(lo, r);
            rec.stop(t, Phase::Colcount, Some(idx));
            results.push((lo, d));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out: std::sync::Mutex<Vec<(usize, Vec<isize>)>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..threads {
                let (next, out, tasks) = (&next, &out, &tasks);
                scope.spawn(move || {
                    let mut rec = tr.local(w);
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(lo, r)) = tasks.get(idx) else {
                            break;
                        };
                        let t = rec.start();
                        let d = run_subtree(lo, r);
                        rec.stop(t, Phase::Colcount, Some(idx));
                        mine.push((lo, d));
                    }
                    out.lock().unwrap().append(&mut mine);
                });
            }
        });
        results = out.into_inner().unwrap();
    }

    let t = rec0.start();
    // Merge: ranges are disjoint and contributions additive, so order is
    // irrelevant to the result.
    for (lo, d) in results {
        for (k, v) in d.into_iter().enumerate() {
            delta[lo + k] += v;
        }
    }
    for &(_, r) in &tasks {
        if parent[r] != NONE {
            delta[parent[r]] -= 1;
        }
    }

    // Sequential top pass: entries whose row is a top node, over all
    // columns ascending, maintaining the global ancestor forest exactly as
    // the classic loop does.
    let mut maxfirst = vec![NONE; n];
    let mut prevleaf = vec![NONE; n];
    let mut ancestor: Vec<usize> = (0..n).collect();
    let mut jleaf = 0u8;
    for j in 0..n {
        if is_top[j] && parent[j] != NONE {
            delta[parent[j]] -= 1;
        }
        let (rows, _) = a.col(j);
        for &i in rows {
            if i <= j || !is_top[i] {
                continue;
            }
            let q = leaf(
                i,
                j,
                &first,
                &mut maxfirst,
                &mut prevleaf,
                &mut ancestor,
                &mut jleaf,
                0,
            );
            if jleaf >= 1 {
                delta[j] += 1;
            }
            if jleaf == 2 {
                delta[q] -= 1;
            }
        }
        if parent[j] != NONE {
            ancestor[j] = parent[j];
        }
    }
    // Accumulate deltas up the tree.
    let mut colcount = delta;
    for j in 0..n {
        if parent[j] != NONE {
            let c = colcount[j];
            colcount[parent[j]] += c;
        }
    }
    rec0.stop(t, Phase::Colcount, None);
    colcount.into_iter().map(|c| c as usize).collect()
}

/// Reference column counts via explicit symbolic factorization — `O(|L|)`,
/// used to validate [`col_counts`] in tests and small runs.
pub fn col_counts_naive(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    // Structure of L row by row: row i of L = path union in etree from each
    // A-row entry up toward i (the row-subtree characterization).
    let mut count = vec![1usize; n]; // diagonal
    let at = a.to_csr();
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i;
        let (cols, _) = at.row(i);
        for &j in cols {
            if j >= i {
                continue;
            }
            // Walk from j to the marked region, counting L[i][x] per node x.
            let mut x = j;
            while mark[x] != i {
                mark[x] = i;
                count[x] += 1; // L[i][x] is a nonzero below x's diagonal
                x = parent[x];
                debug_assert_ne!(x, NONE, "walk escaped the tree");
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder, relabel};
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    fn counts_both_ways(a: &CscMatrix) -> (Vec<usize>, Vec<usize>) {
        let parent0 = etree(a);
        let post = Perm::from_vec(postorder(&parent0));
        let ap = post.apply_sym_lower(a);
        let parent = relabel(&parent0, &post);
        (col_counts(&ap, &parent), col_counts_naive(&ap, &parent))
    }

    #[test]
    fn tridiagonal_counts() {
        let a = gen::tridiagonal(7);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![2, 2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn grid_counts_match_naive() {
        let a = gen::laplace2d(7, 6, gen::Stencil2d::FivePoint);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn grid3d_counts_match_naive() {
        let a = gen::laplace3d(4, 4, 4, gen::Stencil3d::SevenPoint);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn random_counts_match_naive() {
        for seed in 0..5 {
            let a = gen::random_spd(60, 4, seed);
            let (fast, slow) = counts_both_ways(&a);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn parallel_counts_bitwise_match_sequential() {
        let cases: Vec<CscMatrix> = vec![
            gen::tridiagonal(9),
            gen::laplace2d(13, 11, gen::Stencil2d::NinePoint),
            gen::laplace3d(5, 4, 6, gen::Stencil3d::SevenPoint),
            gen::random_spd(120, 5, 42),
            gen::arrowhead(8),
        ];
        for (case, a) in cases.iter().enumerate() {
            let parent0 = etree(a);
            let post = Perm::from_vec(postorder(&parent0));
            let ap = post.apply_sym_lower(a);
            let parent = relabel(&parent0, &post);
            let seq = col_counts(&ap, &parent);
            for threads in [1, 2, 4, 8] {
                let par = col_counts_par(&ap, &parent, threads, &Collector::disabled());
                assert_eq!(par, seq, "case {case} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_counts_record_tagged_spans() {
        let a = gen::laplace2d(16, 16, gen::Stencil2d::FivePoint);
        let parent0 = etree(&a);
        let post = Perm::from_vec(postorder(&parent0));
        let ap = post.apply_sym_lower(&a);
        let parent = relabel(&parent0, &post);
        let tr = Collector::new(parfact_trace::TraceLevel::Timeline);
        let par = col_counts_par(&ap, &parent, 2, &tr);
        assert_eq!(par, col_counts(&ap, &parent));
        assert!(tr.snapshot().colcount_s > 0.0);
        let spans = tr.take_spans();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| s.phase == Phase::Colcount));
        // Subtree tasks carry their task index; the sequential prologue,
        // merge, and top pass are untagged.
        assert!(spans.iter().any(|s| s.supernode.is_some()));
        assert!(spans.iter().any(|s| s.supernode.is_none()));
    }

    #[test]
    fn arrowhead_reversed_fills_completely() {
        // Hub first: L is completely dense below the diagonal.
        let a = gen::arrowhead(6);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn dense_counts() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(4, 4);
        for i in 0..4 {
            for j in 0..=i {
                coo.push(i, j, 1.0 + (i == j) as u8 as f64 * 6.0);
            }
        }
        let (fast, _) = counts_both_ways(&coo.to_csc());
        assert_eq!(fast, vec![4, 3, 2, 1]);
    }
}
