//! Column counts of the Cholesky factor via the Gilbert–Ng–Peyton
//! skeleton-matrix algorithm — `nnz(L[:, j])` for every column in
//! near-linear `O(nnz(A) α(n))` time, *without* forming the structure of
//! `L`.
//!
//! This is the algorithm of Gilbert, Ng & Peyton (1994) as organized in
//! Davis' `cs_counts`: walk the skeleton entries of each row subtree,
//! crediting each new leaf and debiting the least common ancestor of
//! consecutive leaves so every path is counted exactly once.

use crate::NONE;
use parfact_sparse::csc::CscMatrix;

/// Internal: classify `(i, j)` as a row-subtree leaf and return the LCA of
/// `j` and the previous leaf of row `i` when it is a "subsequent" leaf.
/// `jleaf`: 0 = not a leaf, 1 = first leaf of row `i`, 2 = subsequent leaf.
#[allow(clippy::too_many_arguments)]
fn leaf(
    i: usize,
    j: usize,
    first: &[usize],
    maxfirst: &mut [usize],
    prevleaf: &mut [usize],
    ancestor: &mut [usize],
    jleaf: &mut u8,
) -> usize {
    *jleaf = 0;
    if i <= j || (maxfirst[i] != NONE && first[j] <= maxfirst[i]) {
        return NONE;
    }
    maxfirst[i] = first[j];
    let jprev = prevleaf[i];
    prevleaf[i] = j;
    if jprev == NONE {
        *jleaf = 1;
        return i;
    }
    *jleaf = 2;
    // LCA of jprev and j: root of jprev in the partially-built ancestor
    // forest, with path compression.
    let mut q = jprev;
    while q != ancestor[q] {
        q = ancestor[q];
    }
    let mut s = jprev;
    while s != q {
        let sp = ancestor[s];
        ancestor[s] = q;
        s = sp;
    }
    q
}

/// Column counts (`nnz(L[:, j])`, diagonal included) of the Cholesky factor
/// of a **postordered** symmetric-lower matrix with the given (postordered)
/// elimination tree.
pub fn col_counts(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(parent.len(), n);
    debug_assert!(crate::etree::is_postordered(parent));

    // The matrix is postordered, so post[k] = k and `first[j]` is the first
    // postorder index in j's subtree = j - subtree_size(j) + 1; computed by
    // the standard sweep.
    let mut first = vec![NONE; n];
    let mut delta = vec![0isize; n];
    for k in 0..n {
        let mut j = k;
        delta[k] = if first[k] == NONE { 1 } else { 0 };
        while j != NONE && first[j] == NONE {
            first[j] = k;
            j = parent[j];
        }
    }

    let mut maxfirst = vec![NONE; n];
    let mut prevleaf = vec![NONE; n];
    let mut ancestor: Vec<usize> = (0..n).collect();

    for j in 0..n {
        if parent[j] != NONE {
            delta[parent[j]] -= 1;
        }
        // The sweep needs, for node j, the rows i > j with A[i][j] != 0 —
        // exactly column j of the lower-CSC storage.
        let (rows, _) = a.col(j);
        let mut jleaf = 0u8;
        for &i in rows {
            if i <= j {
                continue;
            }
            let q = leaf(
                i,
                j,
                &first,
                &mut maxfirst,
                &mut prevleaf,
                &mut ancestor,
                &mut jleaf,
            );
            if jleaf >= 1 {
                delta[j] += 1;
            }
            if jleaf == 2 {
                delta[q] -= 1;
            }
        }
        if parent[j] != NONE {
            ancestor[j] = parent[j];
        }
    }
    // Accumulate deltas up the tree.
    let mut colcount = delta;
    for j in 0..n {
        if parent[j] != NONE {
            let c = colcount[j];
            colcount[parent[j]] += c;
        }
    }
    colcount.into_iter().map(|c| c as usize).collect()
}

/// Reference column counts via explicit symbolic factorization — `O(|L|)`,
/// used to validate [`col_counts`] in tests and small runs.
pub fn col_counts_naive(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    // Structure of L row by row: row i of L = path union in etree from each
    // A-row entry up toward i (the row-subtree characterization).
    let mut count = vec![1usize; n]; // diagonal
    let at = a.to_csr();
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i;
        let (cols, _) = at.row(i);
        for &j in cols {
            if j >= i {
                continue;
            }
            // Walk from j to the marked region, counting L[i][x] per node x.
            let mut x = j;
            while mark[x] != i {
                mark[x] = i;
                count[x] += 1; // L[i][x] is a nonzero below x's diagonal
                x = parent[x];
                debug_assert_ne!(x, NONE, "walk escaped the tree");
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder, relabel};
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    fn counts_both_ways(a: &CscMatrix) -> (Vec<usize>, Vec<usize>) {
        let parent0 = etree(a);
        let post = Perm::from_vec(postorder(&parent0));
        let ap = post.apply_sym_lower(a);
        let parent = relabel(&parent0, &post);
        (col_counts(&ap, &parent), col_counts_naive(&ap, &parent))
    }

    #[test]
    fn tridiagonal_counts() {
        let a = gen::tridiagonal(7);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![2, 2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn grid_counts_match_naive() {
        let a = gen::laplace2d(7, 6, gen::Stencil2d::FivePoint);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn grid3d_counts_match_naive() {
        let a = gen::laplace3d(4, 4, 4, gen::Stencil3d::SevenPoint);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
    }

    #[test]
    fn random_counts_match_naive() {
        for seed in 0..5 {
            let a = gen::random_spd(60, 4, seed);
            let (fast, slow) = counts_both_ways(&a);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn arrowhead_reversed_fills_completely() {
        // Hub first: L is completely dense below the diagonal.
        let a = gen::arrowhead(6);
        let (fast, slow) = counts_both_ways(&a);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn dense_counts() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(4, 4);
        for i in 0..4 {
            for j in 0..=i {
                coo.push(i, j, 1.0 + (i == j) as u8 as f64 * 6.0);
            }
        }
        let (fast, _) = counts_both_ways(&coo.to_csc());
        assert_eq!(fast, vec![4, 3, 2, 1]);
    }
}
