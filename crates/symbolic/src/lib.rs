//! Symbolic analysis for sparse symmetric factorization.
//!
//! Given a fill-reducing permutation, this crate computes everything the
//! numeric phase needs to know about the factor *before touching a single
//! floating-point number*:
//!
//! - [`etree`] — the elimination tree and its postorder;
//! - [`colcount`] — per-column nonzero counts of `L` (the
//!   Gilbert–Ng–Peyton skeleton algorithm, near-linear time);
//! - [`supernode`] — fundamental supernodes and relaxed amalgamation;
//! - [`structure`] — per-supernode row structure of `L`, factor nnz and
//!   flop predictions;
//! - [`atree`] — the assembly (task) tree over supernodes that the
//!   parallel engines schedule.
//!
//! The entry point is [`analyze`], which chains all of the above and
//! returns a [`Symbolic`] object. The input matrix must already carry the
//! fill-reducing permutation; `analyze` additionally postorders the
//! elimination tree and reports the extra permutation it applied (the
//! caller composes it with the fill-reducing one).
// Index loops over parallel arrays (`for j in 0..n` touching several
// slices) are the deliberate idiom of this numerical code; clippy's
// iterator rewrites obscure the subscript math.
#![allow(clippy::needless_range_loop)]

pub mod atree;
pub mod colcount;
pub mod etree;
pub mod structure;
pub mod supernode;

use parfact_sparse::csc::CscMatrix;
use parfact_sparse::perm::Perm;
use parfact_trace::{Collector, Phase};

/// Sentinel for "no parent" in tree arrays.
pub const NONE: usize = usize::MAX;

/// Supernode amalgamation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmalgOpts {
    /// Supernodes at most this wide are always merged into their parent
    /// when column-adjacent.
    pub min_width: usize,
    /// Merge when the explicit zeros introduced stay below this fraction of
    /// the combined supernode size.
    pub relax_frac: f64,
}

impl Default for AmalgOpts {
    fn default() -> Self {
        AmalgOpts {
            min_width: 8,
            relax_frac: 0.10,
        }
    }
}

/// Complete symbolic factorization.
#[derive(Debug, Clone)]
pub struct Symbolic {
    /// Order of the (postordered) matrix.
    pub n: usize,
    /// Postorder permutation applied on top of the caller's fill ordering.
    /// The numeric phase factors `P_post (P_fill A P_fillᵀ) P_postᵀ`.
    pub post: Perm,
    /// Elimination-tree parent of each (postordered) column; `NONE` at roots.
    pub parent: Vec<usize>,
    /// `nnz(L[:, j])` including the diagonal, per postordered column.
    pub colcount: Vec<usize>,
    /// Supernode partition: `sn_ptr[s]..sn_ptr[s+1]` are the columns of
    /// supernode `s`. Supernodes are numbered in column order, which is a
    /// postorder of the assembly tree.
    pub sn_ptr: Vec<usize>,
    /// Supernode owning each column.
    pub sn_of: Vec<usize>,
    /// Below-pivot row structure of each supernode (sorted, global indices).
    pub sn_rows: Vec<Vec<usize>>,
    /// Assembly tree over supernodes.
    pub tree: atree::AssemblyTree,
}

impl Symbolic {
    /// Number of supernodes.
    pub fn nsuper(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Columns of supernode `s`.
    pub fn sn_cols(&self, s: usize) -> std::ops::Range<usize> {
        self.sn_ptr[s]..self.sn_ptr[s + 1]
    }

    /// Width (number of pivot columns) of supernode `s`.
    pub fn sn_width(&self, s: usize) -> usize {
        self.sn_ptr[s + 1] - self.sn_ptr[s]
    }

    /// Order of the frontal matrix of supernode `s` (width + below rows).
    pub fn front_order(&self, s: usize) -> usize {
        self.sn_width(s) + self.sn_rows[s].len()
    }

    /// Total nonzeros of `L` under this supernode partition (padding from
    /// amalgamation included, diagonal included).
    pub fn factor_nnz(&self) -> usize {
        (0..self.nsuper())
            .map(|s| {
                let w = self.sn_width(s);
                let r = self.sn_rows[s].len();
                w * (w + 1) / 2 + w * r
            })
            .sum()
    }

    /// Floating-point operations of the numeric factorization: the classic
    /// `Σ_j nnz(L[:,j])²` estimate evaluated per supernode front. This is
    /// the LAPACK convention (multiplies and adds counted separately;
    /// `n³/3` for a dense matrix).
    pub fn factor_flops(&self) -> f64 {
        let mut fl = 0.0;
        for s in 0..self.nsuper() {
            let w = self.sn_width(s);
            let r = self.sn_rows[s].len();
            for k in 0..w {
                let len = (w - k) + r;
                fl += (len * len) as f64;
            }
        }
        fl
    }
}

/// Run the full symbolic pipeline on a symmetric-lower matrix that already
/// carries its fill-reducing permutation.
///
/// Returns the [`Symbolic`] plus the postordered copy of the matrix (the
/// numeric phase factors exactly that matrix).
pub fn analyze(a: &CscMatrix, opts: &AmalgOpts) -> (Symbolic, CscMatrix) {
    analyze_with(a, opts, 1, &Collector::disabled())
}

/// [`analyze`] on `threads` workers with per-stage analysis tracing.
///
/// The result is **bitwise identical** to [`analyze`] at every thread
/// count: the column-count and row-structure passes decompose over etree
/// subtrees whose per-task contributions commute (see
/// [`colcount::col_counts_par`] and [`structure::supernode_rows_par`]); the
/// remaining stages are cheap tree sweeps that stay sequential.
pub fn analyze_with(
    a: &CscMatrix,
    opts: &AmalgOpts,
    threads: usize,
    tr: &Collector,
) -> (Symbolic, CscMatrix) {
    a.check_sym_lower()
        .expect("analyze() requires a symmetric-lower matrix");
    let n = a.ncols();
    let mut rec = tr.local(0);

    // 1. Elimination tree of the input, then postorder it.
    let t = rec.start();
    let parent0 = etree::etree(a);
    let postv = etree::postorder(&parent0);
    let post = Perm::from_vec(postv);
    let ap = post.apply_sym_lower(a);

    // 2. Relabeled etree (postordering relabels but preserves shape).
    let parent = etree::relabel(&parent0, &post);
    debug_assert!(etree::is_postordered(&parent));
    rec.stop(t, Phase::Etree, None);

    // 3. Column counts of L (subtree-parallel).
    let colcount = colcount::col_counts_par(&ap, &parent, threads, tr);

    // 4. Supernodes: fundamental, then relaxed amalgamation.
    let t = rec.start();
    let fundamental = supernode::fundamental_supernodes(&parent, &colcount);
    let sn_ptr = supernode::amalgamate(&fundamental, &parent, &colcount, opts);
    let mut sn_of = vec![0usize; n];
    for s in 0..sn_ptr.len() - 1 {
        for c in sn_ptr[s]..sn_ptr[s + 1] {
            sn_of[c] = s;
        }
    }
    rec.stop(t, Phase::Structure, None);

    // 5. Row structures per supernode (subtree-parallel).
    let sn_rows = structure::supernode_rows_par(&ap, &sn_ptr, &sn_of, &parent, threads, tr);

    // 6. Assembly tree.
    let t = rec.start();
    let tree = atree::AssemblyTree::build(&sn_ptr, &sn_of, &sn_rows);
    rec.stop(t, Phase::Structure, None);

    let sym = Symbolic {
        n,
        post,
        parent,
        colcount,
        sn_ptr,
        sn_of,
        sn_rows,
        tree,
    };
    (sym, ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;

    #[test]
    fn analyze_tridiagonal_has_no_fill() {
        let a = gen::tridiagonal(10);
        let (sym, ap) = analyze(
            &a,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        assert_eq!(sym.n, 10);
        assert_eq!(ap.nnz(), a.nnz());
        // Tridiagonal factor has exactly the same pattern: nnz(L) = 2n - 1.
        assert_eq!(sym.factor_nnz(), 19);
        // Every colcount is 2 except the last.
        assert_eq!(sym.colcount[9], 1);
        assert!(sym.colcount[..9].iter().all(|&c| c == 2));
    }

    #[test]
    fn analyze_dense_block() {
        // Fully dense 5x5: one supernode of width 5.
        let mut coo = parfact_sparse::coo::CooMatrix::new(5, 5);
        for i in 0..5 {
            for j in 0..=i {
                coo.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let a = coo.to_csc();
        let (sym, _) = analyze(&a, &AmalgOpts::default());
        assert_eq!(sym.nsuper(), 1);
        assert_eq!(sym.sn_width(0), 5);
        assert_eq!(sym.factor_nnz(), 15);
    }

    #[test]
    fn factor_flops_counts_dense_case() {
        // Dense n=4: flops = sum_{k=0..3} (4-k)^2 = 16+9+4+1 = 30.
        let mut coo = parfact_sparse::coo::CooMatrix::new(4, 4);
        for i in 0..4 {
            for j in 0..=i {
                coo.push(i, j, if i == j { 8.0 } else { 1.0 });
            }
        }
        let (sym, _) = analyze(&coo.to_csc(), &AmalgOpts::default());
        assert_eq!(sym.factor_flops(), 30.0);
    }

    #[test]
    fn supernode_partition_covers_columns() {
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let (sym, _) = analyze(&a, &AmalgOpts::default());
        assert_eq!(*sym.sn_ptr.first().unwrap(), 0);
        assert_eq!(*sym.sn_ptr.last().unwrap(), 64);
        assert!(sym.sn_ptr.windows(2).all(|w| w[0] < w[1]));
        for s in 0..sym.nsuper() {
            for c in sym.sn_cols(s) {
                assert_eq!(sym.sn_of[c], s);
            }
        }
    }

    #[test]
    fn structure_containment_invariant() {
        // Below-pivot rows of a supernode must be contained in the parent's
        // columns ∪ below rows — the invariant extend-add relies on.
        let a = gen::laplace3d(5, 5, 5, gen::Stencil3d::SevenPoint);
        let (sym, _) = analyze(&a, &AmalgOpts::default());
        for s in 0..sym.nsuper() {
            let p = sym.tree.parent[s];
            if p == NONE {
                assert!(sym.sn_rows[s].is_empty());
                continue;
            }
            for &r in &sym.sn_rows[s] {
                let in_cols = sym.sn_cols(p).contains(&r);
                let in_rows = sym.sn_rows[p].binary_search(&r).is_ok();
                assert!(
                    in_cols || in_rows,
                    "row {r} of supernode {s} not covered by parent {p}"
                );
            }
        }
    }

    #[test]
    fn analyze_with_is_bitwise_identical_across_thread_counts() {
        for a in [
            gen::laplace2d(11, 10, gen::Stencil2d::NinePoint),
            gen::laplace3d(5, 4, 5, gen::Stencil3d::SevenPoint),
            gen::random_spd(100, 4, 17),
        ] {
            let (seq, ap_seq) = analyze(&a, &AmalgOpts::default());
            for threads in [2, 4, 8] {
                let (par, ap_par) =
                    analyze_with(&a, &AmalgOpts::default(), threads, &Collector::disabled());
                assert_eq!(par.post, seq.post, "threads {threads}");
                assert_eq!(par.parent, seq.parent, "threads {threads}");
                assert_eq!(par.colcount, seq.colcount, "threads {threads}");
                assert_eq!(par.sn_ptr, seq.sn_ptr, "threads {threads}");
                assert_eq!(par.sn_of, seq.sn_of, "threads {threads}");
                assert_eq!(par.sn_rows, seq.sn_rows, "threads {threads}");
                assert_eq!(par.tree.parent, seq.tree.parent, "threads {threads}");
                assert_eq!(ap_par.nnz(), ap_seq.nnz(), "threads {threads}");
            }
        }
    }

    #[test]
    fn amalgamation_reduces_supernode_count() {
        let a = gen::laplace2d(16, 16, gen::Stencil2d::FivePoint);
        let strict = analyze(
            &a,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        )
        .0;
        let relaxed = analyze(
            &a,
            &AmalgOpts {
                min_width: 8,
                relax_frac: 0.2,
            },
        )
        .0;
        assert!(relaxed.nsuper() <= strict.nsuper());
        // Padding can only add nonzeros.
        assert!(relaxed.factor_nnz() >= strict.factor_nnz());
    }
}
