//! Supernode detection and relaxed amalgamation.
//!
//! A *fundamental supernode* is a maximal run of consecutive columns with
//! identical below-diagonal structure forming a chain in the elimination
//! tree — the unit of dense-kernel work. *Relaxed amalgamation* then merges
//! small supernodes into their parents, trading a bounded number of
//! explicitly-stored zeros for larger fronts (better BLAS-3 shape and fewer
//! assembly steps), exactly the trade production multifrontal codes make.

use crate::{AmalgOpts, NONE};

/// Partition the (postordered) columns into fundamental supernodes.
///
/// Columns `j-1` and `j` share a supernode iff `parent[j-1] == j`,
/// `colcount[j-1] == colcount[j] + 1`, and `j-1` is the only child of `j`.
/// Returns the partition as a pointer array: supernode `s` spans columns
/// `ptr[s]..ptr[s+1]`.
pub fn fundamental_supernodes(parent: &[usize], colcount: &[usize]) -> Vec<usize> {
    let n = parent.len();
    assert_eq!(colcount.len(), n);
    let mut nchild = vec![0usize; n];
    for j in 0..n {
        if parent[j] != NONE {
            nchild[parent[j]] += 1;
        }
    }
    let mut ptr = vec![0usize];
    for j in 1..n {
        let fused = parent[j - 1] == j && colcount[j - 1] == colcount[j] + 1 && nchild[j] == 1;
        if !fused {
            ptr.push(j);
        }
    }
    if n > 0 {
        ptr.push(n);
    }
    ptr
}

/// Trapezoid size of a supernode: dense lower triangle of the pivot block
/// plus the rectangular below-pivot panel.
fn trapezoid(width: usize, below: usize) -> usize {
    width * (width + 1) / 2 + width * below
}

/// Relaxed amalgamation over a fundamental partition.
///
/// Scans supernodes in column order, greedily merging a supernode into its
/// column-adjacent supernodal parent while the merged size stays within a
/// padding budget **relative to the accumulated strict (fundamental)
/// size** — `25%` for merges involving a supernode at most
/// `opts.min_width` wide, `opts.relax_frac` otherwise. The merge is only
/// legal when the child's first below-pivot row (its elimination-tree
/// parent) lands inside the candidate's columns; that guarantees the
/// merged supernode's below-pivot rows are exactly the parent's, so no
/// structure recomputation is needed here.
pub fn amalgamate(
    fund_ptr: &[usize],
    parent: &[usize],
    colcount: &[usize],
    opts: &AmalgOpts,
) -> Vec<usize> {
    let nsuper = fund_ptr.len().saturating_sub(1);
    // (start_col, end_col, below_rows, strict_nnz) per finalized-so-far
    // block, where strict_nnz is the summed trapezoid size of the
    // *fundamental* supernodes inside — padding is always budgeted against
    // it, never against the (inflatable) merged size. Budgeting against the
    // merged size is a trap: on band matrices it lets width-1 chains merge
    // without bound, quadratically inflating one front until memory dies.
    let mut blocks: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(nsuper);
    for s in 0..nsuper {
        let (f, e) = (fund_ptr[s], fund_ptr[s + 1]);
        let w0 = e - f;
        let r0 = colcount[f] - w0;
        let mut cur = (f, e, r0, trapezoid(w0, r0));
        while let Some(&(pf, pe, _pr, ps)) = blocks.last() {
            let (cf, ce, cr, cs) = cur;
            // `prev` (pf..pe) is the candidate child, `cur` its parent.
            if pe != cf {
                break;
            }
            let link = parent[pe - 1];
            if link == NONE || link >= ce {
                break; // child's parent column is beyond this supernode
            }
            let (wp, wc) = (pe - pf, ce - cf);
            let strict = ps + cs;
            let merged = trapezoid(wp + wc, cr);
            let tiny = wp <= opts.min_width || wc <= opts.min_width;
            let budget = if tiny {
                // Tiny supernodes merge eagerly, but still capped: at most
                // 25% padding over the strict size (plus a small absolute
                // slack so degenerate 1-2 column cases can fuse).
                strict + strict / 4 + 64
            } else {
                strict + (opts.relax_frac * strict as f64) as usize
            };
            if merged > budget {
                break;
            }
            blocks.pop();
            cur = (pf, ce, cr, strict);
        }
        blocks.push(cur);
    }
    let mut ptr = Vec::with_capacity(blocks.len() + 1);
    ptr.push(0);
    for &(_, e, _, _) in &blocks {
        ptr.push(e);
    }
    ptr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fundamental_on_path() {
        // Tridiagonal path: interior columns have different structures
        // (colcount[j-1] = 2 != colcount[j] + 1 = 3), but the final pair
        // (2, 3) fuses: colcount[2] = 2 == colcount[3] + 1.
        let parent = vec![1, 2, 3, NONE];
        let colcount = vec![2, 2, 2, 1];
        let ptr = fundamental_supernodes(&parent, &colcount);
        assert_eq!(ptr, vec![0, 1, 2, 4]);
    }

    #[test]
    fn fundamental_on_dense() {
        // Dense 4x4: parent path, colcounts 4,3,2,1 — all fuse.
        let parent = vec![1, 2, 3, NONE];
        let colcount = vec![4, 3, 2, 1];
        let ptr = fundamental_supernodes(&parent, &colcount);
        assert_eq!(ptr, vec![0, 4]);
    }

    #[test]
    fn fundamental_blocks_at_multi_child_nodes() {
        // Node 2 has two children (0, 1): even with matching counts, column
        // 2 starts a new supernode.
        let parent = vec![2, 2, 3, NONE];
        let colcount = vec![3, 3, 2, 1];
        let ptr = fundamental_supernodes(&parent, &colcount);
        assert_eq!(ptr, vec![0, 1, 2, 4]);
    }

    #[test]
    fn amalgamate_merges_singleton_chain() {
        // Tridiagonal: four singleton supernodes in a chain. With a generous
        // min_width everything merges into one (padding is moderate).
        let parent = vec![1, 2, 3, NONE];
        let colcount = vec![2, 2, 2, 1];
        let fund = fundamental_supernodes(&parent, &colcount);
        let ptr = amalgamate(
            &fund,
            &parent,
            &colcount,
            &AmalgOpts {
                min_width: 8,
                relax_frac: 0.0,
            },
        );
        assert_eq!(*ptr.last().unwrap(), 4);
        assert!(ptr.len() - 1 < 4, "some merging must happen, got {ptr:?}");
    }

    #[test]
    fn amalgamate_zero_relax_keeps_exact_supernodes_with_minwidth_zero() {
        let parent = vec![1, 2, 3, NONE];
        let colcount = vec![2, 2, 2, 1];
        let fund = fundamental_supernodes(&parent, &colcount);
        let ptr = amalgamate(
            &fund,
            &parent,
            &colcount,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        // Tridiagonal merge of two singletons: old = 2+2, merged = 3+1*1=4?
        // trapezoid(1,1)+trapezoid(1,1) = 2+2 = 4; merged trapezoid(2,1) = 5.
        // extra = 1 > 0 -> no merge with relax 0 and min_width 0.
        assert_eq!(ptr, fund);
    }

    #[test]
    fn amalgamate_respects_tree_links() {
        // Two disjoint chains: {0} -> {1}, {2} -> {3}, where supernode of 1
        // is NOT adjacent-parent of 2 (parent[1] = NONE breaks the link).
        let parent = vec![1, NONE, 3, NONE];
        let colcount = vec![2, 1, 2, 1];
        let fund = fundamental_supernodes(&parent, &colcount);
        let ptr = amalgamate(
            &fund,
            &parent,
            &colcount,
            &AmalgOpts {
                min_width: 8,
                relax_frac: 1.0,
            },
        );
        // Columns 1 and 2 must stay in different supernodes.
        assert!(ptr.contains(&2), "partition {ptr:?} must split at column 2");
    }

    #[test]
    fn trapezoid_formula() {
        assert_eq!(trapezoid(3, 0), 6);
        assert_eq!(trapezoid(2, 5), 13);
        assert_eq!(trapezoid(1, 1), 2);
    }
}
