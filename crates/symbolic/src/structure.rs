//! Per-supernode row structure of the factor.
//!
//! For each supernode `s` with columns `c0..c1`, the below-pivot rows are
//!
//! ```text
//! rows(s) = ( ⋃_{c in c0..c1} pattern(A[:, c]) ∪ ⋃_{child t} rows(t) ) \ {0..c1}
//! ```
//!
//! computed in one bottom-up pass (children precede parents because the
//! partition is over a postordered matrix). This is the structure the
//! numeric phase allocates fronts from, and its sizes drive the flop and
//! memory predictions used by proportional mapping.

use crate::NONE;
use parfact_sparse::csc::CscMatrix;

/// Compute the below-pivot row structure of every supernode (sorted,
/// global row indices).
pub fn supernode_rows(a: &CscMatrix, sn_ptr: &[usize], sn_of: &[usize]) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let nsuper = sn_ptr.len() - 1;
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nsuper];
    // children[t] accumulated lazily: we only need each child's rows when
    // its parent is processed, and children always precede parents.
    let mut mark = vec![NONE; n];
    for s in 0..nsuper {
        let (c0, c1) = (sn_ptr[s], sn_ptr[s + 1]);
        let mut out: Vec<usize> = Vec::new();
        // Own matrix columns.
        for c in c0..c1 {
            let (rws, _) = a.col(c);
            for &r in rws {
                if r >= c1 && mark[r] != s {
                    mark[r] = s;
                    out.push(r);
                }
            }
        }
        rows[s] = out;
    }
    // Merge children rows bottom-up. Because supernodes are postordered, a
    // single ascending sweep suffices: by the time s is visited, every child
    // has already pushed its rows into s, so s can be finalized and its own
    // rows pushed to its parent.
    let mut mark2 = vec![NONE; n];
    for s in 0..nsuper {
        // Finalize: sort own set (may contain child rows merged earlier).
        rows[s].sort_unstable();
        rows[s].dedup();
        if rows[s].is_empty() {
            continue;
        }
        let parent = sn_of[rows[s][0]];
        debug_assert!(parent > s, "postorder violated: parent {parent} <= {s}");
        let pend = sn_ptr[parent + 1];
        // Mark what the parent already has to avoid quadratic duplication.
        for &r in &rows[parent] {
            mark2[r] = s * nsuper + parent; // unique stamp per (s, parent) merge
        }
        let stamp = s * nsuper + parent;
        let mut extra: Vec<usize> = Vec::new();
        for k in 0..rows[s].len() {
            let r = rows[s][k];
            if r >= pend && mark2[r] != stamp {
                mark2[r] = stamp;
                extra.push(r);
            }
        }
        rows[parent].extend_from_slice(&extra);
    }
    // The sweep already sorted each supernode when it was visited; the rows
    // merged *into* a parent after its own visit would be unsorted — but
    // parents are always visited after all their children, so every merge
    // happens before the parent's own finalize step. Assert in debug builds.
    debug_assert!(rows.iter().all(|r| r.windows(2).all(|w| w[0] < w[1])));
    rows
}

/// Factor statistics derived from a supernode partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStats {
    /// Nonzeros of `L` (diagonal included, amalgamation padding included).
    pub nnz: usize,
    /// Factorization flops (multiply-adds counted once each).
    pub flops: f64,
    /// Largest frontal-matrix order.
    pub max_front: usize,
    /// Total frontal-matrix workspace if fronts were all live at once.
    pub total_front_elems: usize,
}

/// Compute [`FactorStats`] for a partition.
pub fn factor_stats(sn_ptr: &[usize], sn_rows: &[Vec<usize>]) -> FactorStats {
    let nsuper = sn_ptr.len() - 1;
    let mut nnz = 0usize;
    let mut flops = 0.0f64;
    let mut max_front = 0usize;
    let mut total = 0usize;
    for s in 0..nsuper {
        let w = sn_ptr[s + 1] - sn_ptr[s];
        let r = sn_rows[s].len();
        nnz += w * (w + 1) / 2 + w * r;
        for k in 0..w {
            let len = (w - k) + r;
            flops += (len * len) as f64;
        }
        let f = w + r;
        max_front = max_front.max(f);
        total += f * f;
    }
    FactorStats {
        nnz,
        flops,
        max_front,
        total_front_elems: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder, relabel};
    use crate::{colcount, supernode, AmalgOpts};
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    fn full_pipeline(a: &CscMatrix) -> (Vec<usize>, Vec<usize>, Vec<Vec<usize>>, CscMatrix) {
        let parent0 = etree(a);
        let post = Perm::from_vec(postorder(&parent0));
        let ap = post.apply_sym_lower(a);
        let parent = relabel(&parent0, &post);
        let cc = colcount::col_counts(&ap, &parent);
        let fund = supernode::fundamental_supernodes(&parent, &cc);
        let ptr = supernode::amalgamate(
            &fund,
            &parent,
            &cc,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        let mut sn_of = vec![0usize; ap.ncols()];
        for s in 0..ptr.len() - 1 {
            for c in ptr[s]..ptr[s + 1] {
                sn_of[c] = s;
            }
        }
        let rows = supernode_rows(&ap, &ptr, &sn_of);
        (ptr, sn_of, rows, ap)
    }

    /// Reference: structure of L column-by-column via the etree reach.
    fn naive_l_pattern(ap: &CscMatrix, parent: &[usize]) -> Vec<Vec<usize>> {
        let n = ap.ncols();
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        let at = ap.to_csr();
        let mut mark = vec![usize::MAX; n];
        for i in 0..n {
            mark[i] = i;
            let (cs, _) = at.row(i);
            for &j in cs {
                if j >= i {
                    continue;
                }
                let mut x = j;
                while mark[x] != i {
                    mark[x] = i;
                    cols[x].push(i);
                    x = parent[x];
                }
            }
        }
        for c in cols.iter_mut() {
            c.sort_unstable();
        }
        cols
    }

    #[test]
    fn supernode_rows_match_naive_l_pattern_strict() {
        // With strict supernodes (no amalgamation padding across distinct
        // structures), the first column of each supernode has exactly the
        // supernode's rows beyond the pivot block.
        for a in [
            gen::laplace2d(6, 6, gen::Stencil2d::FivePoint),
            gen::random_spd(40, 3, 11),
            gen::laplace3d(3, 3, 4, gen::Stencil3d::SevenPoint),
        ] {
            let (ptr, _sn_of, rows, ap) = full_pipeline(&a);
            let parent0 = etree(&ap);
            let lpat = naive_l_pattern(&ap, &parent0);
            for s in 0..ptr.len() - 1 {
                let (c0, c1) = (ptr[s], ptr[s + 1]);
                let expect: Vec<usize> = lpat[c0].iter().copied().filter(|&r| r >= c1).collect();
                assert_eq!(rows[s], expect, "supernode {s} cols {c0}..{c1}");
            }
        }
    }

    #[test]
    fn factor_stats_consistency() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let (ptr, _, rows, _) = full_pipeline(&a);
        let st = factor_stats(&ptr, &rows);
        assert!(st.nnz >= a.nnz());
        assert!(st.flops > 0.0);
        assert!(st.max_front >= 1);
        assert!(st.total_front_elems >= st.max_front * st.max_front);
    }

    #[test]
    fn roots_have_no_rows() {
        let a = gen::laplace2d(8, 5, gen::Stencil2d::FivePoint);
        let (ptr, _, rows, _) = full_pipeline(&a);
        // The last supernode is a root of the assembly tree: nothing below.
        assert!(rows[ptr.len() - 2].is_empty());
    }
}
