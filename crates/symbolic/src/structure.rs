//! Per-supernode row structure of the factor.
//!
//! For each supernode `s` with columns `c0..c1`, the below-pivot rows are
//!
//! ```text
//! rows(s) = ( ⋃_{c in c0..c1} pattern(A[:, c]) ∪ ⋃_{child t} rows(t) ) \ {0..c1}
//! ```
//!
//! computed in one bottom-up pass (children precede parents because the
//! partition is over a postordered matrix). This is the structure the
//! numeric phase allocates fronts from, and its sizes drive the flop and
//! memory predictions used by proportional mapping.

use crate::NONE;
use parfact_sparse::csc::CscMatrix;
use parfact_trace::{Collector, Phase};

/// Compute the below-pivot row structure of every supernode (sorted,
/// global row indices).
pub fn supernode_rows(a: &CscMatrix, sn_ptr: &[usize], sn_of: &[usize]) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let nsuper = sn_ptr.len() - 1;
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nsuper];
    // children[t] accumulated lazily: we only need each child's rows when
    // its parent is processed, and children always precede parents.
    let mut mark = vec![NONE; n];
    for s in 0..nsuper {
        let (c0, c1) = (sn_ptr[s], sn_ptr[s + 1]);
        let mut out: Vec<usize> = Vec::new();
        // Own matrix columns.
        for c in c0..c1 {
            let (rws, _) = a.col(c);
            for &r in rws {
                if r >= c1 && mark[r] != s {
                    mark[r] = s;
                    out.push(r);
                }
            }
        }
        rows[s] = out;
    }
    // Merge children rows bottom-up. Because supernodes are postordered, a
    // single ascending sweep suffices: by the time s is visited, every child
    // has already pushed its rows into s, so s can be finalized and its own
    // rows pushed to its parent.
    let mut mark2 = vec![NONE; n];
    for s in 0..nsuper {
        // Finalize: sort own set (may contain child rows merged earlier).
        rows[s].sort_unstable();
        rows[s].dedup();
        if rows[s].is_empty() {
            continue;
        }
        let parent = sn_of[rows[s][0]];
        debug_assert!(parent > s, "postorder violated: parent {parent} <= {s}");
        let pend = sn_ptr[parent + 1];
        // Mark what the parent already has to avoid quadratic duplication.
        for &r in &rows[parent] {
            mark2[r] = s * nsuper + parent; // unique stamp per (s, parent) merge
        }
        let stamp = s * nsuper + parent;
        let mut extra: Vec<usize> = Vec::new();
        for k in 0..rows[s].len() {
            let r = rows[s][k];
            if r >= pend && mark2[r] != stamp {
                mark2[r] = stamp;
                extra.push(r);
            }
        }
        rows[parent].extend_from_slice(&extra);
    }
    // The sweep already sorted each supernode when it was visited; the rows
    // merged *into* a parent after its own visit would be unsorted — but
    // parents are always visited after all their children, so every merge
    // happens before the parent's own finalize step. Assert in debug builds.
    debug_assert!(rows.iter().all(|r| r.windows(2).all(|w| w[0] < w[1])));
    rows
}

/// Granularity of the parallel decomposition over the supernode tree.
/// Tree-shape-derived only — never thread-count-dependent — so the group
/// list is identical across runs and thread counts.
fn group_cap(nsuper: usize) -> usize {
    8.max(nsuper / 32)
}

/// [`supernode_rows`] on `threads` workers, **bitwise identical** output.
///
/// The supernode tree is postordered (it partitions a postordered matrix
/// into contiguous column blocks), so every subtree is a contiguous range
/// of supernode indices. Maximal subtrees below a size cap become
/// independent tasks: within a subtree the merge sweep is self-contained
/// because a child's merge target is its tree parent, which lives in the
/// same subtree for every node except the subtree root. Root contributions
/// cross the boundary upward only — they are deferred and appended before
/// the sequential sweep over the remaining "top" supernodes (the top set is
/// closed under parents, so every deferred target is swept there).
///
/// Determinism: each supernode's final row list is `sort+dedup` of a set
/// union, and unions commute — any execution order yields the same sorted
/// `Vec` per supernode.
///
/// `parent` is the (postordered) elimination tree; within an amalgamated
/// supernode the etree is a chain, so the supernode holding the etree
/// parent of a supernode's last column is its assembly parent.
pub fn supernode_rows_par(
    a: &CscMatrix,
    sn_ptr: &[usize],
    sn_of: &[usize],
    parent: &[usize],
    threads: usize,
    tr: &Collector,
) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let nsuper = sn_ptr.len() - 1;
    if nsuper == 0 {
        return Vec::new();
    }
    let mut rec0 = tr.local(0);
    let t = rec0.start();
    let mut sn_parent = vec![NONE; nsuper];
    for s in 0..nsuper {
        let last = sn_ptr[s + 1] - 1;
        if parent[last] != NONE {
            sn_parent[s] = sn_of[parent[last]];
            debug_assert!(sn_parent[s] > s);
        }
    }
    // Subtree sizes in one ascending sweep (children precede parents).
    let mut size = vec![1usize; nsuper];
    for s in 0..nsuper {
        if sn_parent[s] != NONE {
            size[sn_parent[s]] += size[s];
        }
    }
    let cap = group_cap(nsuper);
    let mut groups: Vec<(usize, usize)> = Vec::new(); // inclusive [lo, root]
    let mut is_top = vec![true; nsuper];
    for r in 0..nsuper {
        if size[r] <= cap && (sn_parent[r] == NONE || size[sn_parent[r]] > cap) {
            let lo = r + 1 - size[r];
            for s in lo..=r {
                is_top[s] = false;
            }
            groups.push((lo, r));
        }
    }
    rec0.stop(t, Phase::Structure, None);

    let (sn_parent, is_top) = (&sn_parent, &is_top);
    // One group: scatter + merge exactly as the sequential sweep does,
    // except contributions to the (top) parent of the group root are
    // returned for later. `mark`/`mark2` are caller-provided scratch reused
    // across a worker's groups; stamps are globally unique so no clearing.
    type GroupOut = (Vec<Vec<usize>>, Vec<(usize, Vec<usize>)>);
    let run_group = |lo: usize, r: usize, mark: &mut [usize], mark2: &mut [usize]| -> GroupOut {
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); r + 1 - lo];
        for s in lo..=r {
            let (c0, c1) = (sn_ptr[s], sn_ptr[s + 1]);
            let out = &mut rows[s - lo];
            for c in c0..c1 {
                let (rws, _) = a.col(c);
                for &rr in rws {
                    if rr >= c1 && mark[rr] != s {
                        mark[rr] = s;
                        out.push(rr);
                    }
                }
            }
        }
        let mut deferred: Vec<(usize, Vec<usize>)> = Vec::new();
        for s in lo..=r {
            rows[s - lo].sort_unstable();
            rows[s - lo].dedup();
            if rows[s - lo].is_empty() {
                continue;
            }
            let target = sn_of[rows[s - lo][0]];
            debug_assert_eq!(target, sn_parent[s]);
            let pend = sn_ptr[target + 1];
            if target <= r {
                let stamp = s * nsuper + target;
                for &rr in &rows[target - lo] {
                    mark2[rr] = stamp;
                }
                let mut extra: Vec<usize> = Vec::new();
                for k in 0..rows[s - lo].len() {
                    let rr = rows[s - lo][k];
                    if rr >= pend && mark2[rr] != stamp {
                        mark2[rr] = stamp;
                        extra.push(rr);
                    }
                }
                rows[target - lo].extend_from_slice(&extra);
            } else {
                debug_assert!(is_top[target]);
                let extra: Vec<usize> = rows[s - lo]
                    .iter()
                    .copied()
                    .filter(|&rr| rr >= pend)
                    .collect();
                if !extra.is_empty() {
                    deferred.push((target, extra));
                }
            }
        }
        (rows, deferred)
    };

    type TaskOut = (usize, Vec<Vec<usize>>, Vec<(usize, Vec<usize>)>);
    let mut results: Vec<TaskOut> = Vec::with_capacity(groups.len());
    if threads <= 1 {
        let mut mark = vec![NONE; n];
        let mut mark2 = vec![NONE; n];
        for (idx, &(lo, r)) in groups.iter().enumerate() {
            let mut rec = tr.local(0);
            let t = rec.start();
            let (grows, defs) = run_group(lo, r, &mut mark, &mut mark2);
            rec.stop(t, Phase::Structure, Some(idx));
            results.push((lo, grows, defs));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out: std::sync::Mutex<Vec<TaskOut>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..threads {
                let (next, out, groups, run_group) = (&next, &out, &groups, &run_group);
                scope.spawn(move || {
                    let mut rec = tr.local(w);
                    let mut mark = vec![NONE; n];
                    let mut mark2 = vec![NONE; n];
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(lo, r)) = groups.get(idx) else {
                            break;
                        };
                        let t = rec.start();
                        let (grows, defs) = run_group(lo, r, &mut mark, &mut mark2);
                        rec.stop(t, Phase::Structure, Some(idx));
                        mine.push((lo, grows, defs));
                    }
                    out.lock().unwrap().append(&mut mine);
                });
            }
        });
        results = out.into_inner().unwrap();
    }

    let t = rec0.start();
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nsuper];
    for (lo, grows, defs) in results {
        for (k, v) in grows.into_iter().enumerate() {
            rows[lo + k] = v;
        }
        // Deferred cross-group contributions land before the top sweep
        // finalizes their targets, so dedup happens there.
        for (target, extra) in defs {
            rows[target].extend_from_slice(&extra);
        }
    }
    // Sequential sweep over the top supernodes, same shape as
    // `supernode_rows` restricted to the top set.
    let mut mark = vec![NONE; n];
    for s in 0..nsuper {
        if !is_top[s] {
            continue;
        }
        let (c0, c1) = (sn_ptr[s], sn_ptr[s + 1]);
        for c in c0..c1 {
            let (rws, _) = a.col(c);
            for &rr in rws {
                if rr >= c1 && mark[rr] != s {
                    mark[rr] = s;
                    rows[s].push(rr);
                }
            }
        }
    }
    let mut mark2 = vec![NONE; n];
    for s in 0..nsuper {
        if !is_top[s] {
            continue;
        }
        rows[s].sort_unstable();
        rows[s].dedup();
        if rows[s].is_empty() {
            continue;
        }
        let target = sn_of[rows[s][0]];
        debug_assert_eq!(target, sn_parent[s]);
        let pend = sn_ptr[target + 1];
        let stamp = s * nsuper + target;
        for &rr in &rows[target] {
            mark2[rr] = stamp;
        }
        let mut extra: Vec<usize> = Vec::new();
        for k in 0..rows[s].len() {
            let rr = rows[s][k];
            if rr >= pend && mark2[rr] != stamp {
                mark2[rr] = stamp;
                extra.push(rr);
            }
        }
        rows[target].extend_from_slice(&extra);
    }
    rec0.stop(t, Phase::Structure, None);
    debug_assert!(rows.iter().all(|r| r.windows(2).all(|w| w[0] < w[1])));
    rows
}

/// Factor statistics derived from a supernode partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStats {
    /// Nonzeros of `L` (diagonal included, amalgamation padding included).
    pub nnz: usize,
    /// Factorization flops (multiply-adds counted once each).
    pub flops: f64,
    /// Largest frontal-matrix order.
    pub max_front: usize,
    /// Total frontal-matrix workspace if fronts were all live at once.
    pub total_front_elems: usize,
}

/// Compute [`FactorStats`] for a partition.
pub fn factor_stats(sn_ptr: &[usize], sn_rows: &[Vec<usize>]) -> FactorStats {
    let nsuper = sn_ptr.len() - 1;
    let mut nnz = 0usize;
    let mut flops = 0.0f64;
    let mut max_front = 0usize;
    let mut total = 0usize;
    for s in 0..nsuper {
        let w = sn_ptr[s + 1] - sn_ptr[s];
        let r = sn_rows[s].len();
        nnz += w * (w + 1) / 2 + w * r;
        for k in 0..w {
            let len = (w - k) + r;
            flops += (len * len) as f64;
        }
        let f = w + r;
        max_front = max_front.max(f);
        total += f * f;
    }
    FactorStats {
        nnz,
        flops,
        max_front,
        total_front_elems: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder, relabel};
    use crate::{colcount, supernode, AmalgOpts};
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    fn full_pipeline(a: &CscMatrix) -> (Vec<usize>, Vec<usize>, Vec<Vec<usize>>, CscMatrix) {
        let parent0 = etree(a);
        let post = Perm::from_vec(postorder(&parent0));
        let ap = post.apply_sym_lower(a);
        let parent = relabel(&parent0, &post);
        let cc = colcount::col_counts(&ap, &parent);
        let fund = supernode::fundamental_supernodes(&parent, &cc);
        let ptr = supernode::amalgamate(
            &fund,
            &parent,
            &cc,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        let mut sn_of = vec![0usize; ap.ncols()];
        for s in 0..ptr.len() - 1 {
            for c in ptr[s]..ptr[s + 1] {
                sn_of[c] = s;
            }
        }
        let rows = supernode_rows(&ap, &ptr, &sn_of);
        (ptr, sn_of, rows, ap)
    }

    /// Reference: structure of L column-by-column via the etree reach.
    fn naive_l_pattern(ap: &CscMatrix, parent: &[usize]) -> Vec<Vec<usize>> {
        let n = ap.ncols();
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        let at = ap.to_csr();
        let mut mark = vec![usize::MAX; n];
        for i in 0..n {
            mark[i] = i;
            let (cs, _) = at.row(i);
            for &j in cs {
                if j >= i {
                    continue;
                }
                let mut x = j;
                while mark[x] != i {
                    mark[x] = i;
                    cols[x].push(i);
                    x = parent[x];
                }
            }
        }
        for c in cols.iter_mut() {
            c.sort_unstable();
        }
        cols
    }

    #[test]
    fn supernode_rows_match_naive_l_pattern_strict() {
        // With strict supernodes (no amalgamation padding across distinct
        // structures), the first column of each supernode has exactly the
        // supernode's rows beyond the pivot block.
        for a in [
            gen::laplace2d(6, 6, gen::Stencil2d::FivePoint),
            gen::random_spd(40, 3, 11),
            gen::laplace3d(3, 3, 4, gen::Stencil3d::SevenPoint),
        ] {
            let (ptr, _sn_of, rows, ap) = full_pipeline(&a);
            let parent0 = etree(&ap);
            let lpat = naive_l_pattern(&ap, &parent0);
            for s in 0..ptr.len() - 1 {
                let (c0, c1) = (ptr[s], ptr[s + 1]);
                let expect: Vec<usize> = lpat[c0].iter().copied().filter(|&r| r >= c1).collect();
                assert_eq!(rows[s], expect, "supernode {s} cols {c0}..{c1}");
            }
        }
    }

    #[test]
    fn factor_stats_consistency() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let (ptr, _, rows, _) = full_pipeline(&a);
        let st = factor_stats(&ptr, &rows);
        assert!(st.nnz >= a.nnz());
        assert!(st.flops > 0.0);
        assert!(st.max_front >= 1);
        assert!(st.total_front_elems >= st.max_front * st.max_front);
    }

    #[test]
    fn parallel_rows_bitwise_match_sequential() {
        for a in [
            gen::laplace2d(12, 9, gen::Stencil2d::FivePoint),
            gen::laplace3d(4, 5, 4, gen::Stencil3d::SevenPoint),
            gen::random_spd(130, 4, 3),
            gen::tridiagonal(40),
        ] {
            let parent0 = etree(&a);
            let post = Perm::from_vec(postorder(&parent0));
            let ap = post.apply_sym_lower(&a);
            let parent = relabel(&parent0, &post);
            let cc = colcount::col_counts(&ap, &parent);
            let fund = supernode::fundamental_supernodes(&parent, &cc);
            let ptr = supernode::amalgamate(
                &fund,
                &parent,
                &cc,
                &AmalgOpts {
                    min_width: 4,
                    relax_frac: 0.2,
                },
            );
            let mut sn_of = vec![0usize; ap.ncols()];
            for s in 0..ptr.len() - 1 {
                for c in ptr[s]..ptr[s + 1] {
                    sn_of[c] = s;
                }
            }
            let seq = supernode_rows(&ap, &ptr, &sn_of);
            for threads in [1, 2, 4, 8] {
                let par = supernode_rows_par(
                    &ap,
                    &ptr,
                    &sn_of,
                    &parent,
                    threads,
                    &parfact_trace::Collector::disabled(),
                );
                assert_eq!(par, seq, "threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_rows_record_structure_spans() {
        let a = gen::laplace2d(14, 14, gen::Stencil2d::FivePoint);
        let (ptr, sn_of, seq, ap) = full_pipeline(&a);
        let parent0 = etree(&ap);
        let tr = parfact_trace::Collector::new(parfact_trace::TraceLevel::Timeline);
        let par = supernode_rows_par(&ap, &ptr, &sn_of, &parent0, 2, &tr);
        assert_eq!(par, seq);
        assert!(tr.snapshot().structure_s > 0.0);
        let spans = tr.take_spans();
        assert!(spans.iter().all(|s| s.phase == Phase::Structure));
        assert!(spans.iter().any(|s| s.supernode.is_some()));
        assert!(spans.iter().any(|s| s.supernode.is_none()));
    }

    #[test]
    fn roots_have_no_rows() {
        let a = gen::laplace2d(8, 5, gen::Stencil2d::FivePoint);
        let (ptr, _, rows, _) = full_pipeline(&a);
        // The last supernode is a root of the assembly tree: nothing below.
        assert!(rows[ptr.len() - 2].is_empty());
    }
}
