//! `bench_solve` — evidence artifact for the batched-solve PR: measures
//! triangular-solve throughput as a function of the right-hand-side block
//! width, for the sequential and SMP solve engines, and records the
//! headline comparison — one blocked solve with nrhs = 32 against 32
//! back-to-back single-RHS solves — in `BENCH_pr6.json`.
//!
//! ```text
//! bench_solve [out.json]       (default output: BENCH_pr6.json)
//! ```
//!
//! Set `BENCH_QUICK=1` for a fast smoke run (small grid, short timing
//! floor) — used by CI to keep the binary working, not to produce the
//! artifact.

use parfact_core::solver::{FactorOpts, RhsBlock, SolveEngine, SolveOpts, SparseCholesky};
use parfact_sparse::gen;
use parfact_trace::json::Json;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Best-of-N wall time of `f`, in seconds: keeps iterating until the total
/// measured time passes a floor so short solves get enough samples.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let floor = if quick() { 0.05 } else { 0.5 };
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut iters = 0u32;
    while total < floor || iters < 3 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        iters += 1;
        if iters >= 10_000 {
            break;
        }
    }
    best
}

fn det_rng(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 2000) as f64 / 1000.0 - 1.0
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr6.json".to_string());

    // The artifact problem is the lap3d-32 suite matrix; quick mode shrinks
    // the grid so CI exercises the same code path in seconds.
    let (name, a) = if quick() {
        (
            "lap3d-10",
            gen::laplace3d(10, 10, 10, gen::Stencil3d::SevenPoint),
        )
    } else {
        (
            "lap3d-32",
            gen::laplace3d(32, 32, 32, gen::Stencil3d::SevenPoint),
        )
    };
    let n = a.nrows();
    println!("bench_solve: {name}, n = {n}, nnz(lower) = {}", a.nnz());

    let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).expect("SPD");
    // One triangular solve touches every stored entry of L twice (multiply
    // + add), forward and backward: 4 * nnz(L) flops per RHS column.
    let flops_per_rhs = 4.0 * chol.factor_nnz() as f64;
    println!(
        "bench_solve: factored, nnz(L) = {} ({:.3} Mflop per rhs column)",
        chol.factor_nnz(),
        flops_per_rhs / 1e6
    );

    let mut r = det_rng(0x5eed);
    let widths: &[usize] = &[1, 2, 4, 8, 16, 32];
    let max_w = *widths.last().unwrap();
    let b: Vec<f64> = (0..n * max_w).map(|_| r()).collect();

    let engines: &[(&str, SolveEngine)] = &[
        ("seq", SolveEngine::Sequential),
        ("smp4", SolveEngine::Smp { threads: 4 }),
    ];
    let mut sweep = Vec::new();
    for (tag, engine) in engines {
        let opts = SolveOpts::new().engine(*engine);
        for &nrhs in widths {
            let rhs = &b[..n * nrhs];
            let secs = best_secs(|| {
                chol.solve_with(RhsBlock::new(rhs, nrhs), &opts)
                    .expect("dims match");
            });
            let gf = flops_per_rhs * nrhs as f64 / secs / 1e9;
            let rows_per_s = n as f64 * nrhs as f64 / secs;
            println!(
                "  {tag:<5} nrhs={nrhs:<3}  {:8.2} ms   {gf:6.2} GF/s   {:.2e} rows/s",
                secs * 1e3,
                rows_per_s
            );
            sweep.push(obj(vec![
                ("engine", Json::str(tag)),
                ("nrhs", Json::num_usize(nrhs)),
                ("solve_s", Json::num_f64(secs)),
                ("solve_gflops", Json::num_f64(gf)),
                ("rows_per_s", Json::num_f64(rows_per_s)),
            ]));
        }
    }

    // Headline comparison: one blocked sequential solve at nrhs = 32 vs 32
    // back-to-back single-RHS solves of the same columns. Both paths
    // produce bitwise-identical answers, so this isolates the throughput
    // gained by blocking (the gemm updates amortize panel traffic over the
    // RHS block).
    let seq = SolveOpts::new().engine(SolveEngine::Sequential);
    let batched_s = best_secs(|| {
        chol.solve_with(RhsBlock::new(&b, max_w), &seq)
            .expect("dims match");
    });
    let singles_s = best_secs(|| {
        for col in 0..max_w {
            chol.solve_with(RhsBlock::single(&b[col * n..(col + 1) * n]), &seq)
                .expect("dims match");
        }
    });
    let speedup = singles_s / batched_s;
    println!(
        "bench_solve: nrhs={max_w} blocked {:.2} ms vs {max_w} single solves {:.2} ms  ->  {speedup:.2}x",
        batched_s * 1e3,
        singles_s * 1e3
    );
    let headline = obj(vec![
        ("matrix", Json::str(name)),
        ("nrhs", Json::num_usize(max_w)),
        ("batched_s", Json::num_f64(batched_s)),
        ("singles_s", Json::num_f64(singles_s)),
        (
            "batched_rows_per_s",
            Json::num_f64(n as f64 * max_w as f64 / batched_s),
        ),
        (
            "singles_rows_per_s",
            Json::num_f64(n as f64 * max_w as f64 / singles_s),
        ),
        ("speedup", Json::num_f64(speedup)),
    ]);

    let doc = obj(vec![
        ("bench", Json::str("pr6_batched_solve")),
        ("quick", Json::Bool(quick())),
        ("matrix", Json::str(name)),
        ("n", Json::num_usize(n)),
        ("factor_nnz", Json::num_usize(chol.factor_nnz())),
        ("sweep", Json::Arr(sweep)),
        ("batched_vs_singles", headline),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write results");
    println!("bench_solve: results written to {out}");
}
