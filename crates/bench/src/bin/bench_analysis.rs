//! `bench_analysis` — evidence artifact for the parallel-analysis PR:
//! measures the ordering + symbolic pipeline across analysis thread counts,
//! proves the result bitwise identical at every count, and records both the
//! real wall-clock speedup and a *modeled* speedup in `BENCH_pr7.json`.
//!
//! ```text
//! bench_analysis [out.json]    (default output: BENCH_pr7.json)
//! ```
//!
//! The modeled speedup exists because wall-clock scaling is only measurable
//! on a machine that actually has cores. The analysis phase emits one span
//! per parallel task (nested-dissection recursion nodes carry their
//! recursion-tree path as the tag, so the task DAG is reconstructible;
//! column-count and row-structure subtree tasks are independent), so the
//! per-task durations from a single-threaded `Timeline` trace can be
//! list-scheduled onto T virtual workers — the same methodology the
//! distributed engine uses for its simulated makespans. Untagged spans are
//! the pipeline's sequential sections and are charged in full at every T.
//!
//! Set `BENCH_QUICK=1` for a fast smoke run (small grid, short timing
//! floor) — used by CI to keep the binary working, not to produce the
//! artifact.

use parfact_order::Method;
use parfact_sparse::gen;
use parfact_symbolic::{analyze_with, AmalgOpts, Symbolic};
use parfact_trace::json::Json;
use parfact_trace::{Collector, Phase, SpanEvent, TraceLevel};
use std::collections::BTreeMap;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Best-of-N wall time of `f`, in seconds: keeps iterating until the total
/// measured time passes a floor so short runs get enough samples.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let floor = if quick() { 0.05 } else { 0.5 };
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut iters = 0u32;
    while total < floor || iters < 3 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        iters += 1;
        if iters >= 10_000 {
            break;
        }
    }
    best
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The full analysis pipeline: fill ordering, permutation, symbolic.
fn run_analysis(
    a: &parfact_sparse::csc::CscMatrix,
    threads: usize,
    tr: &Collector,
) -> (parfact_sparse::perm::Perm, Symbolic) {
    let fill = parfact_order::order_matrix_with(a, Method::default(), threads, tr);
    let af = fill.apply_sym_lower(a);
    let (sym, _ap) = analyze_with(&af, &AmalgOpts::default(), threads, tr);
    (fill, sym)
}

fn same_symbolic(x: &Symbolic, y: &Symbolic) -> bool {
    x.post == y.post
        && x.parent == y.parent
        && x.colcount == y.colcount
        && x.sn_ptr == y.sn_ptr
        && x.sn_of == y.sn_of
        && x.sn_rows == y.sn_rows
        && x.tree.parent == y.tree.parent
}

/// Greedy list-schedule of the nested-dissection task tree onto `workers`
/// virtual workers. Tasks are recursion-tree nodes keyed by their path tag
/// (root 1, children `2p` / `2p+1`); a node's work may start only after its
/// parent's bisection finished.
fn nd_makespan(tasks: &BTreeMap<usize, f64>, workers: usize) -> f64 {
    let mut free = vec![0.0f64; workers.max(1)];
    // path -> finish time. BTreeMap iteration is path order, which is a
    // topological order of the recursion tree (parent `p` < children `2p`,
    // `2p+1`). Greedy: place each task on the earliest-free worker at its
    // ready time.
    let mut done: BTreeMap<usize, f64> = BTreeMap::new();
    for (&path, &dur) in tasks {
        let ready = if path <= 1 {
            0.0
        } else {
            *done.get(&(path >> 1)).unwrap_or(&0.0)
        };
        let (w, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let start = free[w].max(ready);
        free[w] = start + dur;
        done.insert(path, start + dur);
    }
    free.into_iter().fold(0.0, f64::max)
}

/// Longest-processing-time-first makespan for an independent task set.
fn flat_makespan(durs: &[f64], workers: usize) -> f64 {
    let mut sorted = durs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut free = vec![0.0f64; workers.max(1)];
    for d in sorted {
        let (w, _) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        free[w] += d;
    }
    free.into_iter().fold(0.0, f64::max)
}

/// Modeled analysis time at `workers` threads, from a single-threaded span
/// trace: sequential (untagged) time in full, plus the scheduled makespan
/// of each parallel task family.
fn modeled_total(spans: &[SpanEvent], workers: usize) -> f64 {
    let seq: f64 = spans
        .iter()
        .filter(|s| s.supernode.is_none())
        .map(|s| s.dur_s)
        .sum();
    // ND recursion-tree tasks: every tagged span of the ordering phases,
    // folded per path tag.
    let mut nd: BTreeMap<usize, f64> = BTreeMap::new();
    let mut colcount: Vec<f64> = Vec::new();
    let mut structure: Vec<f64> = Vec::new();
    for s in spans {
        let Some(tag) = s.supernode else { continue };
        match s.phase {
            Phase::Coarsen | Phase::Bisect | Phase::Refine | Phase::Mindeg => {
                *nd.entry(tag).or_insert(0.0) += s.dur_s;
            }
            Phase::Colcount => colcount.push(s.dur_s),
            Phase::Structure => structure.push(s.dur_s),
            _ => {}
        }
    }
    seq + nd_makespan(&nd, workers)
        + flat_makespan(&colcount, workers)
        + flat_makespan(&structure, workers)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());

    // The artifact problem is the lap3d-32 suite matrix; quick mode shrinks
    // the grid so CI exercises the same code path in seconds.
    let (name, a) = if quick() {
        (
            "lap3d-10",
            gen::laplace3d(10, 10, 10, gen::Stencil3d::SevenPoint),
        )
    } else {
        (
            "lap3d-32",
            gen::laplace3d(32, 32, 32, gen::Stencil3d::SevenPoint),
        )
    };
    let n = a.nrows();
    println!("bench_analysis: {name}, n = {n}, nnz(lower) = {}", a.nnz());

    let threads_tested: &[usize] = &[1, 2, 4, 8];

    // Determinism: the parallel analysis must be bitwise identical to the
    // sequential one at every thread count. This is the artifact's proof
    // obligation, not just a smoke check.
    let (perm1, sym1) = run_analysis(&a, 1, &Collector::disabled());
    let mut deterministic = true;
    for &t in &threads_tested[1..] {
        let (p, s) = run_analysis(&a, t, &Collector::disabled());
        let ok = p == perm1 && same_symbolic(&s, &sym1);
        deterministic &= ok;
        println!(
            "  determinism @ {t} threads: {}",
            if ok { "bitwise identical" } else { "MISMATCH" }
        );
    }
    assert!(deterministic, "parallel analysis diverged from sequential");

    // Task durations for the model: one single-threaded timeline trace so
    // per-task costs are uncontended and thread-count independent.
    let tr = Collector::new(TraceLevel::Timeline);
    run_analysis(&a, 1, &tr);
    let spans = tr.take_spans();
    let tagged = spans.iter().filter(|s| s.supernode.is_some()).count();
    println!(
        "bench_analysis: {} spans ({} parallel tasks) from the 1-thread trace",
        spans.len(),
        tagged
    );

    // Wall-clock sweep. On a single-core machine these numbers hover near
    // 1.0x (the work pool adds coordination without adding cores); the
    // modeled column is the scaling claim, the wall column the honesty
    // check that parallelism is not *costing* anything material.
    let wall_1 = best_secs(|| {
        run_analysis(&a, 1, &Collector::disabled());
    });
    let mut rows = Vec::new();
    let modeled_1 = modeled_total(&spans, 1);
    for &t in threads_tested {
        let wall = if t == 1 {
            wall_1
        } else {
            best_secs(|| {
                run_analysis(&a, t, &Collector::disabled());
            })
        };
        let modeled = modeled_total(&spans, t);
        println!(
            "  threads={t}  wall {:8.2} ms ({:4.2}x)   modeled {:8.2} ms ({:4.2}x)",
            wall * 1e3,
            wall_1 / wall,
            modeled * 1e3,
            modeled_1 / modeled
        );
        rows.push(obj(vec![
            ("threads", Json::num_usize(t)),
            ("wall_s", Json::num_f64(wall)),
            ("wall_speedup", Json::num_f64(wall_1 / wall)),
            ("modeled_s", Json::num_f64(modeled)),
            ("modeled_speedup", Json::num_f64(modeled_1 / modeled)),
        ]));
    }

    let modeled_4 = modeled_total(&spans, 4);
    let headline = obj(vec![
        ("matrix", Json::str(name)),
        ("threads", Json::num_usize(4)),
        ("modeled_speedup", Json::num_f64(modeled_1 / modeled_4)),
        ("deterministic", Json::Bool(deterministic)),
    ]);
    println!(
        "bench_analysis: modeled speedup at 4 threads = {:.2}x (deterministic: {deterministic})",
        modeled_1 / modeled_4
    );

    let doc = obj(vec![
        ("bench", Json::str("pr7_parallel_analysis")),
        ("quick", Json::Bool(quick())),
        ("matrix", Json::str(name)),
        ("n", Json::num_usize(n)),
        ("nsuper", Json::num_usize(sym1.nsuper())),
        ("parallel_tasks", Json::num_usize(tagged)),
        ("sweep", Json::Arr(rows)),
        ("headline", headline),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write results");
    println!("bench_analysis: results written to {out}");
}
