//! `bench_pr2` — evidence artifact for the packed-kernel / workspace-arena
//! PR: measures the packed register-blocked dense kernels against the
//! naive baselines they replaced, plus end-to-end factorization on the
//! EXP-R1 suite matrices, and writes the results to `BENCH_pr2.json`.
//!
//! ```text
//! bench_pr2 [out.json]       (default output: BENCH_pr2.json)
//! ```
//!
//! Set `BENCH_QUICK=1` for a fast smoke run (small sizes, one matrix) —
//! used by CI to keep the binary working, not to produce the artifact.

use parfact_bench::{suite, Problem};
use parfact_core::smp::SmpOpts;
use parfact_core::solver::{Engine, FactorOpts, SparseCholesky};
use parfact_dense::{blas, chol, naive, DMat};
use parfact_sparse::gen;
use parfact_trace::json::Json;
use parfact_trace::TraceLevel;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Best-of-N wall time of `f`, in seconds: keeps iterating until the total
/// measured time passes a floor so short kernels get enough samples.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let floor = if quick() { 0.05 } else { 0.5 };
    f(); // warm-up (first touch, pack-buffer growth)
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut iters = 0u32;
    while total < floor || iters < 3 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        iters += 1;
        if iters >= 10_000 {
            break;
        }
    }
    best
}

fn det_rng(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 2000) as f64 / 1000.0 - 1.0
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One packed-vs-naive kernel comparison row.
fn kernel_row(kernel: &str, n: usize, k: usize, flops: f64, packed_s: f64, naive_s: f64) -> Json {
    let (pg, ng) = (flops / packed_s / 1e9, flops / naive_s / 1e9);
    println!(
        "  {kernel:<10} n={n:<4} k={k:<4}  packed {pg:6.2} GF/s   naive {ng:6.2} GF/s   speedup {:.2}x",
        pg / ng
    );
    obj(vec![
        ("kernel", Json::str(kernel)),
        ("n", Json::num_usize(n)),
        ("k", Json::num_usize(k)),
        ("packed_gflops", Json::num_f64(pg)),
        ("naive_gflops", Json::num_f64(ng)),
        ("speedup", Json::num_f64(pg / ng)),
    ])
}

fn bench_kernels() -> Vec<Json> {
    // Quick mode keeps n=256 so its keys overlap the committed baseline —
    // scripts/bench_check.sh compares per-(kernel, n, k) rates against it.
    let sizes: &[usize] = if quick() { &[256] } else { &[256, 512, 768] };
    let mut rows = Vec::new();

    for &n in sizes {
        // gemm_nt, square: C ← C − A Bᵀ with m = n = k.
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, n, |_, _| r());
        let b = DMat::from_fn(n, n, |_, _| r());
        let mut c = DMat::zeros(n, n);
        let flops = 2.0 * (n * n * n) as f64;
        let tp = best_secs(|| {
            blas::gemm_nt(
                n,
                n,
                n,
                -1.0,
                a.as_slice(),
                n,
                b.as_slice(),
                n,
                1.0,
                c.as_mut_slice(),
                n,
            )
        });
        let tn = best_secs(|| {
            naive::gemm_nt(
                n,
                n,
                n,
                -1.0,
                a.as_slice(),
                n,
                b.as_slice(),
                n,
                1.0,
                c.as_mut_slice(),
                n,
            )
        });
        rows.push(kernel_row("gemm_nt", n, n, flops, tp, tn));

        // syrk_ln at the factorization's panel width and at k = n.
        for k in [chol::NB, n] {
            let a = DMat::from_fn(n, k, |_, _| r());
            let mut c = DMat::zeros(n, n);
            let flops = (n * n * k) as f64;
            let tp =
                best_secs(|| blas::syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, c.as_mut_slice(), n));
            let tn =
                best_secs(|| naive::syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, c.as_mut_slice(), n));
            rows.push(kernel_row("syrk_ln", n, k, flops, tp, tn));
        }

        // Blocked Cholesky (packed kernels only — there is no naive potrf).
        let spd = DMat::random_spd(n, &mut r);
        let flops = (n * n * n) as f64 / 3.0;
        let mut m = spd.clone();
        let tc = best_secs(|| {
            m.as_mut_slice().copy_from_slice(spd.as_slice());
            chol::potrf(n, m.as_mut_slice(), n).unwrap();
        });
        let g = flops / tc / 1e9;
        println!("  {:<10} n={n:<4} k={n:<4}  packed {g:6.2} GF/s", "chol");
        rows.push(obj(vec![
            ("kernel", Json::str("chol")),
            ("n", Json::num_usize(n)),
            ("packed_gflops", Json::num_f64(g)),
        ]));
    }
    rows
}

fn bench_factorization() -> Vec<Json> {
    let problems: Vec<Problem> = if quick() {
        vec![Problem {
            name: "lap2d-60",
            a: gen::laplace2d(60, 60, gen::Stencil2d::FivePoint),
            desc: "2-D Poisson 60x60 (quick)",
        }]
    } else {
        suite()
    };
    let engines: &[(&str, Engine)] = &[
        ("seq", Engine::Sequential),
        (
            "smp4",
            Engine::Smp(SmpOpts {
                threads: 4,
                ..SmpOpts::default()
            }),
        ),
    ];
    let reps = if quick() { 1 } else { 3 };
    let mut rows = Vec::new();
    for p in &problems {
        for (tag, engine) in engines {
            let opts = FactorOpts::new()
                .engine(engine.clone())
                .trace(TraceLevel::Counters);
            let mut best: Option<parfact_trace::FactorReport> = None;
            for _ in 0..reps {
                let chol = SparseCholesky::factorize(&p.a, &opts).expect("suite matrices are SPD");
                let r = chol.report().clone();
                if best.as_ref().is_none_or(|b| r.numeric_s < b.numeric_s) {
                    best = Some(r);
                }
            }
            let r = best.unwrap();
            let kernel = r
                .kernel_gflops()
                .map_or("     -".to_string(), |kg| format!("{kg:6.2}"));
            println!(
                "  {:<10} {tag:<5}  factor {:8.1} ms   {:6.2} GF/s end-to-end   {kernel} GF/s in kernels",
                p.name,
                r.numeric_s * 1e3,
                r.factor_gflops()
            );
            let mut fields = vec![
                ("matrix", Json::str(p.name)),
                ("engine", Json::str(tag)),
                ("n", Json::num_usize(p.a.nrows())),
                ("factor_s", Json::num_f64(r.numeric_s)),
                ("gflops", Json::num_f64(r.factor_gflops())),
            ];
            if let Some(kg) = r.kernel_gflops() {
                fields.push(("kernel_gflops", Json::num_f64(kg)));
            }
            rows.push(obj(fields));
        }
    }
    rows
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    println!("bench_pr2: packed vs naive dense kernels");
    let kernels = bench_kernels();
    println!("bench_pr2: end-to-end factorization (best of runs)");
    let factorization = bench_factorization();
    let doc = obj(vec![
        ("bench", Json::str("pr2_packed_kernels")),
        ("quick", Json::Bool(quick())),
        ("kernels", Json::Arr(kernels)),
        ("factorization", Json::Arr(factorization)),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write results");
    println!("bench_pr2: results written to {out}");
}
