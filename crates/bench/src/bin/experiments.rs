//! The experiment harness: regenerates every table and figure of the
//! (reconstructed) evaluation. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results.
//!
//! ```text
//! experiments <id>        # t1 t2 f1..f6 a1..a7 r1
//! experiments all         # everything, in order
//! experiments all --quick # smaller sizes / fewer points (CI smoke run)
//! ```
//!
//! Simulated quantities (distributed runs) come from the α-β-γ machine
//! model and are host-independent; wall-clock quantities (SMP/sequential
//! runs) depend on this machine.

use parfact_bench::{fmt_bytes, fmt_time, scaling_matrices, suite, Problem, Table};
use parfact_core::baseline::fanout;
use parfact_core::dist::{prepare, run_distributed_prepared, run_distributed_prepared_traced};
use parfact_core::mapping::MapStrategy;
use parfact_core::smp::{resolve_threads, SmpOpts};
use parfact_core::solver::{Engine, FactorOpts, SparseCholesky};
use parfact_mpsim::model::CostModel;
use parfact_mpsim::Machine;
use parfact_order::Method;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::gen;
use parfact_symbolic::AmalgOpts;
use std::time::Instant;

fn nb_default() -> usize {
    parfact_dense::chol::NB
}

/// One (matrix, ranks) scaling measurement shared by EXP-F1..F4.
struct ScalPoint {
    matrix: &'static str,
    ranks: usize,
    factor_s: f64,
    solve_s: f64,
    gflops: f64,
    msgs: u64,
    bytes: u64,
    factor_bytes_per_rank: usize,
    peak_bytes_per_rank: u64,
    factor_total_bytes: u64,
    /// Transfer seconds hidden under compute by nonblocking sends (summed
    /// over ranks) vs. comm seconds still exposed on rank clocks.
    hidden_s: f64,
    exposed_s: f64,
    /// Largest mailbox backlog any rank saw (messages).
    queue_peak: u64,
    /// Critical path through the assembly tree (timeline profile).
    crit_s: f64,
    /// Worst per-rank idle fraction.
    idle_max: f64,
}

struct Ctx {
    quick: bool,
    sweep: std::cell::RefCell<Option<std::rc::Rc<Vec<ScalPoint>>>>,
}

impl Ctx {
    fn ranks(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 4, 16]
        } else {
            vec![1, 2, 4, 8, 16, 32, 64, 128]
        }
    }

    /// The shared strong-scaling sweep behind EXP-F1..F4: each
    /// (matrix, ranks) point is factored + solved once and reused.
    fn sweep(&self) -> std::rc::Rc<Vec<ScalPoint>> {
        if let Some(rc) = self.sweep.borrow().as_ref() {
            return rc.clone();
        }
        let mut points = Vec::new();
        for p in self.scaling_problems() {
            let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
            let total = (sym.factor_nnz() * 8) as u64;
            let b = vec![1.0; p.a.nrows()];
            for &r in &self.ranks() {
                // Traced run: event recording never touches the virtual
                // clocks, so timings are identical to an untraced run.
                let out = run_distributed_prepared_traced(
                    r,
                    CostModel::bluegene_p(),
                    &ap,
                    &sym,
                    &perm,
                    MapStrategy::default(),
                    false,
                    Some(&b),
                    1,
                    true,
                    true,
                )
                .expect("SPD");
                let profile = parfact_trace::profile::analyze(
                    &sym.tree.parent,
                    &out.merged_events(),
                    &out.rank_reports(),
                    8,
                );
                points.push(ScalPoint {
                    matrix: p.name,
                    ranks: r,
                    factor_s: out.factor_time_s,
                    solve_s: out.solve_time_s,
                    gflops: out.factor_gflops(),
                    msgs: out.stats.iter().map(|s| s.msgs_sent).sum(),
                    bytes: out.stats.iter().map(|s| s.bytes_sent).sum(),
                    factor_bytes_per_rank: out.max_factor_bytes,
                    peak_bytes_per_rank: out.max_mem_peak(),
                    factor_total_bytes: total,
                    hidden_s: out.stats.iter().map(|s| s.comm_hidden_s).sum(),
                    exposed_s: out.stats.iter().map(|s| s.comm_s).sum(),
                    queue_peak: out.stats.iter().map(|s| s.queue_peak).max().unwrap_or(0),
                    crit_s: profile.critical_path_s,
                    idle_max: profile.max_idle_frac(),
                });
            }
        }
        let rc = std::rc::Rc::new(points);
        *self.sweep.borrow_mut() = Some(rc.clone());
        rc
    }

    fn scaling_problems(&self) -> Vec<Problem> {
        if self.quick {
            vec![Problem {
                name: "lap3d-16",
                a: gen::laplace3d(16, 16, 16, gen::Stencil3d::SevenPoint),
                desc: "3-D Poisson 16^3 (quick)",
            }]
        } else {
            scaling_matrices()
        }
    }

    fn suite(&self) -> Vec<Problem> {
        if self.quick {
            vec![
                Problem {
                    name: "lap2d-60",
                    a: gen::laplace2d(60, 60, gen::Stencil2d::FivePoint),
                    desc: "2-D Poisson 60x60 (quick)",
                },
                Problem {
                    name: "lap3d-16",
                    a: gen::laplace3d(16, 16, 16, gen::Stencil3d::SevenPoint),
                    desc: "3-D Poisson 16^3 (quick)",
                },
                Problem {
                    name: "elas-6",
                    a: gen::elasticity3d(6, 6, 6),
                    desc: "3-D elasticity 6^3 (quick)",
                },
            ]
        } else {
            suite()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let ctx = Ctx {
        quick,
        sweep: std::cell::RefCell::new(None),
    };
    let all = [
        "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
        "r1",
    ];
    let run: Vec<&str> = match ids.as_slice() {
        [] | ["all"] => all.to_vec(),
        ids => ids.to_vec(),
    };
    for id in run {
        let t = Instant::now();
        match id {
            "t1" => exp_t1(&ctx),
            "t2" => exp_t2(&ctx),
            "f1" => exp_f1(&ctx),
            "f2" => exp_f2(&ctx),
            "f3" => exp_f3(&ctx),
            "f4" => exp_f4(&ctx),
            "f5" => exp_f5(&ctx),
            "f6" => exp_f6(&ctx),
            "a1" => exp_a1(&ctx),
            "a2" => exp_a2(&ctx),
            "a3" => exp_a3(&ctx),
            "a4" => exp_a4(&ctx),
            "a5" => exp_a5(&ctx),
            "a6" => exp_a6(&ctx),
            "a7" => exp_a7(&ctx),
            "r1" => exp_r1(&ctx),
            other => {
                eprintln!("unknown experiment id '{other}' (use t1,t2,f1..f6,a1..a7,r1,all)");
                std::process::exit(2);
            }
        }
        println!(
            "  [{id} finished in {}]\n",
            fmt_time(t.elapsed().as_secs_f64())
        );
    }
}

/// EXP-T1: the test-matrix suite with symbolic statistics.
fn exp_t1(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-T1: test-matrix suite (nested dissection ordering)",
        &[
            "matrix",
            "n",
            "nnz(A)",
            "nnz(L)",
            "fill",
            "Gflop",
            "supernodes",
            "description",
        ],
    );
    for p in ctx.suite() {
        let (sym, _, _) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        t.row(vec![
            p.name.into(),
            p.a.nrows().to_string(),
            p.a.nnz().to_string(),
            sym.factor_nnz().to_string(),
            format!("{:.2}", sym.factor_nnz() as f64 / p.a.nnz() as f64),
            format!("{:.3}", sym.factor_flops() / 1e9),
            sym.nsuper().to_string(),
            p.desc.into(),
        ]);
    }
    t.emit("t1_suite");
}

/// EXP-T2: per-phase breakdown at several rank counts (simulated numeric /
/// solve, host wall-clock ordering + symbolic).
fn exp_t2(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-T2: phase breakdown (ordering/symbolic on host; factor/solve simulated, BG/P model)",
        &["matrix", "ranks", "ordering", "symbolic", "factor", "solve"],
    );
    let ranks = if ctx.quick {
        vec![1, 4]
    } else {
        vec![1, 16, 64]
    };
    for p in ctx.suite() {
        let t0 = Instant::now();
        let fill = parfact_order::order_matrix(&p.a, Method::default());
        let t_ord = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let af = fill.apply_sym_lower(&p.a);
        let (sym, ap) = parfact_symbolic::analyze(&af, &AmalgOpts::default());
        let t_sym = t1.elapsed().as_secs_f64();
        let perm = sym.post.compose(&fill);
        let sym = std::sync::Arc::new(sym);
        let b = vec![1.0; p.a.nrows()];
        for &r in &ranks {
            let out = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                Some(&b),
            )
            .expect("SPD");
            t.row(vec![
                p.name.into(),
                r.to_string(),
                fmt_time(t_ord),
                fmt_time(t_sym),
                fmt_time(out.factor_time_s),
                fmt_time(out.solve_time_s),
            ]);
        }
    }
    t.emit("t2_phases");
}

/// EXP-F1: strong scaling of numeric factorization, multifrontal vs the
/// fan-out baseline.
fn exp_f1(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-F1: strong scaling of factorization time (simulated, BG/P model)",
        &[
            "matrix",
            "ranks",
            "multifrontal",
            "MF speedup",
            "crit path",
            "idle max",
            "comm hidden",
            "comm exposed",
            "fan-out",
            "FO speedup",
        ],
    );
    let fo_ranks: Vec<usize> = if ctx.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 4, 16, 64]
    };
    // Fan-out baseline matrix: the simplicial kernel is slow in real time,
    // so run it on the 24^3 problem (same family) at a few rank counts.
    let fo_matrix: CscMatrix = {
        let dim = if ctx.quick { 16 } else { 24 };
        let a = gen::laplace3d(dim, dim, dim, gen::Stencil3d::SevenPoint);
        let fill = parfact_order::order_matrix(&a, Method::default());
        fill.apply_sym_lower(&a)
    };
    let fo_label = if ctx.quick { "16^3" } else { "24^3" };
    let mut fo_times: Vec<(usize, f64)> = Vec::new();
    for &r in &fo_ranks {
        let report = Machine::new(r, CostModel::bluegene_p()).run(|rank| {
            fanout::factorize_rank(rank, &fo_matrix).expect("fan-out");
        });
        fo_times.push((r, report.makespan_s));
    }
    let t1_fo = fo_times[0].1;
    let sweep = ctx.sweep();
    let mut t1_mf = std::collections::HashMap::new();
    for pt in sweep.iter() {
        if pt.ranks == 1 {
            t1_mf.insert(pt.matrix, pt.factor_s);
        }
    }
    for pt in sweep.iter() {
        let (fo_cell, fo_speed) = match fo_times.iter().find(|(r, _)| *r == pt.ranks) {
            Some((_, ft)) => (
                format!("{} ({fo_label})", fmt_time(*ft)),
                format!("{:.2}x", t1_fo / ft),
            ),
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            pt.matrix.into(),
            pt.ranks.to_string(),
            fmt_time(pt.factor_s),
            format!("{:.2}x", t1_mf[pt.matrix] / pt.factor_s),
            fmt_time(pt.crit_s),
            format!("{:.1}%", pt.idle_max * 100.0),
            fmt_time(pt.hidden_s),
            fmt_time(pt.exposed_s),
            fo_cell,
            fo_speed,
        ]);
    }
    t.emit("f1_strong_scaling");
}

/// EXP-F2: modelled Gflop/s of the multifrontal factorization vs ranks.
fn exp_f2(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-F2: modelled aggregate Gflop/s vs ranks (BG/P model; 3.4 Gflop/s peak per rank)",
        &["matrix", "ranks", "Gflop/s", "efficiency", "msgs", "bytes"],
    );
    for pt in ctx.sweep().iter() {
        t.row(vec![
            pt.matrix.into(),
            pt.ranks.to_string(),
            format!("{:.2}", pt.gflops),
            format!("{:.1}%", 100.0 * pt.gflops / (3.4 * pt.ranks as f64)),
            pt.msgs.to_string(),
            fmt_bytes(pt.bytes),
        ]);
    }
    t.emit("f2_gflops");
}

/// EXP-F3: per-rank memory vs ranks.
fn exp_f3(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-F3: max per-rank memory vs ranks (factor bytes at end; peak = fronts + factor)",
        &[
            "matrix",
            "ranks",
            "factor/rank",
            "peak/rank",
            "factor total",
        ],
    );
    for pt in ctx.sweep().iter() {
        t.row(vec![
            pt.matrix.into(),
            pt.ranks.to_string(),
            fmt_bytes(pt.factor_bytes_per_rank as u64),
            fmt_bytes(pt.peak_bytes_per_rank),
            fmt_bytes(pt.factor_total_bytes),
        ]);
    }
    t.emit("f3_memory");
}

/// EXP-F4: triangular-solve scaling.
fn exp_f4(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-F4: solve scaling (simulated) - solve scales worse than factorization",
        &[
            "matrix",
            "ranks",
            "factor",
            "solve",
            "factor speedup",
            "solve speedup",
            "queue peak",
        ],
    );
    let sweep = ctx.sweep();
    let mut t1: std::collections::HashMap<&str, (f64, f64)> = std::collections::HashMap::new();
    for pt in sweep.iter() {
        if pt.ranks == 1 {
            t1.insert(pt.matrix, (pt.factor_s, pt.solve_s));
        }
    }
    for pt in sweep.iter() {
        let (t1f, t1s) = t1[pt.matrix];
        t.row(vec![
            pt.matrix.into(),
            pt.ranks.to_string(),
            fmt_time(pt.factor_s),
            fmt_time(pt.solve_s),
            format!("{:.2}x", t1f / pt.factor_s),
            format!("{:.2}x", t1s / pt.solve_s),
            pt.queue_peak.to_string(),
        ]);
    }
    t.emit("f4_solve");
}

/// EXP-F5: real wall-clock SMP scaling on this host.
fn exp_f5(ctx: &Ctx) {
    let ncpu = resolve_threads(0);
    let mut t = Table::new(
        &format!("EXP-F5: SMP wall-clock factorization scaling (this host: {ncpu} core(s))"),
        &["matrix", "threads", "numeric wall", "speedup"],
    );
    let mut threads = vec![1usize];
    let mut k = 2;
    while k <= ncpu {
        threads.push(k);
        k *= 2;
    }
    if *threads.last().unwrap() != ncpu {
        threads.push(ncpu);
    }
    for p in ctx.scaling_problems() {
        let mut t1 = 0.0;
        for &th in &threads {
            let engine = if th == 1 {
                Engine::Sequential
            } else {
                Engine::Smp(SmpOpts {
                    threads: th,
                    ..SmpOpts::default()
                })
            };
            let opts = FactorOpts::new().engine(engine);
            let chol = SparseCholesky::factorize(&p.a, &opts).expect("SPD");
            let tn = chol.report().numeric_s;
            if th == 1 {
                t1 = tn;
            }
            t.row(vec![
                p.name.into(),
                th.to_string(),
                fmt_time(tn),
                format!("{:.2}x", t1 / tn),
            ]);
        }
    }
    t.emit("f5_smp");
    if ncpu == 1 {
        println!("  [note: single-core host — speedup column is necessarily ~1.0x;");
        println!("   the engines' correctness is still exercised (bitwise vs sequential)]");
    }
}

/// EXP-F6: weak scaling — 3-D grids sized so factorization work per rank
/// stays roughly constant (flops ~ m^6 for an m^3 grid, so m ~ m0 * p^(1/6)).
fn exp_f6(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-F6: weak scaling (3-D Poisson, ~constant flops per rank; simulated)",
        &["grid", "n", "ranks", "Gflop", "factor", "efficiency"],
    );
    let points: Vec<(usize, usize)> = if ctx.quick {
        vec![(12, 1), (15, 4)]
    } else {
        vec![(16, 1), (20, 4), (25, 16), (32, 64)]
    };
    let mut t1 = 0.0;
    for (m, p) in points {
        let a = gen::laplace3d(m, m, m, gen::Stencil3d::SevenPoint);
        let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
        let out = run_distributed_prepared(
            p,
            CostModel::bluegene_p(),
            &ap,
            &sym,
            &perm,
            MapStrategy::default(),
            false,
            None,
        )
        .expect("SPD");
        if p == 1 {
            t1 = out.factor_time_s;
        }
        t.row(vec![
            format!("{m}^3"),
            a.nrows().to_string(),
            p.to_string(),
            format!("{:.3}", sym.factor_flops() / 1e9),
            fmt_time(out.factor_time_s),
            format!("{:.1}%", 100.0 * t1 / out.factor_time_s),
        ]);
    }
    t.emit("f6_weak_scaling");
}

/// EXP-A1: subtree-to-subcube vs flat mapping.
fn exp_a1(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A1: mapping ablation — proportional (subtree-to-subcube) vs flat",
        &[
            "matrix",
            "ranks",
            "proportional",
            "flat",
            "flat/prop",
            "prop msgs",
            "flat msgs",
        ],
    );
    let ranks = if ctx.quick { vec![4, 16] } else { vec![16, 64] };
    for p in ctx.scaling_problems() {
        let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        for &r in &ranks {
            let prop = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                None,
            )
            .expect("SPD");
            let flat = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::Flat {
                    use_2d: true,
                    nb: nb_default(),
                },
                false,
                None,
            )
            .expect("SPD");
            t.row(vec![
                p.name.into(),
                r.to_string(),
                fmt_time(prop.factor_time_s),
                fmt_time(flat.factor_time_s),
                format!("{:.2}x", flat.factor_time_s / prop.factor_time_s),
                prop.stats
                    .iter()
                    .map(|s| s.msgs_sent)
                    .sum::<u64>()
                    .to_string(),
                flat.stats
                    .iter()
                    .map(|s| s.msgs_sent)
                    .sum::<u64>()
                    .to_string(),
            ]);
        }
    }
    t.emit("a1_mapping");
}

/// EXP-A2: 1-D vs 2-D front layouts.
fn exp_a2(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A2: front layout ablation — 2-D grids vs 1-D column layout",
        &["matrix", "ranks", "2-D", "1-D", "1D/2D"],
    );
    let ranks = if ctx.quick {
        vec![4, 16]
    } else {
        vec![16, 64, 128]
    };
    for p in ctx.scaling_problems() {
        let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        for &r in &ranks {
            let d2 = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::Proportional {
                    use_2d: true,
                    nb: nb_default(),
                },
                false,
                None,
            )
            .expect("SPD");
            let d1 = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::Proportional {
                    use_2d: false,
                    nb: nb_default(),
                },
                false,
                None,
            )
            .expect("SPD");
            t.row(vec![
                p.name.into(),
                r.to_string(),
                fmt_time(d2.factor_time_s),
                fmt_time(d1.factor_time_s),
                format!("{:.2}x", d1.factor_time_s / d2.factor_time_s),
            ]);
        }
    }
    t.emit("a2_layout");
}

/// EXP-A3: machine-model sensitivity.
fn exp_a3(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A3: machine sensitivity at fixed ranks (latency/bandwidth sweeps + presets)",
        &["matrix", "machine", "factor", "Gflop/s", "efficiency"],
    );
    let r = if ctx.quick { 8 } else { 64 };
    let bg = CostModel::bluegene_p();
    let machines: Vec<(String, CostModel)> = vec![
        ("BG/P".into(), bg),
        (
            "BG/P, 10x latency".into(),
            CostModel {
                alpha_s: bg.alpha_s * 10.0,
                ..bg
            },
        ),
        (
            "BG/P, 0.1x latency".into(),
            CostModel {
                alpha_s: bg.alpha_s * 0.1,
                ..bg
            },
        ),
        (
            "BG/P, 10x bandwidth".into(),
            CostModel {
                beta_s_per_byte: bg.beta_s_per_byte / 10.0,
                ..bg
            },
        ),
        (
            "BG/P, 0.1x bandwidth".into(),
            CostModel {
                beta_s_per_byte: bg.beta_s_per_byte * 10.0,
                ..bg
            },
        ),
        ("modern cluster".into(), CostModel::modern_cluster()),
    ];
    for p in ctx.scaling_problems() {
        let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        for (name, m) in &machines {
            let out = run_distributed_prepared(
                r,
                *m,
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                None,
            )
            .expect("SPD");
            let gf = out.factor_gflops();
            let peak = r as f64 / m.flop_time_s / 1e9;
            t.row(vec![
                p.name.into(),
                format!("{name} (p={r})"),
                fmt_time(out.factor_time_s),
                format!("{gf:.2}"),
                format!("{:.1}%", 100.0 * gf / peak),
            ]);
        }
    }
    t.emit("a3_machines");
}

/// EXP-A4: ordering quality across the suite.
fn exp_a4(ctx: &Ctx) {
    use parfact_symbolic::{colcount, etree};
    // Light predictor: column counts only — no factor structures, so even
    // catastrophic orderings (natural order on 3-D problems) stay cheap.
    fn counts_only(a: &CscMatrix, method: Method) -> (usize, f64) {
        let fill = parfact_order::order_matrix(a, method);
        let af = fill.apply_sym_lower(a);
        let parent0 = etree::etree(&af);
        let post = parfact_sparse::perm::Perm::from_vec(etree::postorder(&parent0));
        let ap = post.apply_sym_lower(&af);
        let parent = etree::relabel(&parent0, &post);
        let cc = colcount::col_counts(&ap, &parent);
        let nnz: usize = cc.iter().sum();
        let flops: f64 = cc.iter().map(|&c| 2.0 * (c * c) as f64).sum();
        (nnz, flops)
    }
    let mut t = Table::new(
        "EXP-A4: ordering quality - fill, flops, and sequential factor wall time",
        &[
            "matrix",
            "ordering",
            "nnz(L)",
            "fill",
            "Gflop",
            "numeric wall",
        ],
    );
    for p in ctx.suite() {
        for (label, method) in [
            ("natural", Method::Natural),
            ("RCM", Method::Rcm),
            ("min degree", Method::MinDegree),
            ("nested dissection", Method::default()),
        ] {
            let (nnz_l, flops) = counts_only(&p.a, method);
            let wall = if flops < 20e9 {
                let chol = SparseCholesky::factorize(&p.a, &FactorOpts::new().ordering(method))
                    .expect("SPD");
                fmt_time(chol.report().numeric_s)
            } else {
                "(skipped: too much fill)".into()
            };
            t.row(vec![
                p.name.into(),
                label.into(),
                nnz_l.to_string(),
                format!("{:.2}", nnz_l as f64 / p.a.nnz() as f64),
                format!("{:.3}", flops / 1e9),
                wall,
            ]);
        }
    }
    t.emit("a4_orderings");
}

/// EXP-A5: supernode amalgamation sweep.
fn exp_a5(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A5: relaxed-supernode amalgamation sweep (sequential numeric wall time)",
        &[
            "matrix",
            "min_width",
            "relax",
            "supernodes",
            "nnz(L)",
            "Gflop",
            "numeric wall",
        ],
    );
    let probs = ctx.scaling_problems();
    let p = &probs[0];
    for (mw, relax) in [
        (0usize, 0.0f64),
        (4, 0.05),
        (8, 0.10),
        (16, 0.20),
        (32, 0.40),
    ] {
        let amalg = AmalgOpts {
            min_width: mw,
            relax_frac: relax,
        };
        let chol = SparseCholesky::factorize(&p.a, &FactorOpts::new().amalg(amalg)).expect("SPD");
        let sym = chol.symbolic();
        t.row(vec![
            p.name.into(),
            mw.to_string(),
            format!("{relax:.2}"),
            sym.nsuper().to_string(),
            sym.factor_nnz().to_string(),
            format!("{:.3}", sym.factor_flops() / 1e9),
            fmt_time(chol.report().numeric_s),
        ]);
    }
    t.emit("a5_amalgamation");
}

/// EXP-R1: machine-readable factorization reports — one JSON document per
/// engine, emitted to stdout (and `target/experiments/` alongside the
/// tables) for downstream tooling.
fn exp_r1(ctx: &Ctx) {
    use parfact_core::solver::DistOpts;
    use parfact_trace::TraceLevel;
    println!("EXP-R1: factorization reports (JSON, counters traced)");
    let p = &ctx.suite()[0];
    let engines = [
        Engine::Sequential,
        Engine::Smp(SmpOpts::default()),
        Engine::Dist(DistOpts {
            ranks: if ctx.quick { 4 } else { 16 },
            ..DistOpts::default()
        }),
    ];
    let mut docs = Vec::new();
    for engine in engines {
        let chol = SparseCholesky::factorize(
            &p.a,
            &FactorOpts::new().engine(engine).trace(TraceLevel::Counters),
        )
        .expect("SPD");
        let r = chol.report();
        let kernel = match r.kernel_gflops() {
            Some(kg) => format!("{kg:.2}"),
            None => "-".to_string(),
        };
        println!(
            "  [{}: {:.2} GF/s end-to-end, {} GF/s in dense kernels]",
            r.engine,
            r.factor_gflops(),
            kernel
        );
        println!("{}", r.to_json_string());
        docs.push(r.to_json_pretty());
    }
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("r1_reports.json");
        let body = format!("[\n{}\n]\n", docs.join(",\n"));
        if std::fs::write(&path, body).is_ok() {
            println!("  [reports written to {}]", path.display());
        }
    }
}

/// EXP-A6: distributed-front block size (panel width) sweep.
fn exp_a6(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A6: block-cyclic block size nb (= panel width) sweep, proportional 2-D mapping",
        &["matrix", "ranks", "nb", "factor", "msgs", "bytes"],
    );
    let r = if ctx.quick { 8 } else { 64 };
    for p in ctx.scaling_problems() {
        let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        for nb in [16usize, 32, 48, 64, 96] {
            let out = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::Proportional { use_2d: true, nb },
                false,
                None,
            )
            .expect("SPD");
            t.row(vec![
                p.name.into(),
                r.to_string(),
                nb.to_string(),
                fmt_time(out.factor_time_s),
                out.stats
                    .iter()
                    .map(|s| s.msgs_sent)
                    .sum::<u64>()
                    .to_string(),
                fmt_bytes(out.stats.iter().map(|s| s.bytes_sent).sum::<u64>()),
            ]);
        }
    }
    t.emit("a6_blocksize");
}

/// EXP-A7: schedule ablation — event-driven (default) vs strict-postorder
/// synchronous schedule. Both produce bitwise-identical factors; the ratio
/// column isolates how much of the comm cost the overlap hides.
fn exp_a7(ctx: &Ctx) {
    let mut t = Table::new(
        "EXP-A7: schedule ablation — event-driven vs synchronous postorder (BG/P model)",
        &[
            "matrix",
            "ranks",
            "sync",
            "async",
            "async/sync",
            "hidden comm",
            "crit path",
            "idle max",
            "bitwise",
        ],
    );
    let ranks = if ctx.quick {
        vec![4, 16]
    } else {
        vec![8, 32, 64, 128]
    };
    for p in ctx.scaling_problems() {
        let (sym, ap, perm) = prepare(&p.a, Method::default(), &AmalgOpts::default());
        for &r in &ranks {
            let sync = run_distributed_prepared(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                true,
                None,
            )
            .expect("SPD");
            let evd = run_distributed_prepared_traced(
                r,
                CostModel::bluegene_p(),
                &ap,
                &sym,
                &perm,
                MapStrategy::default(),
                false,
                None,
                1,
                true,
                false,
            )
            .expect("SPD");
            let profile = parfact_trace::profile::analyze(
                &sym.tree.parent,
                &evd.merged_events(),
                &evd.rank_reports(),
                8,
            );
            let hidden: f64 = evd.stats.iter().map(|s| s.comm_hidden_s).sum();
            let identical = evd.factor.max_abs_diff(&sync.factor) == 0.0;
            t.row(vec![
                p.name.into(),
                r.to_string(),
                fmt_time(sync.factor_time_s),
                fmt_time(evd.factor_time_s),
                format!("{:.3}x", evd.factor_time_s / sync.factor_time_s),
                fmt_time(hidden),
                fmt_time(profile.critical_path_s),
                format!("{:.1}%", profile.max_idle_frac() * 100.0),
                if identical { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    t.emit("a7_schedule");
}
