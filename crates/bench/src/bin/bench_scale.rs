//! `bench_scale` — evidence artifact for the scalability-analytics PR:
//! sweeps the distributed engine across rank counts, records the *measured*
//! communication matrix and memory high-water marks next to the paper
//! model's *predictions*, and writes `BENCH_pr9.json`.
//!
//! ```text
//! bench_scale [out.json]    (default output: BENCH_pr9.json)
//! ```
//!
//! The headline is `volume_model_ratio` at p = 64 on lap3d-32: the measured
//! total factorization traffic divided by what the subtree-to-subcube /
//! 2-D-grid model in `parfact_core::scalability` predicts from the symbolic
//! structure alone. The acceptance bar is a ratio inside [0.5, 2] — the
//! model has no fitted constants, so staying within 2x says the engine's
//! traffic really is the paper's `O(f²/√g)` panel volume plus crossing
//! extend-adds, not something else.
//!
//! Runs factor-only (no right-hand side): the model covers factorization,
//! and the engine's statistics snapshot excludes the verification gather.
//!
//! Set `BENCH_QUICK=1` for a fast smoke run (small grid, small p) — used
//! by CI to keep the binary working, not to produce the artifact.

use parfact_core::dist::{prepare, run_distributed_prepared_traced};
use parfact_core::mapping::{map_tree, MapStrategy};
use parfact_core::scalability::predict;
use parfact_mpsim::model::CostModel;
use parfact_order::Method;
use parfact_sparse::gen;
use parfact_symbolic::AmalgOpts;
use parfact_trace::json::Json;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());

    let (name, a, ps): (_, _, &[usize]) = if quick() {
        (
            "lap3d-10",
            gen::laplace3d(10, 10, 10, gen::Stencil3d::SevenPoint),
            &[2, 4, 8],
        )
    } else {
        (
            "lap3d-32",
            gen::laplace3d(32, 32, 32, gen::Stencil3d::SevenPoint),
            &[8, 16, 32, 64, 128],
        )
    };
    let n = a.nrows();
    println!("bench_scale: {name}, n = {n}, nnz(lower) = {}", a.nnz());

    let (sym, ap, perm) = prepare(&a, Method::default(), &AmalgOpts::default());
    println!(
        "bench_scale: nsuper = {}, factor nnz = {}",
        sym.nsuper(),
        sym.factor_nnz()
    );

    let headline_p = if quick() { *ps.last().unwrap() } else { 64 };
    let mut headline_ratio = f64::NAN;
    let mut rows = Vec::new();
    for &p in ps {
        let outcome = run_distributed_prepared_traced(
            p,
            CostModel::bluegene_p(),
            &ap,
            &sym,
            &perm,
            MapStrategy::default(),
            false,
            None,
            1,
            false,
            true,
        )
        .expect("distributed factorization");
        let map = map_tree(&sym, p, MapStrategy::default());
        let pred = predict(&sym, &map);

        let measured: u64 = outcome.stats.iter().map(|s| s.bytes_sent).sum();
        let predicted = pred.total_bytes();
        let ratio = measured as f64 / predicted.max(f64::MIN_POSITIVE);
        let mem_measured = outcome.max_mem_peak();
        let mem_predicted = pred.max_mem();
        let mem_ratio = mem_measured as f64 / mem_predicted.max(f64::MIN_POSITIVE);
        let m = outcome.comm.as_ref().expect("comm matrix recorded");
        let class_bytes: Vec<(String, u64)> = m
            .class_names
            .iter()
            .enumerate()
            .map(|(c, cn)| (cn.clone(), m.class_bytes(c)))
            .collect();
        if p == headline_p {
            headline_ratio = ratio;
        }
        println!(
            "  p={p:<3}  comm {:>7.1} MB (model {:>7.1} MB, x{ratio:.2})  \
             mem/rank {:>6.1} MB (model {:>6.1} MB, x{mem_ratio:.2})  \
             makespan {:>7.1} ms  msgs {}",
            measured as f64 / 1e6,
            predicted / 1e6,
            mem_measured as f64 / 1e6,
            mem_predicted / 1e6,
            outcome.factor_time_s * 1e3,
            m.total_msgs(),
        );
        rows.push(obj(vec![
            ("ranks", Json::num_usize(p)),
            ("measured_bytes", Json::num_u64(measured)),
            ("predicted_bytes", Json::num_f64(predicted)),
            ("volume_model_ratio", Json::num_f64(ratio)),
            ("measured_mem_peak", Json::num_u64(mem_measured)),
            ("predicted_mem_peak", Json::num_f64(mem_predicted)),
            ("mem_model_ratio", Json::num_f64(mem_ratio)),
            ("makespan_s", Json::num_f64(outcome.factor_time_s)),
            ("total_msgs", Json::num_u64(m.total_msgs())),
            (
                "class_bytes",
                Json::Obj(
                    class_bytes
                        .into_iter()
                        .map(|(k, v)| (k, Json::num_u64(v)))
                        .collect(),
                ),
            ),
        ]));
    }

    assert!(
        (0.5..=2.0).contains(&headline_ratio),
        "volume_model_ratio at p={headline_p} is {headline_ratio}, outside [0.5, 2]"
    );
    println!(
        "bench_scale: volume_model_ratio at p={headline_p} = {headline_ratio:.3} (bar: [0.5, 2])"
    );

    let doc = obj(vec![
        ("bench", Json::str("pr9_scalability_analytics")),
        ("quick", Json::Bool(quick())),
        ("matrix", Json::str(name)),
        ("n", Json::num_usize(n)),
        ("nsuper", Json::num_usize(sym.nsuper())),
        ("sweep", Json::Arr(rows)),
        (
            "headline",
            obj(vec![
                ("matrix", Json::str(name)),
                ("ranks", Json::num_usize(headline_p)),
                ("volume_model_ratio", Json::num_f64(headline_ratio)),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write results");
    println!("bench_scale: results written to {out}");
}
