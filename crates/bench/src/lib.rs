//! Shared infrastructure for the experiment harness: the test-matrix
//! suite, table rendering, and CSV output under `results/`.

use parfact_sparse::csc::CscMatrix;
use parfact_sparse::gen;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A named test problem.
pub struct Problem {
    pub name: &'static str,
    pub a: CscMatrix,
    /// One-line provenance note for the tables.
    pub desc: &'static str,
}

/// The standard suite (EXP-T1): model PDE problems plus the synthetic
/// structural-mechanics stand-ins (see DESIGN.md "Substitutions").
pub fn suite() -> Vec<Problem> {
    vec![
        Problem {
            name: "lap2d-200",
            a: gen::laplace2d(200, 200, gen::Stencil2d::FivePoint),
            desc: "2-D Poisson 200x200, 5-point",
        },
        Problem {
            name: "lap3d-24",
            a: gen::laplace3d(24, 24, 24, gen::Stencil3d::SevenPoint),
            desc: "3-D Poisson 24^3, 7-point",
        },
        Problem {
            name: "lap3d-32",
            a: gen::laplace3d(32, 32, 32, gen::Stencil3d::SevenPoint),
            desc: "3-D Poisson 32^3, 7-point",
        },
        Problem {
            name: "elas-12",
            a: gen::elasticity3d(12, 12, 12),
            desc: "3-D elasticity-style 12^3, 3 dof/node",
        },
        Problem {
            name: "lap3d27-20",
            a: gen::laplace3d(20, 20, 20, gen::Stencil3d::TwentySevenPoint),
            desc: "3-D Poisson 20^3, 27-point (denser stencil)",
        },
    ]
}

/// A smaller suite for the heavier per-matrix sweeps.
pub fn scaling_matrices() -> Vec<Problem> {
    vec![
        Problem {
            name: "lap3d-32",
            a: gen::laplace3d(32, 32, 32, gen::Stencil3d::SevenPoint),
            desc: "3-D Poisson 32^3",
        },
        Problem {
            name: "elas-14",
            a: gen::elasticity3d(14, 14, 14),
            desc: "3-D elasticity 14^3 (3 dof/node)",
        },
    ]
}

/// Simple fixed-width table printer that doubles as a CSV writer.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[c]);
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * ncol)
        );
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[c]);
            }
            out.push('\n');
        }
        out
    }

    /// Write `results/<id>.csv`.
    pub fn save_csv(&self, id: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{id}.csv"));
        let mut text = self.headers.join(",");
        text.push('\n');
        for row in &self.rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Print the table and save the CSV.
    pub fn emit(&self, id: &str) {
        println!("{}", self.render());
        match self.save_csv(id) {
            Ok(p) => println!("  [csv -> {}]\n", p.display()),
            Err(e) => println!("  [csv write failed: {e}]\n"),
        }
    }
}

/// Format seconds with a sensible unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("bb"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_time(2.5), "2.50s");
        assert_eq!(fmt_time(0.0025), "2.50ms");
        assert_eq!(fmt_time(2.5e-5), "25.0us");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert!(fmt_bytes(3 << 20).contains("MiB"));
    }
}
