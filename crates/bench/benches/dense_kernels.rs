//! Microbenchmarks of the dense kernels the fronts are built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfact_dense::{blas, chol, DMat};
use std::hint::black_box;
use std::time::Duration;

fn det_rng(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 2000) as f64 / 1000.0 - 1.0
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for &n in &[64usize, 128, 256] {
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, n, |_, _| r());
        let b = DMat::from_fn(n, n, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                blas::gemm_nt(
                    n,
                    n,
                    n,
                    1.0,
                    a.as_slice(),
                    n,
                    b.as_slice(),
                    n,
                    0.0,
                    cmat.as_mut_slice(),
                    n,
                );
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_ln");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for &n in &[128usize, 256] {
        let k = 48; // panel width used by the factorization
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, k, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((n * n * k) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                blas::syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, cmat.as_mut_slice(), n);
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for &n in &[64usize, 192, 384] {
        let mut r = det_rng(n as u64);
        let a = DMat::random_spd(n, &mut r);
        g.throughput(Throughput::Elements((n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter_batched(
                || a.clone(),
                |mut m| {
                    chol::potrf(n, m.as_mut_slice(), n).unwrap();
                    black_box(m.as_slice()[0])
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_partial_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_potrf_front");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    // A representative front: order 320, eliminate 128 pivots.
    let (f, w) = (320usize, 128usize);
    let mut r = det_rng(7);
    let a = DMat::random_spd(f, &mut r);
    g.bench_function("f320_w128", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut m| {
                chol::partial_potrf(f, w, m.as_mut_slice(), f).unwrap();
                black_box(m.as_slice()[0])
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_syrk,
    bench_potrf,
    bench_partial_potrf
);
criterion_main!(benches);
