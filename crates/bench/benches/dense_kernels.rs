//! Microbenchmarks of the dense kernels the fronts are built on.
//!
//! Every group sets `Throughput::Elements` to the flop count of one call,
//! so the reported `Melem/s` reads directly as Mflop/s (divide by 1000 for
//! GF/s). The `*_naive` groups run the reference kernels from
//! [`parfact_dense::naive`] at the largest sizes as a packed-vs-naive
//! speedup baseline.
//!
//! Set `BENCH_QUICK=1` to run a fast smoke subset (used by CI to make sure
//! the benches still execute, not to measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfact_dense::{blas, chol, naive, DMat};
use std::hint::black_box;
use std::time::Duration;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn times(g: &mut criterion::BenchmarkGroup<'_>) {
    if quick() {
        g.measurement_time(Duration::from_millis(200))
            .warm_up_time(Duration::from_millis(50))
            .sample_size(3);
    } else {
        g.measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_secs(1));
    }
}

fn det_rng(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 2000) as f64 / 1000.0 - 1.0
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    times(&mut g);
    let sizes: &[usize] = if quick() {
        &[64, 256]
    } else {
        &[64, 128, 256, 512, 768]
    };
    for &n in sizes {
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, n, |_, _| r());
        let b = DMat::from_fn(n, n, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                blas::gemm_nt(
                    n,
                    n,
                    n,
                    1.0,
                    a.as_slice(),
                    n,
                    b.as_slice(),
                    n,
                    0.0,
                    cmat.as_mut_slice(),
                    n,
                );
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_gemm_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt_naive");
    times(&mut g);
    let sizes: &[usize] = if quick() { &[256] } else { &[256, 512] };
    for &n in sizes {
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, n, |_, _| r());
        let b = DMat::from_fn(n, n, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                naive::gemm_nt(
                    n,
                    n,
                    n,
                    1.0,
                    a.as_slice(),
                    n,
                    b.as_slice(),
                    n,
                    0.0,
                    cmat.as_mut_slice(),
                    n,
                );
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_ln");
    times(&mut g);
    let sizes: &[usize] = if quick() {
        &[256]
    } else {
        &[128, 256, 512, 768]
    };
    for &n in sizes {
        let k = 48; // panel width used by the factorization
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, k, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((n * n * k) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                blas::syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, cmat.as_mut_slice(), n);
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_syrk_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_ln_naive");
    times(&mut g);
    let sizes: &[usize] = if quick() { &[256] } else { &[256, 512] };
    for &n in sizes {
        let k = 48;
        let mut r = det_rng(n as u64);
        let a = DMat::from_fn(n, k, |_, _| r());
        let mut cmat = DMat::zeros(n, n);
        g.throughput(Throughput::Elements((n * n * k) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                naive::syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, cmat.as_mut_slice(), n);
                black_box(cmat.as_slice()[0])
            })
        });
    }
    g.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    times(&mut g);
    let sizes: &[usize] = if quick() {
        &[192]
    } else {
        &[64, 192, 384, 512]
    };
    for &n in sizes {
        let mut r = det_rng(n as u64);
        let a = DMat::random_spd(n, &mut r);
        g.throughput(Throughput::Elements((n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter_batched(
                || a.clone(),
                |mut m| {
                    chol::potrf(n, m.as_mut_slice(), n).unwrap();
                    black_box(m.as_slice()[0])
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_partial_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_potrf_front");
    times(&mut g);
    // A representative front: order 320, eliminate 128 pivots.
    let (f, w) = (320usize, 128usize);
    let mut r = det_rng(7);
    let a = DMat::random_spd(f, &mut r);
    // Pivot block n²w/3-ish plus trailing update: count the exact partial
    // factorization flops so the rate is comparable to the other groups.
    let flops = (w * w * w) / 3 + w * w * (f - w) + w * (f - w) * (f - w);
    g.throughput(Throughput::Elements(flops as u64));
    g.bench_function("f320_w128", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut m| {
                chol::partial_potrf(f, w, m.as_mut_slice(), f).unwrap();
                black_box(m.as_slice()[0])
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_naive,
    bench_syrk,
    bench_syrk_naive,
    bench_potrf,
    bench_partial_potrf
);
criterion_main!(benches);
