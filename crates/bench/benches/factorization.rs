//! Benchmarks of the numeric factorization engines (wall clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfact_core::smp::SmpOpts;
use parfact_core::solver::{Engine, FactorOpts, SparseCholesky};
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::gen;
use std::hint::black_box;
use std::time::Duration;

fn problems() -> Vec<(&'static str, CscMatrix)> {
    vec![
        (
            "lap2d-80",
            gen::laplace2d(80, 80, gen::Stencil2d::FivePoint),
        ),
        (
            "lap3d-14",
            gen::laplace3d(14, 14, 14, gen::Stencil3d::SevenPoint),
        ),
        ("elas-8", gen::elasticity3d(8, 8, 8)),
    ]
}

fn bench_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorize_seq");
    g.measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(10);
    for (name, a) in problems() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                let chol = SparseCholesky::factorize(a, &FactorOpts::default()).unwrap();
                black_box(chol.factor_nnz())
            })
        });
    }
    g.finish();
}

fn bench_smp(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group(format!("factorize_smp_{threads}t"));
    g.measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(10);
    let opts = FactorOpts::new().engine(Engine::Smp(SmpOpts {
        threads,
        ..SmpOpts::default()
    }));
    for (name, a) in problems() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                let chol = SparseCholesky::factorize(a, &opts).unwrap();
                black_box(chol.factor_nnz())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seq, bench_smp);
criterion_main!(benches);
