//! Benchmarks of the fill-reducing orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfact_order::{order_graph, Method};
use parfact_sparse::gen;
use parfact_sparse::graph::AdjGraph;
use std::hint::black_box;
use std::time::Duration;

fn bench_orderings(c: &mut Criterion) {
    let problems = vec![
        (
            "lap2d-64",
            AdjGraph::from_sym_lower(&gen::laplace2d(64, 64, gen::Stencil2d::FivePoint)),
        ),
        (
            "lap3d-12",
            AdjGraph::from_sym_lower(&gen::laplace3d(12, 12, 12, gen::Stencil3d::SevenPoint)),
        ),
        ("rmat-10", gen::rmat_graph(10, 8, 42)),
    ];
    for (mname, method) in [
        ("rcm", Method::Rcm),
        ("mindeg", Method::MinDegree),
        ("nd", Method::default()),
    ] {
        let mut g = c.benchmark_group(format!("order_{mname}"));
        g.measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_secs(1))
            .sample_size(10);
        for (pname, graph) in &problems {
            g.bench_with_input(BenchmarkId::from_parameter(pname), graph, |bench, gr| {
                bench.iter(|| black_box(order_graph(gr, method).len()))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
