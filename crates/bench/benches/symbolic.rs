//! Benchmarks of the symbolic-analysis pipeline and its pieces.

use criterion::{criterion_group, criterion_main, Criterion};
use parfact_order::{order_matrix, Method};
use parfact_sparse::gen;
use parfact_sparse::perm::Perm;
use parfact_symbolic::{analyze, colcount, etree, AmalgOpts};
use std::hint::black_box;
use std::time::Duration;

fn bench_symbolic(c: &mut Criterion) {
    let a0 = gen::laplace3d(16, 16, 16, gen::Stencil3d::SevenPoint);
    let fill = order_matrix(&a0, Method::default());
    let a = fill.apply_sym_lower(&a0);

    let mut g = c.benchmark_group("symbolic");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);

    g.bench_function("etree_lap3d16", |b| {
        b.iter(|| black_box(etree::etree(&a).len()))
    });

    let parent0 = etree::etree(&a);
    let post = Perm::from_vec(etree::postorder(&parent0));
    let ap = post.apply_sym_lower(&a);
    let parent = etree::relabel(&parent0, &post);
    g.bench_function("colcounts_lap3d16", |b| {
        b.iter(|| black_box(colcount::col_counts(&ap, &parent)[0]))
    });

    g.bench_function("analyze_full_lap3d16", |b| {
        b.iter(|| black_box(analyze(&a, &AmalgOpts::default()).0.nsuper()))
    });
    g.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
