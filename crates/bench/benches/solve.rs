//! Benchmarks of SpMV and the triangular-solve phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfact_core::solver::{FactorOpts, SparseCholesky};
use parfact_sparse::gen;
use std::hint::black_box;
use std::time::Duration;

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("sym_spmv");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for &dim in &[64usize, 160] {
        let a = gen::laplace2d(dim, dim, gen::Stencil2d::FivePoint);
        let x = vec![1.0; a.nrows()];
        let mut y = vec![0.0; a.nrows()];
        g.bench_with_input(BenchmarkId::from_parameter(dim * dim), &a, |b, a| {
            b.iter(|| {
                a.sym_spmv(&x, &mut y);
                black_box(y[0])
            })
        });
    }
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("triangular_solve");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    for (name, a) in [
        (
            "lap2d-80",
            gen::laplace2d(80, 80, gen::Stencil2d::FivePoint),
        ),
        (
            "lap3d-12",
            gen::laplace3d(12, 12, 12, gen::Stencil3d::SevenPoint),
        ),
    ] {
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let b = vec![1.0; a.nrows()];
        g.bench_with_input(BenchmarkId::from_parameter(name), &chol, |bench, chol| {
            bench.iter(|| black_box(chol.solve(&b)[0]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_solve);
criterion_main!(benches);
