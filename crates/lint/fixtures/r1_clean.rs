// lint-fixture-path: crates/core/src/dist/demo.rs
// Clean: virtual clocks only, plus a comment mention (comments never
// fire) — no Instant::now() in code.

fn advance(clock: &mut f64, dt: f64) {
    // A rank's Instant::now() equivalent is its virtual clock.
    *clock += dt;
}
