// lint-fixture-path: crates/order/src/demo.rs
// Seeded violation: an entropy-seeded RNG. A partitioner seeded from the
// OS produces a different ordering — and a different factorization
// schedule — on every run.

fn pick_pivot(n: usize) -> usize {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..n)
}
