// lint-fixture-path: crates/dense/src/demo.rs
// Clean: separate multiply-then-add, the contract's accumulation shape.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}
