// lint-fixture-path: crates/core/src/dist/demo.rs
// Seeded violation: iterating a HashMap in a message-send path. The
// iteration order is seeded per process, so the send order — and with it
// every downstream arrival time — differs run to run.

use std::collections::HashMap;

fn flush(pending: HashMap<usize, Vec<f64>>, send: &mut dyn FnMut(usize, Vec<f64>)) {
    for (dst, buf) in pending.into_iter() {
        send(dst, buf);
    }
}
