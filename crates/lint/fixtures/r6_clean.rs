// lint-fixture-path: crates/order/src/demo.rs
// Clean: RNG seeded as a pure function of the input (the repo's
// FNV-over-vertex-ids convention from crates/order).

fn pick_pivot(seed: u64, n: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0..n)
}
