// lint-fixture-path: crates/core/src/dist/demo.rs
// Clean: tags routed through the centralized constructor, a named
// helper, and a named constant; plus a tag-valued variable (no literal).

fn exchange(rank: &mut Rank, peer: usize, s: usize, t_row: u64, payload: Vec<f64>) -> Vec<f64> {
    rank.send(peer, front::tag(s, PHASE_ROWCAST), payload);
    let a = rank.recv::<Vec<f64>>(peer, ext_tag(s));
    let _ = rank.recv::<Vec<f64>>(peer, t_row);
    rank.isend(peer, GATHER_TAG, a.clone());
    a
}
