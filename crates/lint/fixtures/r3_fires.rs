// lint-fixture-path: crates/core/src/demo.rs
// Seeded violation: an undocumented unsafe block. Every unsafe site must
// state the invariant that makes it sound.

fn write_cell(p: *mut f64) {
    unsafe {
        *p = 1.0;
    }
}
