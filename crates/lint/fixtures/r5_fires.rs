// lint-fixture-path: crates/core/src/dist/demo.rs
// Seeded violations: raw message tags at the send site — an integer
// literal and a bare `as u64` cast. Tags minted outside the centralized
// namespace can collide with engine phases as the protocol grows.

fn exchange(rank: &mut Rank, peer: usize, j: usize, payload: Vec<f64>) -> Vec<f64> {
    rank.send(peer, 42, payload);
    rank.recv::<Vec<f64>>(peer, j as u64)
}
