// lint-fixture-path: crates/core/src/demo.rs
// Clean: both accepted documentation forms — a `// SAFETY:` comment at
// the block and a `/// # Safety` doc section on an unsafe fn.

fn write_cell(p: *mut f64) {
    // SAFETY: caller guarantees `p` points at a live, exclusively-owned
    // f64 (see the FactorWriter contract).
    unsafe {
        *p = 1.0;
    }
}

/// # Safety
/// `p` must be valid for writes and not aliased.
unsafe fn write_raw(p: *mut f64) {
    // SAFETY: forwarded contract from the enclosing unsafe fn.
    unsafe { *p = 2.0 }
}
