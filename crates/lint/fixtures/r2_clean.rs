// lint-fixture-path: crates/core/src/dist/demo.rs
// Clean: the sorted-drain idiom (collect + sort before acting) and
// keyed access, which is order-free by construction.

use std::collections::HashMap;

fn flush(mut pending: HashMap<usize, Vec<f64>>, send: &mut dyn FnMut(usize, Vec<f64>)) {
    let mut items: Vec<(usize, Vec<f64>)> = pending.drain().collect();
    items.sort_unstable_by_key(|(dst, _)| *dst);
    for (dst, buf) in items {
        send(dst, buf);
    }
}

fn keyed(cache: &mut HashMap<usize, f64>) -> Option<f64> {
    cache.insert(7, 1.0);
    cache.remove(&3);
    cache.get(&7).copied()
}
