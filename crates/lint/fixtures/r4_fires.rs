// lint-fixture-path: crates/dense/src/demo.rs
// Seeded violation: FMA contraction in a dense kernel. `mul_add` rounds
// once where the contract's separate mul/add rounds twice, so an FMA
// path diverges bitwise from the portable path.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc = x.mul_add(*y, acc);
    }
    acc
}
