// lint-fixture-path: crates/core/src/dist/demo.rs
// Seeded violation: a host-clock read inside engine code. Virtual-time
// schedules must be a pure function of the input; wall time leaks host
// speed into the run.

use std::time::Instant;

fn schedule_deadline() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
