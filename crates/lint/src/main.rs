//! CLI for `parfact-lint`.
//!
//! ```text
//! parfact-lint [--root DIR] [--json FILE] [--deny-all] [--quiet]
//! ```
//!
//! Without `--root`, the nearest enclosing workspace root is used, so the
//! tool works from any directory inside the repo. `--deny-all` (the CI
//! mode) exits with status 2 when any unsuppressed finding — including a
//! malformed pragma — survives; the default report mode always exits 0.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: parfact-lint [--root DIR] [--json FILE] [--deny-all] [--quiet]");
                println!();
                println!("rules:");
                for (id, name) in parfact_lint::RULES {
                    println!("  {id}  {name}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("parfact-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| parfact_lint::walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("parfact-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match parfact_lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parfact-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        print!("{}", report.render_text());
    }
    if let Some(path) = json_out {
        let doc = report.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("parfact-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if deny_all && report.total_findings() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
