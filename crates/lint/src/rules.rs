//! The determinism & protocol rules, and the `lint:allow` pragma layer.
//!
//! Each rule is a line-level pattern matcher over the lexed code view (see
//! [`crate::lex`]); comments and string contents can never fire a rule.
//! Every rule is grounded in a concrete hazard for this codebase's
//! bitwise-determinism contract (seq ≡ smp ≡ dist, traced ≡ untraced,
//! recovered ≡ fault-free):
//!
//! * **R1 `host-clock`** — `Instant::now`/`SystemTime` outside the bench
//!   crate. Virtual-time code in `mpsim`/`dist` must never read wall
//!   time; the trace-collector epoch and the solver's phase timers are
//!   legitimate and carry `lint:allow(R1)` pragmas.
//! * **R2 `unordered-iter`** — iteration over `HashMap`/`HashSet`.
//!   Iteration order is seeded per-process, so any numeric accumulation
//!   or message emission driven by it differs run to run. Keyed access
//!   (`get`/`entry`/`remove`) is fine and never flagged. The sorted-drain
//!   idiom — collect into a `Vec` and `.sort*` it within two lines — is
//!   recognized and stays quiet; `BTreeMap` is the other compliant fix.
//! * **R3 `undocumented-unsafe`** — every `unsafe` must carry a
//!   `// SAFETY:` (or `/// # Safety`) justification within the five
//!   preceding lines or on the same line.
//! * **R4 `fma-contraction`** — no `mul_add`/FMA intrinsics or
//!   `f*_fast` intrinsics in `crates/dense`/`crates/core`. The per-entry
//!   determinism contract (see `parfact_dense::pack`) requires separate
//!   multiply-then-add so AVX and portable paths round identically.
//! * **R5 `raw-message-tag`** — in `crates/core/src/`, the tag argument
//!   of any mpsim message primitive must route through the centralized
//!   namespace (`dist::front::tag`) or a named `*_tag` helper/`TAG_*`
//!   constant — never a raw integer literal or bare `as u64` cast.
//! * **R6 `entropy-rng`** — no `thread_rng`/`from_entropy`/`OsRng`/
//!   `rand::random`: every RNG must be seeded from the input so repeated
//!   runs are reproducible.
//!
//! Suppression: `// lint:allow(R1) <reason>` on the offending line, or on
//! a comment line directly above it, moves the finding to the report's
//! `suppressed` list (the reason is the audit trail). A pragma without a
//! reason, or naming an unknown rule, is itself a finding (**P0**).

use crate::lex::{is_ident, lex, FileView};

/// `(id, short name)` for every rule, in report order.
pub const RULES: &[(&str, &str)] = &[
    ("R1", "host-clock"),
    ("R2", "unordered-iter"),
    ("R3", "undocumented-unsafe"),
    ("R4", "fma-contraction"),
    ("R5", "raw-message-tag"),
    ("R6", "entropy-rng"),
    ("P0", "bad-pragma"),
];

/// Short name for a rule id.
pub fn rule_name(id: &str) -> &'static str {
    RULES
        .iter()
        .find(|(rid, _)| *rid == id)
        .map(|(_, n)| *n)
        .unwrap_or("unknown")
}

/// One violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule id (`R1`…`R6`, `P0`).
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

/// A finding silenced by a `lint:allow` pragma, with its recorded reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// Lint results for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

/// A parsed `lint:allow(<rules>) reason` pragma.
struct Pragma {
    /// 0-based line the pragma comment sits on.
    line: usize,
    /// 0-based line of code the pragma applies to.
    target: usize,
    rules: Vec<String>,
    reason: String,
}

/// Lint one file's source text. `relpath` is the workspace-relative path
/// (`/`-separated); it selects which path-scoped rules apply.
pub fn lint_text(relpath: &str, text: &str) -> FileReport {
    let view = lex(text);
    let mut raw: Vec<Finding> = Vec::new();
    let (pragmas, mut pragma_findings) = collect_pragmas(&view);
    raw.append(&mut pragma_findings);

    rule_r1(relpath, &view, &mut raw);
    rule_r2(&view, &mut raw);
    rule_r3(&view, &mut raw);
    rule_r4(relpath, &view, &mut raw);
    rule_r5(relpath, &view, &mut raw);
    rule_r6(&view, &mut raw);

    // Partition through the pragma layer.
    let mut report = FileReport {
        path: relpath.to_string(),
        ..Default::default()
    };
    for f in raw {
        let hit = pragmas.iter().find(|p| {
            (p.target == f.line - 1 || p.line == f.line - 1) && p.rules.iter().any(|r| r == f.rule)
        });
        match hit {
            Some(p) => report.suppressed.push(Suppressed {
                finding: f,
                reason: p.reason.clone(),
            }),
            None => report.findings.push(f),
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (a.finding.line, a.finding.rule).cmp(&(b.finding.line, b.finding.rule)));
    report
}

/// Parse every `lint:allow(...)` pragma; malformed ones become P0
/// findings.
fn collect_pragmas(view: &FileView) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for (i, comment) in view.plain_comments.iter().enumerate() {
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else {
                findings.push(Finding {
                    rule: "P0",
                    line: i + 1,
                    message: "unclosed lint:allow pragma".to_string(),
                });
                break;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let reason = after[close + 1..].trim().to_string();
            let bad: Vec<&String> = rules
                .iter()
                .filter(|r| !RULES.iter().any(|(id, _)| id == r) || *r == "P0")
                .collect();
            if rules.is_empty() || !bad.is_empty() {
                findings.push(Finding {
                    rule: "P0",
                    line: i + 1,
                    message: format!(
                        "lint:allow pragma names no valid rule (got `{}`)",
                        after[..close].trim()
                    ),
                });
            } else if reason.is_empty() {
                findings.push(Finding {
                    rule: "P0",
                    line: i + 1,
                    message: "lint:allow pragma without a reason — the reason is the audit trail"
                        .to_string(),
                });
            } else {
                // Target: this line if it carries code, else the next
                // line that does.
                let target = if view.has_code(i) {
                    i
                } else {
                    (i + 1..view.nlines())
                        .find(|&j| view.has_code(j))
                        .unwrap_or(i)
                };
                pragmas.push(Pragma {
                    line: i,
                    target,
                    rules,
                    reason,
                });
            }
            rest = &after[close + 1..];
        }
    }
    (pragmas, findings)
}

/// True when `needle` occurs in `hay` delimited by non-identifier chars.
fn has_token(hay: &str, needle: &str) -> bool {
    token_pos(hay, needle, 0).is_some()
}

/// Find `needle` at or after `from`, delimited by non-identifier chars.
fn token_pos(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(rel) = hay.get(start..).and_then(|h| h.find(needle)) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1] as char);
        let after = pos + needle.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after] as char);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

// ---------------------------------------------------------------- R1

fn rule_r1(relpath: &str, view: &FileView, out: &mut Vec<Finding>) {
    // Bench binaries and examples measure wall time by design.
    if relpath.starts_with("crates/bench/") || relpath.starts_with("examples/") {
        return;
    }
    for (i, line) in view.code.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime"] {
            if line.contains(pat) {
                out.push(Finding {
                    rule: "R1",
                    line: i + 1,
                    message: format!(
                        "host clock read (`{pat}`): virtual-time code must not read wall time; \
                         legitimate timers need `// lint:allow(R1) <reason>`"
                    ),
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------- R2

/// Iterator-producing methods whose order is the map's internal order.
const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_keys()",
    "into_values()",
    "into_iter()",
    "drain(",
    "retain(",
];

fn rule_r2(view: &FileView, out: &mut Vec<Finding>) {
    let names = hash_bindings(&view.code);
    if names.is_empty() {
        return;
    }
    for (i, line) in view.code.iter().enumerate() {
        let mut hit: Option<&str> = None;
        for name in &names {
            // `name.iter()` / `name.drain()` / … anywhere on the line.
            let mut from = 0;
            while let Some(pos) = token_pos(line, name, from) {
                let after = &line[pos + name.len()..];
                if let Some(meth) = after.strip_prefix('.') {
                    if ITER_METHODS.iter().any(|m| meth.starts_with(m)) {
                        hit = Some(name);
                    }
                }
                from = pos + 1;
            }
            // `for … in …name…` loop headers.
            if hit.is_none() && line.contains("for ") {
                if let Some(pos) = line.find(" in ") {
                    if has_token(&line[pos + 4..], name) {
                        hit = Some(name);
                    }
                }
            }
            if hit.is_some() {
                break;
            }
        }
        if let Some(name) = hit {
            // Sorted-drain idiom: the collected Vec is sorted within the
            // next two lines, so the order is canonical after all.
            let sorted = (i..view.nlines().min(i + 3)).any(|j| view.code[j].contains(".sort"));
            if !sorted {
                out.push(Finding {
                    rule: "R2",
                    line: i + 1,
                    message: format!(
                        "iteration over unordered `{name}` — order is seeded per process; \
                         drain through a sorted Vec, switch to BTreeMap, or justify with \
                         `// lint:allow(R2) <reason>`"
                    ),
                });
            }
        }
    }
}

/// Names bound (let bindings or struct fields) to `HashMap`/`HashSet`
/// types anywhere in the file.
fn hash_bindings(code: &[String]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in code {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = token_pos(line, ty, from) {
                from = pos + 1;
                if let Some(name) = binding_before(line, pos) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Extract the binding name to the left of a `HashMap`/`HashSet` mention:
/// `let [mut] NAME: HashMap<…>`, `NAME: std::collections::HashMap<…>`
/// (struct field), or `let [mut] NAME = HashMap::new()`.
fn binding_before(line: &str, ty_pos: usize) -> Option<String> {
    let before = line[..ty_pos].trim_end();
    // Strip a fully-qualified path prefix.
    let before = before
        .strip_suffix("std::collections::")
        .or_else(|| before.strip_suffix("collections::"))
        .unwrap_or(before)
        .trim_end();
    // `… NAME :` (type ascription / struct field) or `… NAME =` (init).
    let before = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))?;
    let before = before.strip_suffix(':').unwrap_or(before).trim_end();
    let name_end = before.len();
    let name_start = before
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(p, _)| p)?;
    let name = &before[name_start..name_end];
    (!name.is_empty() && !name.chars().next().unwrap().is_ascii_digit()).then(|| name.to_string())
}

// ---------------------------------------------------------------- R3

fn rule_r3(view: &FileView, out: &mut Vec<Finding>) {
    for (i, line) in view.code.iter().enumerate() {
        if !has_token(line, "unsafe") {
            continue;
        }
        // Documented when SAFETY (or a `# Safety` doc section) appears in
        // a comment on this line or within the five lines above.
        let lo = i.saturating_sub(5);
        let documented = (lo..=i).any(|j| {
            let c = &view.comments[j];
            c.contains("SAFETY") || c.contains("# Safety")
        });
        if !documented {
            out.push(Finding {
                rule: "R3",
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` justification on the line or within \
                          the 5 preceding lines"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------- R4

const FMA_PATTERNS: &[&str] = &[
    "mul_add",
    "fmadd",
    "fmsub",
    "fnmadd",
    "fadd_fast",
    "fmul_fast",
    "fsub_fast",
    "fdiv_fast",
];

fn rule_r4(relpath: &str, view: &FileView, out: &mut Vec<Finding>) {
    if !(relpath.starts_with("crates/dense/") || relpath.starts_with("crates/core/")) {
        return;
    }
    for (i, line) in view.code.iter().enumerate() {
        if let Some(pat) = FMA_PATTERNS.iter().find(|p| line.contains(**p)) {
            out.push(Finding {
                rule: "R4",
                line: i + 1,
                message: format!(
                    "`{pat}` fuses the multiply-add rounding step — kernels must keep separate \
                     mul/add so AVX and portable paths stay bitwise identical"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- R5

/// mpsim message primitives whose second argument is the tag.
const MSG_PRIMITIVES: &[&str] = &[
    ".send(",
    ".send::<",
    ".isend(",
    ".isend::<",
    ".recv(",
    ".recv::<",
    ".try_recv(",
    ".try_recv::<",
    ".probe(",
    ".recv_deadline(",
    ".ibcast(",
    ".ibcast::<",
];

fn rule_r5(relpath: &str, view: &FileView, out: &mut Vec<Finding>) {
    if !relpath.starts_with("crates/core/src/") || relpath.ends_with("dist/front.rs") {
        return;
    }
    for (i, line) in view.code.iter().enumerate() {
        let mut seen_args_at: Vec<(usize, usize)> = Vec::new();
        for prim in MSG_PRIMITIVES {
            let mut from = 0;
            while let Some(rel) = line.get(from..).and_then(|l| l.find(prim)) {
                let pos = from + rel;
                from = pos + 1;
                // Land on the argument-list `(`: directly at the match's
                // paren, or after the turbofish's matching `>`.
                let args_open = if prim.ends_with("::<") {
                    match_turbofish(view, i, pos + prim.len())
                } else {
                    Some((i, pos + prim.len() - 1))
                };
                let Some((open_line, open_col)) = args_open else {
                    continue;
                };
                if seen_args_at.contains(&(open_line, open_col)) {
                    continue;
                }
                seen_args_at.push((open_line, open_col));
                let Some(args) = top_level_args(view, open_line, open_col) else {
                    continue;
                };
                let Some(tag_arg) = args.get(1) else {
                    continue;
                };
                if tag_is_raw(tag_arg) {
                    out.push(Finding {
                        rule: "R5",
                        line: i + 1,
                        message: format!(
                            "raw message tag `{}` outside the centralized namespace — route \
                             through `dist::front::tag` or a named `*_tag` helper / `TAG_*` \
                             constant",
                            tag_arg.trim()
                        ),
                    });
                }
            }
        }
    }
}

/// A tag expression is raw when it contains a standalone integer literal
/// or a bare unsigned cast, and references no named tag helper/constant.
fn tag_is_raw(arg: &str) -> bool {
    if arg.contains("tag") || arg.chars().any(|c| c.is_ascii_uppercase()) {
        return false;
    }
    has_integer_literal(arg) || arg.contains(" as u")
}

/// True when `s` contains a digit run not embedded in an identifier.
fn has_integer_literal(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            if i == 0 || !is_ident(b[i - 1] as char) {
                return true;
            }
            // Skip the rest of this identifier/number.
            while i < b.len() && is_ident(b[i] as char) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    false
}

/// From the char after `::<` at (`line`, `col`), scan past the matching
/// `>` and return the position of the `(` that follows.
fn match_turbofish(view: &FileView, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 1i32;
    let (mut l, mut c) = (line, col);
    for _ in 0..2000 {
        let bytes = view.code.get(l)?.as_bytes();
        if c >= bytes.len() {
            l += 1;
            c = 0;
            continue;
        }
        match bytes[c] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    // Expect `(` next (possibly after whitespace).
                    let mut cc = c + 1;
                    loop {
                        let lb = view.code.get(l)?.as_bytes();
                        if cc >= lb.len() {
                            return None;
                        }
                        match lb[cc] {
                            b'(' => return Some((l, cc)),
                            b' ' | b'\t' => cc += 1,
                            _ => return None,
                        }
                    }
                }
            }
            _ => {}
        }
        c += 1;
    }
    None
}

/// Collect the top-level comma-separated arguments of the call whose `(`
/// sits at (`line`, `col`), scanning across up to 12 lines.
fn top_level_args(view: &FileView, line: usize, col: usize) -> Option<Vec<String>> {
    let mut args = vec![String::new()];
    let mut depth = 0i32;
    let (mut l, mut c) = (line, col);
    loop {
        if l > line + 12 {
            return None;
        }
        let bytes = view.code.get(l)?.as_bytes();
        if c >= bytes.len() {
            l += 1;
            c = 0;
            args.last_mut().unwrap().push(' ');
            continue;
        }
        let ch = bytes[c] as char;
        match ch {
            '(' | '[' | '{' => {
                depth += 1;
                if depth > 1 {
                    args.last_mut().unwrap().push(ch);
                }
            }
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(args);
                }
                args.last_mut().unwrap().push(ch);
            }
            ',' if depth == 1 => args.push(String::new()),
            _ => args.last_mut().unwrap().push(ch),
        }
        c += 1;
    }
}

// ---------------------------------------------------------------- R6

const ENTROPY_PATTERNS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "rand::random",
    "getrandom",
];

fn rule_r6(view: &FileView, out: &mut Vec<Finding>) {
    for (i, line) in view.code.iter().enumerate() {
        if let Some(pat) = ENTROPY_PATTERNS.iter().find(|p| line.contains(**p)) {
            out.push(Finding {
                rule: "R6",
                line: i + 1,
                message: format!(
                    "entropy-seeded RNG (`{pat}`): every RNG must be seeded from the input so \
                     repeated runs are bitwise reproducible"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_text(path, src)
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn r1_fires_and_respects_bench_scope() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(findings("crates/core/src/x.rs", src), vec![("R1", 1)]);
        assert!(findings("crates/bench/src/bin/b.rs", src).is_empty());
        // Comment mentions never fire.
        assert!(findings("crates/core/src/x.rs", "// no Instant::now() here\n").is_empty());
    }

    #[test]
    fn r2_tracks_bindings_and_sorted_drain() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut cache: HashMap<usize, f64> = HashMap::new();\n    for (k, v) in &cache { use_it(k, v); }\n}\n";
        assert_eq!(findings("crates/core/src/x.rs", src), vec![("R2", 4)]);
        let sorted = "fn f(cache: HashMap<usize, f64>) {\n    let mut items: Vec<_> = cache.into_iter().collect();\n    items.sort_unstable_by_key(|(k, _)| *k);\n}\n";
        assert!(findings("crates/core/src/x.rs", sorted).is_empty());
        // Keyed access is always fine.
        let keyed = "fn f(m: &mut HashMap<usize, f64>) { m.insert(1, 2.0); let _ = m.get(&1); m.remove(&1); }\n";
        assert!(findings("crates/core/src/x.rs", keyed).is_empty());
    }

    #[test]
    fn r3_accepts_safety_within_five_lines() {
        let bad = "fn f(p: *mut f64) { unsafe { *p = 0.0 }; }\n";
        assert_eq!(findings("crates/core/src/x.rs", bad), vec![("R3", 1)]);
        let good = "// SAFETY: caller guarantees p is valid.\nfn f(p: *mut f64) { unsafe { *p = 0.0 }; }\n";
        assert!(findings("crates/core/src/x.rs", good).is_empty());
        let doc = "/// # Safety\n/// p must be valid.\nunsafe fn f(p: *mut f64) {}\n";
        assert!(findings("crates/core/src/x.rs", doc).is_empty());
    }

    #[test]
    fn r4_scoped_to_kernel_crates() {
        let src = "fn f(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }\n";
        assert_eq!(findings("crates/dense/src/x.rs", src), vec![("R4", 1)]);
        assert!(findings("crates/trace/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_tag_position_analysis() {
        let raw = "fn f(rank: &mut Rank) { rank.send(0, 42, payload); }\n";
        assert_eq!(findings("crates/core/src/dist/x.rs", raw), vec![("R5", 1)]);
        let cast = "fn f(rank: &mut Rank, j: usize) { rank.recv::<(Vec<usize>, Vec<f64>)>(0, j as u64); }\n";
        assert_eq!(
            findings("crates/core/src/baseline/x.rs", cast),
            vec![("R5", 1)]
        );
        let named =
            "fn f(rank: &mut Rank, s: usize) { rank.isend(1, front::tag(s, PHASE_L11), p); }\n";
        assert!(findings("crates/core/src/dist/x.rs", named).is_empty());
        let var = "fn f(rank: &mut Rank, t_l11: u64) { let m = rank.recv::<Panel>(0, t_l11); }\n";
        assert!(findings("crates/core/src/dist/x.rs", var).is_empty());
        // front.rs itself is the namespace.
        assert!(findings("crates/core/src/dist/front.rs", raw).is_empty());
        // Out of scope: mpsim's own tests exercise the raw layer.
        assert!(findings("crates/mpsim/src/lib.rs", raw).is_empty());
    }

    #[test]
    fn r6_fires_on_entropy_rngs() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(findings("crates/order/src/x.rs", src), vec![("R6", 1)]);
    }

    #[test]
    fn pragmas_suppress_with_reason_and_audit() {
        let src = "// lint:allow(R1) phase timer: measures real host work, never virtual time\nlet t = Instant::now();\n";
        let rep = lint_text("crates/core/src/x.rs", src);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.suppressed.len(), 1);
        assert!(rep.suppressed[0].reason.contains("phase timer"));
        // Trailing form.
        let src = "let t = Instant::now(); // lint:allow(R1) epoch for trace timestamps\n";
        let rep = lint_text("crates/core/src/x.rs", src);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.suppressed.len(), 1);
    }

    #[test]
    fn bad_pragmas_are_findings() {
        let no_reason = "let t = Instant::now(); // lint:allow(R1)\n";
        let rep = lint_text("crates/core/src/x.rs", no_reason);
        assert!(rep.findings.iter().any(|f| f.rule == "P0"));
        // The R1 finding still stands: a malformed pragma suppresses nothing.
        assert!(rep.findings.iter().any(|f| f.rule == "R1"));
        let unknown = "let t = Instant::now(); // lint:allow(R9) because\n";
        let rep = lint_text("crates/core/src/x.rs", unknown);
        assert!(rep.findings.iter().any(|f| f.rule == "P0"));
    }
}
