//! `parfact-lint` — determinism & protocol static analysis for this
//! workspace.
//!
//! Every engine in this repo carries a bitwise-determinism contract
//! (seq ≡ smp ≡ dist, traced ≡ untraced, recovered ≡ fault-free). The
//! parity tests enforce it dynamically; this crate enforces the code
//! shapes that *break* it statically, at CI time, before any schedule
//! executes. See [`rules`] for the rule catalogue (R1–R6) and the
//! `lint:allow` pragma convention, [`lex`] for the comment/string-aware
//! line lexer, and [`report`] for the JSON report format.
//!
//! Zero external dependencies (the JSON writer is
//! `parfact_trace::json`, the same hand-rolled layer the solver reports
//! use). Run it with:
//!
//! ```text
//! cargo run -p parfact-lint -- --deny-all
//! ```

pub mod lex;
pub mod report;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use report::Report;
pub use rules::{lint_text, FileReport, Finding, Suppressed, RULES};

/// Lint every workspace `.rs` file under `root`.
pub fn lint_tree(root: &Path) -> std::io::Result<Report> {
    let files = walk::workspace_files(root)?;
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: files.len(),
        files: Vec::new(),
    };
    for (rel, abs) in files {
        let text = std::fs::read_to_string(&abs)?;
        let fr = rules::lint_text(&rel, &text);
        if !fr.findings.is_empty() || !fr.suppressed.is_empty() {
            report.files.push(fr);
        }
    }
    Ok(report)
}
