//! Deterministic workspace walker.
//!
//! Hand-rolled recursive `read_dir` with sorted entries, so findings come
//! out in a stable order on every run and every host. Skipped subtrees:
//!
//! * `target/` — build products;
//! * `third_party/` — vendored offline stand-ins, not our contract;
//! * `.git/` and other dot-directories;
//! * `crates/lint/fixtures/` — seeded-violation fixtures that exist to
//!   fire the rules.

use std::fs;
use std::path::{Path, PathBuf};

/// Collect every workspace `.rs` file under `root`, sorted by relative
/// path. Returns `(relative-path-with-/-separators, absolute-path)`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if name == "target" || name == "third_party" || name.starts_with('.') {
                continue;
            }
            let rel = rel_path(root, &path);
            if rel == "crates/lint/fixtures" {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push((rel_path(root, &path), path));
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
