//! Aggregated lint results and the machine-readable JSON report.
//!
//! The JSON document goes through `parfact_trace::json` (the same
//! hand-rolled writer the solver reports use), so CI tooling that already
//! parses `FactorReport` documents needs nothing new.

use crate::rules::{rule_name, FileReport, RULES};
use parfact_trace::json::Json;

/// Lint results for a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Root the scan ran from (as given, for reproducible output).
    pub root: String,
    pub files_scanned: usize,
    /// Per-file results, in walk (sorted-path) order; files with neither
    /// findings nor suppressions are omitted.
    pub files: Vec<FileReport>,
}

impl Report {
    /// Total unsuppressed findings.
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    /// Total pragma-suppressed findings.
    pub fn total_suppressed(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }

    /// Unsuppressed findings for one rule id.
    pub fn count(&self, rule: &str) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.findings)
            .filter(|f| f.rule == rule)
            .count()
    }

    /// Human-readable listing: one `file:line: RULE(name) — message` per
    /// finding, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            for f in &file.findings {
                out.push_str(&format!(
                    "{}:{}: {}({}) — {}\n",
                    file.path,
                    f.line,
                    f.rule,
                    rule_name(f.rule),
                    f.message
                ));
            }
        }
        out.push_str(&format!(
            "parfact-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.total_findings(),
            self.total_suppressed(),
            self.files_scanned
        ));
        out
    }

    /// The machine-readable report document.
    pub fn to_json(&self) -> Json {
        let findings: Vec<Json> = self
            .files
            .iter()
            .flat_map(|file| {
                file.findings.iter().map(|f| {
                    Json::Obj(vec![
                        ("rule".into(), Json::str(f.rule)),
                        ("name".into(), Json::str(rule_name(f.rule))),
                        ("file".into(), Json::str(&file.path)),
                        ("line".into(), Json::num_usize(f.line)),
                        ("message".into(), Json::str(&f.message)),
                    ])
                })
            })
            .collect();
        let suppressed: Vec<Json> = self
            .files
            .iter()
            .flat_map(|file| {
                file.suppressed.iter().map(|s| {
                    Json::Obj(vec![
                        ("rule".into(), Json::str(s.finding.rule)),
                        ("file".into(), Json::str(&file.path)),
                        ("line".into(), Json::num_usize(s.finding.line)),
                        ("reason".into(), Json::str(&s.reason)),
                    ])
                })
            })
            .collect();
        let mut counts: Vec<(String, Json)> = RULES
            .iter()
            .map(|(id, _)| (id.to_string(), Json::num_usize(self.count(id))))
            .collect();
        counts.push(("total".into(), Json::num_usize(self.total_findings())));
        Json::Obj(vec![
            ("tool".into(), Json::str("parfact-lint")),
            (
                "rules".into(),
                Json::Arr(
                    RULES
                        .iter()
                        .map(|(id, name)| {
                            Json::Obj(vec![
                                ("id".into(), Json::str(id)),
                                ("name".into(), Json::str(name)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("root".into(), Json::str(&self.root)),
            ("files_scanned".into(), Json::num_usize(self.files_scanned)),
            ("findings".into(), Json::Arr(findings)),
            ("suppressed".into(), Json::Arr(suppressed)),
            ("counts".into(), Json::Obj(counts)),
        ])
    }
}
