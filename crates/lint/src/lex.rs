//! A minimal Rust surface lexer: splits a source file into per-line *code*
//! text and per-line *comment* text.
//!
//! The rules in this crate are line-level pattern matchers, so the only
//! lexical structure they need is "which bytes are code and which are
//! not". The lexer therefore blanks out (replaces with spaces) the
//! contents of string literals, raw strings, byte strings, and char
//! literals inside the code view — a pattern like `Instant::now` inside a
//! doc string or an error message must never fire a rule — and collects
//! comment text separately so the SAFETY-comment rule and the
//! `lint:allow` pragma parser can see it. Column positions are preserved
//! by the blanking so findings can cite real lines.
//!
//! Handled: `//` line comments (incl. `///` and `//!` doc comments),
//! nested `/* */` block comments, `"…"` strings with escapes, `r"…"` /
//! `r#"…"#` raw strings (and `b`/`br` byte variants), char literals
//! (escaped and plain), and lifetimes (`'a` is code, not an unterminated
//! char literal).

/// Per-line views of one source file.
#[derive(Debug, Default)]
pub struct FileView {
    /// Code text per line; string/char literal contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (comment markers stripped); empty when the
    /// line carries no comment.
    pub comments: Vec<String>,
    /// Non-doc comment text per line. `lint:allow` pragmas are only read
    /// from here, so rustdoc prose *describing* the pragma convention
    /// (`///`/`//!`/`/** */`) can never suppress anything.
    pub plain_comments: Vec<String>,
}

impl FileView {
    /// Number of lines (code and comment vectors always agree).
    pub fn nlines(&self) -> usize {
        self.code.len()
    }

    /// True when line `i` (0-based) has any non-whitespace code.
    pub fn has_code(&self, i: usize) -> bool {
        self.code.get(i).is_some_and(|l| !l.trim().is_empty())
    }
}

#[derive(PartialEq)]
enum St {
    Code,
    LineComment {
        doc: bool,
    },
    /// Nested block comment depth.
    BlockComment {
        depth: u32,
        doc: bool,
    },
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Lex `text` into per-line code/comment views.
pub fn lex(text: &str) -> FileView {
    let chars: Vec<char> = text.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut plain = vec![String::new()];
    let mut st = St::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(st, St::LineComment { .. }) {
                st = St::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            plain.push(String::new());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                    st = St::LineComment { doc };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    let doc = matches!(chars.get(i + 2), Some(&'*') | Some(&'!'))
                        && chars.get(i + 3) != Some(&'/');
                    st = St::BlockComment { depth: 1, doc };
                    i += 2;
                } else if let Some((hashes, quote)) = raw_string_at(&chars, i) {
                    // Emit the `r`/`br` prefix, hashes, and opening quote
                    // as code, then blank the contents.
                    for &p in &chars[i..=quote] {
                        code.last_mut().unwrap().push(p);
                    }
                    i = quote + 1;
                    st = St::RawStr(hashes);
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    st = St::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.last_mut().unwrap().push('\'');
                        for _ in i + 1..end {
                            code.last_mut().unwrap().push(' ');
                        }
                        code.last_mut().unwrap().push('\'');
                        i = end + 1;
                    } else {
                        // Lifetime: keep the tick as code.
                        code.last_mut().unwrap().push('\'');
                        i += 1;
                    }
                } else {
                    code.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            St::LineComment { doc } => {
                comments.last_mut().unwrap().push(c);
                if !doc {
                    plain.last_mut().unwrap().push(c);
                }
                i += 1;
            }
            St::BlockComment { depth, doc } => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment {
                            depth: depth - 1,
                            doc,
                        }
                    };
                    i += 2;
                } else {
                    comments.last_mut().unwrap().push(c);
                    if !doc {
                        plain.last_mut().unwrap().push(c);
                    }
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code.last_mut().unwrap().push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.last_mut().unwrap().push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    code.last_mut().unwrap().push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.last_mut().unwrap().push('"');
                    for _ in 0..hashes {
                        code.last_mut().unwrap().push('#');
                    }
                    i += 1 + hashes as usize;
                    st = St::Code;
                } else {
                    code.last_mut().unwrap().push(' ');
                    i += 1;
                }
            }
        }
    }
    FileView {
        code,
        comments,
        plain_comments: plain,
    }
}

/// If a raw (byte) string literal starts at `i`, return its `#` count and
/// the index of the opening quote.
fn raw_string_at(chars: &[char], i: usize) -> Option<(u32, usize)> {
    // Must not be the tail of an identifier (`abr"x"` never lexes as a
    // raw string in Rust).
    if i > 0 && is_ident(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j))
}

/// True when the `"` at `i` is followed by `hashes` `#`s.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at the `'` at `i`, return the index of the
/// closing `'`; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the next unescaped quote (covers
            // `'\n'`, `'\''`, `'\u{1F600}'`).
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return Some(j),
                    '\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            // Plain char `'x'` closes two ahead; anything else (e.g. the
            // `'a` of a lifetime) is not a char literal.
            (chars.get(i + 2) == Some(&'\'')).then_some(i + 2)
        }
    }
}

/// Identifier-continue test shared by the rule matchers.
pub fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let v = lex("let x = 1; // Instant::now in a comment\n/* HashMap\n nested /* deep */ */ let y = 2;\n");
        assert!(v.code[0].contains("let x = 1;"));
        assert!(!v.code[0].contains("Instant"));
        assert!(v.comments[0].contains("Instant::now"));
        assert!(v.comments[1].contains("HashMap"));
        assert!(v.code[2].contains("let y = 2;"));
        assert!(!v.code[2].contains("deep"));
    }

    #[test]
    fn blanks_string_and_char_literals() {
        let v = lex("let s = \"Instant::now \\\" quoted\"; let c = 'x'; let t: &'static str = r#\"SystemTime\"#;");
        assert!(!v.code[0].contains("Instant"));
        assert!(!v.code[0].contains("SystemTime"));
        // Lifetimes survive as code.
        assert!(v.code[0].contains("&'static str"));
        // Quotes preserved so columns line up.
        assert!(v.code[0].contains('"'));
    }

    #[test]
    fn raw_strings_with_hashes_and_multiline() {
        let v = lex("let a = r##\"line1 \"# not closed\nline2 unsafe\"##; done();");
        assert!(!v.code[0].contains("line1"));
        assert!(!v.code[1].contains("unsafe"));
        assert!(v.code[1].contains("done();"));
    }

    #[test]
    fn escaped_char_literals() {
        let v = lex(r"let q = '\''; let nl = '\n'; call();");
        assert!(v.code[0].contains("call();"));
    }

    #[test]
    fn doc_comments_are_comments_but_not_pragma_carriers() {
        let v = lex("/// # Safety\n/// caller holds the lock\nunsafe fn f() {}\n");
        assert!(v.comments[0].contains("# Safety"));
        assert!(v.plain_comments[0].is_empty());
        assert!(v.code[2].contains("unsafe fn"));
        // Plain comments land in both views.
        let v = lex("// lint:allow(R1) reason\nlet x = 1;\n");
        assert!(v.comments[0].contains("lint:allow"));
        assert!(v.plain_comments[0].contains("lint:allow"));
        // `//!` module docs are doc comments too.
        let v = lex("//! docs mention lint:allow(R1) reason\n");
        assert!(v.plain_comments[0].is_empty());
    }
}
