//! Fixture-driven regression tests for the lint rules.
//!
//! Each fixture under `fixtures/` starts with a `// lint-fixture-path:`
//! directive naming the virtual workspace path to lint it under, so
//! path-scoped rules (R1's bench allowlist, R4's dense scope, R5's dist
//! scope) see the fixture where a real violation would live. `*_fires.rs`
//! must produce at least one finding for its rule; `*_clean.rs` must
//! produce none.

use parfact_lint::{lint_text, Report};
use std::path::Path;

/// Lint a fixture file under the virtual path named by its first-line
/// `// lint-fixture-path:` directive.
fn lint_fixture(name: &str) -> parfact_lint::FileReport {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let text = std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let first = text.lines().next().unwrap_or("");
    let virt = first
        .strip_prefix("// lint-fixture-path:")
        .unwrap_or_else(|| panic!("{name}: missing lint-fixture-path directive"))
        .trim();
    lint_text(virt, &text)
}

fn assert_fires(name: &str, rule: &str) {
    let rep = lint_fixture(name);
    assert!(
        rep.findings.iter().any(|f| f.rule == rule),
        "{name}: expected a {rule} finding, got {:?}",
        rep.findings
    );
    assert!(
        rep.findings.iter().all(|f| f.rule == rule),
        "{name}: expected only {rule} findings, got {:?}",
        rep.findings
    );
}

fn assert_clean(name: &str) {
    let rep = lint_fixture(name);
    assert!(
        rep.findings.is_empty(),
        "{name}: expected no findings, got {:?}",
        rep.findings
    );
    assert!(
        rep.suppressed.is_empty(),
        "{name}: clean fixtures must not rely on pragmas, got {:?}",
        rep.suppressed
            .iter()
            .map(|s| &s.finding)
            .collect::<Vec<_>>()
    );
}

#[test]
fn r1_host_clock_fixture_pair() {
    assert_fires("r1_fires.rs", "R1");
    assert_clean("r1_clean.rs");
}

#[test]
fn r2_unordered_iter_fixture_pair() {
    assert_fires("r2_fires.rs", "R2");
    assert_clean("r2_clean.rs");
}

#[test]
fn r3_undocumented_unsafe_fixture_pair() {
    assert_fires("r3_fires.rs", "R3");
    assert_clean("r3_clean.rs");
}

#[test]
fn r4_fma_fixture_pair() {
    assert_fires("r4_fires.rs", "R4");
    assert_clean("r4_clean.rs");
}

#[test]
fn r5_raw_tag_fixture_pair() {
    let rep = lint_fixture("r5_fires.rs");
    let r5: Vec<_> = rep.findings.iter().filter(|f| f.rule == "R5").collect();
    assert_eq!(
        r5.len(),
        2,
        "expected both the literal and the cast to fire: {:?}",
        rep.findings
    );
    assert_clean("r5_clean.rs");
}

#[test]
fn r6_entropy_rng_fixture_pair() {
    assert_fires("r6_fires.rs", "R6");
    assert_clean("r6_clean.rs");
}

/// Scoping sanity: the same source text that fires in scope is quiet when
/// placed where the rule does not apply (R4 outside dense, R1 in bench).
#[test]
fn path_scoping_gates_rules() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let r4 = std::fs::read_to_string(dir.join("r4_fires.rs")).unwrap();
    let rep = lint_text("crates/order/src/demo.rs", &r4);
    assert!(
        rep.findings.is_empty(),
        "R4 must not fire outside dense kernels: {:?}",
        rep.findings
    );

    let r1 = std::fs::read_to_string(dir.join("r1_fires.rs")).unwrap();
    let rep = lint_text("crates/bench/src/bin/demo.rs", &r1);
    assert!(
        rep.findings.is_empty(),
        "R1 must not fire in bench bins: {:?}",
        rep.findings
    );
}

/// Golden structure test for the JSON report: the machine-readable output
/// must round-trip through the workspace JSON parser and carry the keys
/// CI consumers rely on.
#[test]
fn json_report_structure() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let text = std::fs::read_to_string(dir.join("r1_fires.rs")).unwrap();
    let file = lint_text("crates/core/src/dist/demo.rs", &text);
    let report = Report {
        root: "/virtual".to_string(),
        files_scanned: 1,
        files: vec![file],
    };
    let json = report.to_json().to_string_pretty();
    let v = parfact_trace::json::parse(&json).expect("report JSON must parse");

    assert_eq!(v.get("tool").and_then(|t| t.as_str()), Some("parfact-lint"));
    assert_eq!(v.get("files_scanned").and_then(|n| n.as_f64()), Some(1.0));
    let rules = v
        .get("rules")
        .and_then(|r| r.as_arr())
        .expect("rules array");
    assert_eq!(rules.len(), 7, "R1..R6 plus P0");
    for r in rules {
        assert!(r.get("id").is_some() && r.get("name").is_some());
    }
    let findings = v
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        for key in ["rule", "name", "file", "line", "message"] {
            assert!(f.get(key).is_some(), "finding missing key {key}");
        }
    }
    let counts = v.get("counts").expect("counts object");
    assert_eq!(
        counts.get("R1").and_then(|n| n.as_f64()),
        Some(findings.len() as f64)
    );
    assert_eq!(
        counts.get("total").and_then(|n| n.as_f64()),
        Some(findings.len() as f64)
    );
}

/// The workspace itself must be lint-clean: the `--deny-all` CI gate is
/// pinned here so a regression fails `cargo test` too, not just the CI
/// lint job.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = parfact_lint::lint_tree(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "walker should see the whole workspace"
    );
    let mut msgs = Vec::new();
    for f in &report.files {
        for finding in &f.findings {
            msgs.push(format!(
                "{}:{}: {} — {}",
                f.path, finding.line, finding.rule, finding.message
            ));
        }
    }
    assert!(
        msgs.is_empty(),
        "workspace has lint findings:\n{}",
        msgs.join("\n")
    );
}
