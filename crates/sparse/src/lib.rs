//! Sparse-matrix substrate for `parfact`.
//!
//! This crate provides the data structures every other layer of the solver
//! stack is built on:
//!
//! - [`coo::CooMatrix`] — triplet form, the assembly/ingest format;
//! - [`csr::CsrMatrix`] / [`csc::CscMatrix`] — compressed row/column forms;
//! - [`perm::Perm`] — permutations and symmetric application `P A Pᵀ`;
//! - [`graph::AdjGraph`] — the adjacency-graph view consumed by orderings;
//! - [`gen`] — reproducible problem generators (grid Laplacians, a 3-D
//!   elasticity-style mesh generator, random SPD matrices, R-MAT graphs);
//! - [`io`] — Matrix Market reading/writing;
//! - [`ops`] — SpMV, residuals and norms.
//!
//! Symmetric matrices are stored as their **lower triangle** (diagonal
//! included) in CSC form throughout the solver stack, mirroring the
//! convention of classic sparse Cholesky codes.
// Index loops over parallel arrays (`for j in 0..n` touching several
// slices) are the deliberate idiom of this numerical code; clippy's
// iterator rewrites obscure the subscript math.
#![allow(clippy::needless_range_loop)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod gen;
pub mod graph;
pub mod io;
pub mod ops;
pub mod perm;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use graph::AdjGraph;
pub use perm::Perm;
