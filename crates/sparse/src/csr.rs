//! Compressed sparse row format.

use crate::csc::CscMatrix;

/// Sparse matrix in compressed sparse row form. Column indices within each
/// row are sorted ascending and unique.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Assemble from raw parts. Debug-asserts the CSR invariants; callers are
    /// internal conversion routines that construct valid arrays by design.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(indptr[0], 0);
        debug_assert_eq!(*indptr.last().unwrap(), indices.len());
        debug_assert_eq!(indices.len(), vals.len());
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..nrows).all(|r| {
            let row = &indices[indptr[r]..indptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.iter().all(|&c| c < ncols)
        }));
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            vals,
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, concatenated row by row.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Values, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// The column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.vals[lo..hi])
    }

    /// Value at `(r, c)` if stored (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            indptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            indptr[i + 1] += indptr[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        let mut next = indptr.clone();
        for r in 0..self.nrows {
            let (cols, v) = self.row(r);
            for (&c, &x) in cols.iter().zip(v) {
                let slot = next[c];
                indices[slot] = r;
                vals[slot] = x;
                next[c] += 1;
            }
        }
        // Row-major traversal emits each transposed row in ascending column
        // order, so the invariants hold by construction.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            vals,
        }
    }

    /// Convert to CSC (same matrix, column-compressed).
    pub fn to_csc(&self) -> CscMatrix {
        self.transpose().into_csc_of_transpose()
    }

    /// Reinterpret `self`, *which must be the CSR of Aᵀ*, as the CSC of `A`.
    /// Zero-copy: the arrays are moved, not rebuilt.
    pub fn into_csc_of_transpose(self) -> CscMatrix {
        CscMatrix::from_parts(self.ncols, self.nrows, self.indptr, self.indices, self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        let mut a = CooMatrix::new(2, 3);
        a.push(0, 0, 1.0);
        a.push(0, 2, 2.0);
        a.push(1, 1, 3.0);
        a.to_csr()
    }

    #[test]
    fn identity_roundtrip() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        i.spmv(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = vec![1.0, 10.0, 100.0];
        let mut y = vec![0.0; 2];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![201.0, 30.0]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_shape_and_entries() {
        let t = sample().transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(1, 1), Some(3.0));
        assert_eq!(t.get(0, 1), None);
    }

    #[test]
    fn csc_conversion_preserves_entries() {
        let a = sample();
        let c = a.to_csc();
        assert_eq!(c.get(0, 2), Some(2.0));
        assert_eq!(c.get(1, 1), Some(3.0));
        assert_eq!(c.nnz(), a.nnz());
    }
}
