//! Reproducible problem generators.
//!
//! The SC'09 evaluation ran on large structural-mechanics matrices (sheet
//! metal forming) and model PDE problems. Those industrial matrices are not
//! redistributable, so this module generates synthetic equivalents that
//! exercise the same solver behaviour (see DESIGN.md, "Substitutions"):
//!
//! - [`laplace2d`] / [`laplace3d`] — finite-difference Laplacians, the
//!   standard model problems for sparse direct-solver scaling studies;
//! - [`elasticity3d`] — a 3-D hexahedral-mesh, 3-dof-per-node, block-coupled
//!   SPD matrix shaped like a linear-elasticity stiffness matrix;
//! - [`random_spd`] — randomized diagonally-dominant SPD matrices;
//! - [`rmat_graph`] — power-law graphs for stress-testing orderings.
//!
//! All generators return the solver's symmetric-lower CSC convention and are
//! deterministic (seeded where randomized).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::graph::AdjGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stencil choice for [`laplace2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil2d {
    /// 4-neighbor coupling, diagonal 4.
    FivePoint,
    /// 8-neighbor coupling, diagonal 8.
    NinePoint,
}

/// Stencil choice for [`laplace3d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil3d {
    /// 6-neighbor coupling, diagonal 6.
    SevenPoint,
    /// 26-neighbor coupling, diagonal 26.
    TwentySevenPoint,
}

/// Tridiagonal `[-1, 2, -1]` matrix of order `n` (1-D Laplacian).
pub fn tridiagonal(n: usize) -> CscMatrix {
    let mut a = CooMatrix::with_capacity(n, n, 2 * n);
    for i in 0..n {
        a.push(i, i, 2.0);
        if i + 1 < n {
            a.push(i + 1, i, -1.0);
        }
    }
    a.to_csc()
}

/// Arrowhead matrix: dense first row/column plus diagonal. A classic
/// ordering stress test — eliminating the hub first causes total fill,
/// eliminating it last causes none.
pub fn arrowhead(n: usize) -> CscMatrix {
    let mut a = CooMatrix::with_capacity(n, n, 2 * n);
    a.push(0, 0, n as f64);
    for i in 1..n {
        a.push(i, i, 4.0);
        a.push(i, 0, -1.0);
    }
    a.to_csc()
}

/// 2-D grid Laplacian on an `nx x ny` grid, symmetric-lower CSC.
/// SPD (strictly diagonally dominant at the boundary).
pub fn laplace2d(nx: usize, ny: usize, stencil: Stencil2d) -> CscMatrix {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let id = |x: usize, y: usize| -> usize { x + nx * y };
    let (diag, offsets): (f64, &[(isize, isize)]) = match stencil {
        Stencil2d::FivePoint => (4.0, &[(-1, 0), (0, -1)]),
        Stencil2d::NinePoint => (8.0, &[(-1, 0), (0, -1), (-1, -1), (1, -1)]),
    };
    let mut a = CooMatrix::with_capacity(n, n, n * (1 + offsets.len()));
    for y in 0..ny {
        for x in 0..nx {
            let v = id(x, y);
            a.push(v, v, diag);
            for &(dx, dy) in offsets {
                let (ux, uy) = (x as isize + dx, y as isize + dy);
                if ux >= 0 && uy >= 0 && (ux as usize) < nx && (uy as usize) < ny {
                    let u = id(ux as usize, uy as usize);
                    // Offsets chosen so u < v; store at (v, u) = lower.
                    a.push(v.max(u), v.min(u), -1.0);
                }
            }
        }
    }
    a.to_csc()
}

/// 3-D grid Laplacian on an `nx x ny x nz` grid, symmetric-lower CSC.
pub fn laplace3d(nx: usize, ny: usize, nz: usize, stencil: Stencil3d) -> CscMatrix {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| -> usize { x + nx * (y + ny * z) };
    let mut offsets: Vec<(isize, isize, isize)> = Vec::new();
    match stencil {
        Stencil3d::SevenPoint => {
            offsets.extend_from_slice(&[(-1, 0, 0), (0, -1, 0), (0, 0, -1)]);
        }
        Stencil3d::TwentySevenPoint => {
            // All 13 "lexicographically negative" neighbors of the 27-point
            // stencil (so each undirected pair is generated exactly once).
            for dz in -1isize..=1 {
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        if (dz, dy, dx) < (0, 0, 0) {
                            offsets.push((dx, dy, dz));
                        }
                    }
                }
            }
        }
    }
    let diag = match stencil {
        Stencil3d::SevenPoint => 6.0,
        Stencil3d::TwentySevenPoint => 26.0,
    };
    let mut a = CooMatrix::with_capacity(n, n, n * (1 + offsets.len()));
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                a.push(v, v, diag);
                for &(dx, dy, dz) in &offsets {
                    let (ux, uy, uz) = (x as isize + dx, y as isize + dy, z as isize + dz);
                    if ux >= 0
                        && uy >= 0
                        && uz >= 0
                        && (ux as usize) < nx
                        && (uy as usize) < ny
                        && (uz as usize) < nz
                    {
                        let u = id(ux as usize, uy as usize, uz as usize);
                        a.push(v.max(u), v.min(u), -1.0);
                    }
                }
            }
        }
    }
    a.to_csc()
}

/// 3-D elasticity-style matrix: `nx x ny x nz` nodes, **3 dof per node**,
/// 27-point node connectivity, 3x3 coupling blocks
/// `-(w0 I + w1 d dᵀ/|d|²)` along the node-offset direction `d`, and a
/// compensating block-diagonal that keeps the matrix strictly block
/// diagonally dominant (hence SPD).
///
/// This mimics the structure that makes structural-mechanics matrices
/// interesting to a supernodal solver: multiple dof per node give dense
/// 3x3 blocks and rich supernodes, and the 3-D connectivity gives the
/// `O(n^{4/3})` factor growth of 3-D problems. Order is `3 * nx * ny * nz`.
pub fn elasticity3d(nx: usize, ny: usize, nz: usize) -> CscMatrix {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let nnode = nx * ny * nz;
    let n = 3 * nnode;
    let id = |x: usize, y: usize, z: usize| -> usize { x + nx * (y + ny * z) };
    let (w0, w1) = (1.0, 2.0);
    // Per-node running diagonal block (symmetric 3x3, lower storage).
    let mut diag = vec![[0.0f64; 6]; nnode]; // [d00,d10,d11,d20,d21,d22]
    let mut a = CooMatrix::with_capacity(n, n, 14 * 9 * nnode + 6 * nnode);

    let mut couple = |vnode: usize, unode: usize, d: [f64; 3], coo: &mut CooMatrix| {
        // Block B = w0 I + w1 (d d^T)/|d|^2 ; off-diagonal contribution is -B.
        let norm2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        let mut b = [[0.0f64; 3]; 3];
        for (i, bi) in b.iter_mut().enumerate() {
            for (j, bij) in bi.iter_mut().enumerate() {
                *bij = w1 * d[i] * d[j] / norm2;
                if i == j {
                    *bij += w0;
                }
            }
        }
        // Off-diagonal block at (vnode, unode), vnode > unode: all 9 entries
        // are in the lower triangle because 3*vnode >= 3*unode + 3.
        for (i, bi) in b.iter().enumerate() {
            for (j, &bij) in bi.iter().enumerate() {
                coo.push(3 * vnode + i, 3 * unode + j, -bij);
            }
        }
        // Accumulate +B (+ a multiple of I for strictness) into both nodes'
        // diagonal blocks; B is symmetric so lower storage suffices.
        for node in [vnode, unode] {
            let dd = &mut diag[node];
            dd[0] += b[0][0];
            dd[1] += b[1][0];
            dd[2] += b[1][1];
            dd[3] += b[2][0];
            dd[4] += b[2][1];
            dd[5] += b[2][2];
        }
    };

    // The 13 lexicographically-negative neighbor offsets (27-pt connectivity).
    let mut offsets: Vec<(isize, isize, isize)> = Vec::new();
    for dz in -1isize..=1 {
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if (dz, dy, dx) < (0, 0, 0) {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let (ux, uy, uz) = (x as isize + dx, y as isize + dy, z as isize + dz);
                    if ux >= 0
                        && uy >= 0
                        && uz >= 0
                        && (ux as usize) < nx
                        && (uy as usize) < ny
                        && (uz as usize) < nz
                    {
                        let u = id(ux as usize, uy as usize, uz as usize);
                        couple(v, u, [dx as f64, dy as f64, dz as f64], &mut a);
                    }
                }
            }
        }
    }
    // Emit diagonal blocks with a +I safety margin for strict dominance.
    for node in 0..nnode {
        let d = &diag[node];
        let base = 3 * node;
        a.push(base, base, d[0] + 1.0);
        a.push(base + 1, base, d[1]);
        a.push(base + 1, base + 1, d[2] + 1.0);
        a.push(base + 2, base, d[3]);
        a.push(base + 2, base + 1, d[4]);
        a.push(base + 2, base + 2, d[5] + 1.0);
    }
    a.to_csc()
}

/// Anisotropic 2-D Laplacian: 5-point stencil with coupling `-1` in x and
/// `-eps` in y (diagonal `2 + 2 eps`). Strong anisotropy stretches the
/// graph's geometry and stresses partitioners/orderings — separators want
/// to cut the weak direction.
pub fn laplace2d_aniso(nx: usize, ny: usize, eps: f64) -> CscMatrix {
    assert!(nx > 0 && ny > 0);
    assert!(eps > 0.0);
    let n = nx * ny;
    let id = |x: usize, y: usize| -> usize { x + nx * y };
    let mut a = CooMatrix::with_capacity(n, n, 3 * n);
    for y in 0..ny {
        for x in 0..nx {
            let v = id(x, y);
            a.push(v, v, 2.0 + 2.0 * eps);
            if x > 0 {
                a.push(v, id(x - 1, y), -1.0);
            }
            if y > 0 {
                a.push(v, id(x, y - 1), -eps);
            }
        }
    }
    a.to_csc()
}

/// Shifted Laplacian `A - shift·I` on a 2-D grid — a Helmholtz-style
/// symmetric **indefinite** model problem. For `0 < shift < 8` (interior
/// eigenvalues of the 5-point stencil lie in `(0, 8)`), some eigenvalues
/// go negative: the classic stress test for indefinite factorizations.
pub fn helmholtz2d(nx: usize, ny: usize, shift: f64) -> CscMatrix {
    let mut a = laplace2d(nx, ny, Stencil2d::FivePoint);
    let colptr = a.colptr().to_vec();
    let vals = a.values_mut();
    for (c, &lo) in colptr[..colptr.len() - 1].iter().enumerate() {
        let _ = c;
        vals[lo] -= shift; // diagonal is the first entry of each column
    }
    a
}

/// Random strictly diagonally dominant SPD matrix of order `n` with roughly
/// `k` off-diagonal entries per row, seeded and reproducible.
pub fn random_spd(n: usize, k: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (k + 1));
    for i in 0..n {
        coo.push(i, i, 0.0); // placeholder, fixed below
        if i == 0 {
            continue;
        }
        for _ in 0..k.min(i) {
            let j = rng.gen_range(0..i);
            let v = rng.gen_range(-1.0..1.0);
            coo.push(i, j, v);
        }
    }
    let mut a = coo.to_csc();
    // diag[i] = 1 + sum of |offdiag| in row i and column i.
    let mut rowsum = vec![0.0f64; n];
    for c in 0..n {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            if r != c {
                rowsum[r] += v.abs();
                rowsum[c] += v.abs();
            }
        }
    }
    // The diagonal entry is always the first entry of its column here.
    let colptr = a.colptr().to_vec();
    let vals = a.values_mut();
    for (c, &lo) in colptr[..n].iter().enumerate() {
        vals[lo] = rowsum[c] + 1.0;
    }
    a
}

/// A symmetric matrix that is **not** positive definite (one negative
/// eigenvalue introduced by a large negative diagonal entry). Used for
/// failure-injection tests: Cholesky must reject it, LDLᵀ must handle it.
pub fn indefinite(n: usize, seed: u64) -> CscMatrix {
    let mut a = random_spd(n, 3, seed);
    let colptr = a.colptr().to_vec();
    let vals = a.values_mut();
    let c = n / 2;
    vals[colptr[c]] = -5.0; // break positive definiteness
    a
}

/// R-MAT power-law random graph with `2^scale` vertices and about
/// `edge_factor * 2^scale` undirected edges (self-loops and duplicates
/// removed). Returned as an adjacency graph for ordering stress tests.
pub fn rmat_graph(scale: u32, edge_factor: usize, seed: u64) -> AdjGraph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let (pa, pb, pc) = (0.57, 0.19, 0.19);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * edge_factor);
    for _ in 0..n * edge_factor {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < pa {
                // quadrant (0,0)
            } else if r < pa + pb {
                v |= 1;
            } else if r < pa + pb + pc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u.max(v), u.min(v)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    // Build symmetric adjacency.
    let mut deg = vec![0usize; n];
    for &(u, v) in &edges {
        deg[u] += 1;
        deg[v] += 1;
    }
    let mut xadj = vec![0usize; n + 1];
    for v in 0..n {
        xadj[v + 1] = xadj[v] + deg[v];
    }
    let mut adjncy = vec![0usize; xadj[n]];
    let mut next = xadj.clone();
    for &(u, v) in &edges {
        adjncy[next[u]] = v;
        next[u] += 1;
        adjncy[next[v]] = u;
        next[v] += 1;
    }
    for v in 0..n {
        adjncy[xadj[v]..xadj[v + 1]].sort_unstable();
    }
    AdjGraph::from_parts(xadj, adjncy)
}

/// Build a generator problem from a compact textual spec — the shared
/// `--gen` syntax of the command-line tools:
///
/// - `lap2d:NX[xNY]` — 2-D five-point Laplacian (`NY` defaults to `NX`)
/// - `lap3d:NX[xNYxNZ]` — 3-D seven-point Laplacian (cube by default)
/// - `elast3d:NX[xNYxNZ]` — 3-D elasticity-like block SPD matrix
///
/// Returns a descriptive error for anything else.
pub fn by_spec(spec: &str) -> Result<CscMatrix, String> {
    let (kind, dims) = spec
        .split_once(':')
        .ok_or_else(|| format!("generator spec '{spec}' must look like lap3d:12 or lap2d:40x30"))?;
    let parts: Result<Vec<usize>, _> = dims.split('x').map(str::parse::<usize>).collect();
    let parts = parts.map_err(|_| format!("bad dimensions in generator spec '{spec}'"))?;
    if parts.is_empty() || parts.contains(&0) {
        return Err(format!("generator spec '{spec}' needs positive dimensions"));
    }
    let dim = |i: usize| parts.get(i).copied().unwrap_or(parts[0]);
    match (kind, parts.len()) {
        ("lap2d", 1 | 2) => Ok(laplace2d(dim(0), dim(1), Stencil2d::FivePoint)),
        ("lap3d", 1 | 3) => Ok(laplace3d(dim(0), dim(1), dim(2), Stencil3d::SevenPoint)),
        ("elast3d", 1 | 3) => Ok(elasticity3d(dim(0), dim(1), dim(2))),
        ("lap2d" | "lap3d" | "elast3d", _) => {
            Err(format!("wrong number of dimensions in '{spec}'"))
        }
        _ => Err(format!(
            "unknown generator '{kind}' (expected lap2d, lap3d, or elast3d)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn tridiagonal_structure() {
        let a = tridiagonal(5);
        a.check_sym_lower().unwrap();
        assert_eq!(a.nnz(), 9);
        assert_eq!(a.get(2, 2), Some(2.0));
        assert_eq!(a.get(3, 2), Some(-1.0));
    }

    #[test]
    fn laplace2d_five_point() {
        let a = laplace2d(3, 3, Stencil2d::FivePoint);
        a.check_sym_lower().unwrap();
        assert_eq!(a.nrows(), 9);
        // Interior node 4 couples to 1, 3 (below in index) in lower triangle.
        assert_eq!(a.get(4, 1), Some(-1.0));
        assert_eq!(a.get(4, 3), Some(-1.0));
        assert_eq!(a.get(4, 4), Some(4.0));
        // nnz = 9 diag + 12 edges.
        assert_eq!(a.nnz(), 21);
    }

    #[test]
    fn laplace2d_nine_point_connectivity() {
        let a = laplace2d(3, 3, Stencil2d::NinePoint);
        a.check_sym_lower().unwrap();
        // Center node 4 has all 8 neighbors; check a diagonal coupling.
        assert_eq!(a.get(4, 0), Some(-1.0));
        assert_eq!(a.get(8, 4), Some(-1.0));
    }

    #[test]
    fn laplace3d_seven_point() {
        let a = laplace3d(3, 3, 3, Stencil3d::SevenPoint);
        a.check_sym_lower().unwrap();
        assert_eq!(a.nrows(), 27);
        // 27 diag + 3 * (2*3*3) edges = 27 + 54.
        assert_eq!(a.nnz(), 81);
        // Center of the cube (1,1,1) = 13 couples to (1,1,0) = 4.
        assert_eq!(a.get(13, 4), Some(-1.0));
    }

    #[test]
    fn laplace3d_27_point_diag() {
        let a = laplace3d(3, 3, 3, Stencil3d::TwentySevenPoint);
        a.check_sym_lower().unwrap();
        assert_eq!(a.get(13, 13), Some(26.0));
        // Corner-corner coupling exists: (0,0,0)=0 with (1,1,1)=13.
        assert_eq!(a.get(13, 0), Some(-1.0));
    }

    #[test]
    fn laplacians_are_spd_via_cg() {
        let a = laplace2d(6, 5, Stencil2d::FivePoint);
        let b = vec![1.0; a.nrows()];
        assert!(ops::cg(&a, &b, 1e-10, 500).is_some());
    }

    #[test]
    fn elasticity_shape_and_spd() {
        let a = elasticity3d(3, 3, 2);
        a.check_sym_lower().unwrap();
        assert_eq!(a.nrows(), 3 * 18);
        // SPD check: CG converges.
        let b = vec![1.0; a.nrows()];
        assert!(ops::cg(&a, &b, 1e-10, 2000).is_some());
    }

    #[test]
    fn elasticity_has_dense_node_blocks() {
        let a = elasticity3d(2, 2, 2);
        // Off-diagonal 3x3 block between node 1 and node 0 is full:
        // entries (3..6) x (0..3) all present.
        for i in 3..6 {
            for j in 0..3 {
                assert!(a.get(i, j).is_some(), "missing block entry ({i}, {j})");
            }
        }
    }

    #[test]
    fn random_spd_is_dominant_and_deterministic() {
        let a = random_spd(50, 4, 123);
        let b = random_spd(50, 4, 123);
        assert_eq!(a, b);
        a.check_sym_lower().unwrap();
        // Strict diagonal dominance by construction.
        let n = a.nrows();
        let mut offsum = vec![0.0f64; n];
        for c in 0..n {
            let (rows, vals) = a.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                if r != c {
                    offsum[r] += v.abs();
                    offsum[c] += v.abs();
                }
            }
        }
        for c in 0..n {
            assert!(a.get(c, c).unwrap() > offsum[c]);
        }
    }

    #[test]
    fn indefinite_matrix_is_not_spd() {
        let a = indefinite(10, 7);
        // CG on an indefinite matrix is not guaranteed to converge; check the
        // broken diagonal directly.
        assert_eq!(a.get(5, 5), Some(-5.0));
    }

    #[test]
    fn aniso_laplacian_structure() {
        let a = laplace2d_aniso(4, 3, 0.01);
        a.check_sym_lower().unwrap();
        assert!((a.get(0, 0).unwrap() - 2.02).abs() < 1e-15);
        assert_eq!(a.get(1, 0), Some(-1.0)); // x coupling
        assert_eq!(a.get(4, 0), Some(-0.01)); // y coupling
                                              // Still SPD (diagonally dominant up to boundary).
        assert!(ops::cg(&a, &[1.0; 12], 1e-10, 500).is_some());
    }

    #[test]
    fn helmholtz_is_indefinite_for_interior_shift() {
        let a = helmholtz2d(10, 10, 4.0);
        a.check_sym_lower().unwrap();
        assert_eq!(a.get(0, 0), Some(0.0)); // 4 - 4
                                            // The smallest 2-D Laplacian eigenvalue on a 10x10 grid is about
                                            // 2 (2 - 2 cos(pi/11)) ≈ 0.16 << 4, so A - 4I has negative
                                            // eigenvalues: x^T A x < 0 for the lowest mode.
        let n = a.nrows();
        let mode: Vec<f64> = (0..n)
            .map(|v| {
                let (x, y) = (v % 10, v / 10);
                ((x + 1) as f64 * std::f64::consts::PI / 11.0).sin()
                    * ((y + 1) as f64 * std::f64::consts::PI / 11.0).sin()
            })
            .collect();
        let mut ax = vec![0.0; n];
        a.sym_spmv(&mode, &mut ax);
        let rayleigh = ops::dot(&mode, &ax) / ops::dot(&mode, &mode);
        assert!(rayleigh < 0.0, "lowest mode must be negative: {rayleigh}");
    }

    #[test]
    fn by_spec_parses_and_rejects() {
        assert_eq!(
            by_spec("lap2d:7").unwrap(),
            laplace2d(7, 7, Stencil2d::FivePoint)
        );
        assert_eq!(
            by_spec("lap2d:7x5").unwrap(),
            laplace2d(7, 5, Stencil2d::FivePoint)
        );
        assert_eq!(
            by_spec("lap3d:4x3x2").unwrap(),
            laplace3d(4, 3, 2, Stencil3d::SevenPoint)
        );
        assert_eq!(by_spec("elast3d:3").unwrap(), elasticity3d(3, 3, 3));
        for bad in [
            "lap3d",
            "lap3d:",
            "lap3d:0",
            "lap3d:4x3",
            "heat:5",
            "lap2d:axb",
        ] {
            assert!(by_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rmat_is_valid_graph() {
        let g = rmat_graph(6, 4, 99);
        assert_eq!(g.nvert(), 64);
        assert!(g.nedges() > 0);
        assert!(g.validate());
        // Deterministic.
        let g2 = rmat_graph(6, 4, 99);
        assert_eq!(g, g2);
    }

    #[test]
    fn arrowhead_structure() {
        let a = arrowhead(6);
        a.check_sym_lower().unwrap();
        assert_eq!(a.nnz(), 11);
        assert_eq!(a.get(5, 0), Some(-1.0));
    }
}
