//! Matrix Market I/O (coordinate format).
//!
//! Supports `real`, `integer`, and `pattern` fields with `general` or
//! `symmetric` symmetry — the subset that covers the matrices a symmetric
//! direct solver consumes. Pattern entries get value `1.0`.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use std::fs;
use std::path::Path;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only lower triangle stored; the rest is implied.
    Symmetric,
}

/// Value field declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    Pattern,
}

/// Parse a Matrix Market string into a [`CooMatrix`] plus its symmetry tag.
///
/// For `symmetric` files, the returned triplets are exactly the stored
/// (lower-triangle) entries — no mirroring is performed, matching the
/// solver's lower-CSC convention.
pub fn parse_matrix_market(text: &str) -> Result<(CooMatrix, MmSymmetry), SparseError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::BadMatrixMarket("empty input".into()))?;
    let htoks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if htoks.len() < 5 || htoks[0] != "%%matrixmarket" || htoks[1] != "matrix" {
        return Err(SparseError::BadMatrixMarket(format!(
            "bad header line: {header}"
        )));
    }
    if htoks[2] != "coordinate" {
        return Err(SparseError::BadMatrixMarket(format!(
            "unsupported format {} (only coordinate)",
            htoks[2]
        )));
    }
    let field = match htoks[3].as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::BadMatrixMarket(format!(
                "unsupported field {other}"
            )))
        }
    };
    let symmetry = match htoks[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::BadMatrixMarket(format!(
                "unsupported symmetry {other}"
            )))
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line =
        size_line.ok_or_else(|| SparseError::BadMatrixMarket("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::BadMatrixMarket(format!("bad size token {t}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::BadMatrixMarket(format!(
            "size line must have 3 fields, got: {size_line}"
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let need = if field == MmField::Pattern { 2 } else { 3 };
        if toks.len() < need {
            return Err(SparseError::BadMatrixMarket(format!(
                "entry line too short: {t}"
            )));
        }
        let r: usize = toks[0]
            .parse()
            .map_err(|_| SparseError::BadMatrixMarket(format!("bad row index {}", toks[0])))?;
        let c: usize = toks[1]
            .parse()
            .map_err(|_| SparseError::BadMatrixMarket(format!("bad col index {}", toks[1])))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(SparseError::BadMatrixMarket(format!(
                "index ({r}, {c}) out of 1-based range {nrows}x{ncols}"
            )));
        }
        let v = match field {
            MmField::Pattern => 1.0,
            _ => toks[2]
                .parse::<f64>()
                .map_err(|_| SparseError::BadMatrixMarket(format!("bad value {}", toks[2])))?,
        };
        if symmetry == MmSymmetry::Symmetric && r < c {
            return Err(SparseError::BadMatrixMarket(format!(
                "symmetric file stores upper entry ({r}, {c})"
            )));
        }
        coo.push(r - 1, c - 1, v);
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::BadMatrixMarket(format!(
            "declared {nnz} entries but found {seen}"
        )));
    }
    Ok((coo, symmetry))
}

/// Read a symmetric Matrix Market file into symmetric-lower CSC form.
/// `general` files are accepted if square: the lower triangle is extracted.
pub fn read_sym_lower(path: &Path) -> Result<CscMatrix, SparseError> {
    let text = fs::read_to_string(path)?;
    parse_sym_lower(&text)
}

/// As [`read_sym_lower`], from an in-memory string.
pub fn parse_sym_lower(text: &str) -> Result<CscMatrix, SparseError> {
    let (coo, sym) = parse_matrix_market(text)?;
    if coo.nrows() != coo.ncols() {
        return Err(SparseError::NotSquare {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
        });
    }
    let csc = match sym {
        MmSymmetry::Symmetric => coo.to_csc(),
        MmSymmetry::General => coo.lower_triangle().to_csc(),
    };
    csc.check_sym_lower()?;
    Ok(csc)
}

/// Serialize a symmetric-lower CSC matrix as a `symmetric real` Matrix
/// Market string.
pub fn write_sym_lower(a: &CscMatrix) -> String {
    let mut out = String::with_capacity(32 + a.nnz() * 24);
    out.push_str("%%MatrixMarket matrix coordinate real symmetric\n");
    out.push_str(&format!("{} {} {}\n", a.nrows(), a.ncols(), a.nnz()));
    for c in 0..a.ncols() {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            out.push_str(&format!("{} {} {:.17e}\n", r + 1, c + 1, v));
        }
    }
    out
}

/// Write a symmetric-lower CSC matrix to a file.
pub fn save_sym_lower(a: &CscMatrix, path: &Path) -> Result<(), SparseError> {
    fs::write(path, write_sym_lower(a))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parse_symmetric_real() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    2 2 4.0\n\
                    3 3 4.0\n";
        let a = parse_sym_lower(text).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert_eq!(a.get(2, 2), Some(4.0));
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    2 2 3\n1 1\n2 1\n2 2\n";
        let (coo, sym) = parse_matrix_market(text).unwrap();
        assert_eq!(sym, MmSymmetry::Symmetric);
        assert_eq!(coo.nnz(), 3);
        assert!(coo.iter().all(|(_, _, v)| v == 1.0));
    }

    #[test]
    fn parse_general_extracts_lower() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 4\n1 1 2.0\n1 2 -1.0\n2 1 -1.0\n2 2 2.0\n";
        let a = parse_sym_lower(text).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(1, 0), Some(-1.0));
    }

    #[test]
    fn roundtrip_through_string() {
        let a = gen::laplace2d(4, 3, gen::Stencil2d::FivePoint);
        let text = write_sym_lower(&a);
        let b = parse_sym_lower(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_through_file() {
        let a = gen::random_spd(20, 3, 5);
        let dir = std::env::temp_dir();
        let path = dir.join("parfact_io_test.mtx");
        save_sym_lower(&a, &path).unwrap();
        let b = read_sym_lower(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_matrix_market("%%NotMatrixMarket x y z w\n1 1 0\n").is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(SparseError::BadMatrixMarket(_))
        ));
    }

    #[test]
    fn rejects_upper_entry_in_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n";
        assert!(parse_matrix_market(text).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(parse_matrix_market(text).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(parse_matrix_market(text).is_err());
    }
}
