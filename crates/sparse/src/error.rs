//! Error taxonomy for the sparse substrate.

use std::fmt;

/// Errors produced while building, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// Operation requires a square matrix.
    NotSquare { nrows: usize, ncols: usize },
    /// Operation requires a symmetric-lower matrix but an upper entry was found.
    NotLower { row: usize, col: usize },
    /// Dimension mismatch between operands.
    DimMismatch { expected: usize, got: usize },
    /// Malformed Matrix Market input.
    BadMatrixMarket(String),
    /// Underlying I/O failure (message only, to keep the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            SparseError::NotLower { row, col } => write!(
                f,
                "symmetric-lower storage violated by upper-triangle entry ({row}, {col})"
            ),
            SparseError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SparseError::BadMatrixMarket(msg) => write!(f, "bad Matrix Market data: {msg}"),
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
