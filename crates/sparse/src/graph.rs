//! Adjacency-graph view of a symmetric sparsity pattern.
//!
//! Orderings operate on the undirected graph of the matrix: vertices are
//! rows/columns, and `{i, j}` is an edge iff `A[i][j] != 0` for `i != j`.
//! [`AdjGraph`] stores that graph in compressed adjacency form (both
//! directions present, no self loops), the format every ordering algorithm
//! in `parfact-order` consumes.

use crate::csc::CscMatrix;

/// Undirected graph in compressed adjacency (CSR-like) form.
///
/// Invariants: `adjncy[xadj[v]..xadj[v+1]]` lists the neighbors of `v`,
/// sorted ascending, without `v` itself, and edge `{u, v}` appears in both
/// lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjGraph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl AdjGraph {
    /// Build from raw compressed-adjacency arrays (trusted, debug-asserted).
    pub fn from_parts(xadj: Vec<usize>, adjncy: Vec<usize>) -> Self {
        debug_assert!(!xadj.is_empty());
        debug_assert_eq!(*xadj.last().unwrap(), adjncy.len());
        let g = AdjGraph { xadj, adjncy };
        debug_assert!(g.validate(), "adjacency invariants violated");
        g
    }

    /// Build the adjacency graph of a **symmetric-lower** CSC matrix,
    /// ignoring the diagonal and mirroring each off-diagonal entry.
    pub fn from_sym_lower(a: &CscMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.ncols();
        let mut deg = vec![0usize; n];
        for c in 0..n {
            let (rows, _) = a.col(c);
            for &r in rows {
                if r != c {
                    deg[r] += 1;
                    deg[c] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0usize; xadj[n]];
        let mut next = xadj.clone();
        for c in 0..n {
            let (rows, _) = a.col(c);
            for &r in rows {
                if r != c {
                    adjncy[next[c]] = r;
                    next[c] += 1;
                    adjncy[next[r]] = c;
                    next[r] += 1;
                }
            }
        }
        for v in 0..n {
            adjncy[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        AdjGraph { xadj, adjncy }
    }

    /// Number of vertices.
    pub fn nvert(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn nedges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Raw `xadj` array.
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw `adjncy` array.
    pub fn adjncy(&self) -> &[usize] {
        &self.adjncy
    }

    /// Check all structural invariants (used by tests and debug asserts).
    pub fn validate(&self) -> bool {
        let n = self.nvert();
        if self.xadj[0] != 0 || self.xadj.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        for v in 0..n {
            let nb = self.neighbors(v);
            if nb.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            for &u in nb {
                if u >= n || u == v {
                    return false;
                }
                // Mirror edge must exist.
                if self.neighbors(u).binary_search(&v).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// Extract the vertex-induced subgraph on `verts` (which need not be
    /// sorted). Returns the subgraph and the `local → global` map (which is
    /// just `verts`, copied in order).
    pub fn subgraph(&self, verts: &[usize]) -> (AdjGraph, Vec<usize>) {
        let mut global_to_local = vec![usize::MAX; self.nvert()];
        for (local, &g) in verts.iter().enumerate() {
            global_to_local[g] = local;
        }
        let mut xadj = vec![0usize; verts.len() + 1];
        let mut adjncy = Vec::new();
        for (local, &g) in verts.iter().enumerate() {
            let mut nb: Vec<usize> = self
                .neighbors(g)
                .iter()
                .filter_map(|&u| {
                    let lu = global_to_local[u];
                    (lu != usize::MAX).then_some(lu)
                })
                .collect();
            nb.sort_unstable();
            adjncy.extend_from_slice(&nb);
            xadj[local + 1] = adjncy.len();
        }
        (AdjGraph { xadj, adjncy }, verts.to_vec())
    }

    /// Connected components; returns `(component id per vertex, count)`.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.nvert();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u] == usize::MAX {
                        comp[u] = ncomp;
                        stack.push(u);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn path_graph(n: usize) -> AdjGraph {
        // Tridiagonal matrix -> path graph.
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i + 1 < n {
                a.push(i + 1, i, -1.0);
            }
        }
        AdjGraph::from_sym_lower(&a.to_csc())
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(5);
        assert_eq!(g.nvert(), 5);
        assert_eq!(g.nedges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.degree(4), 1);
        assert!(g.validate());
    }

    #[test]
    fn diagonal_only_matrix_has_no_edges() {
        let mut a = CooMatrix::new(3, 3);
        for i in 0..3 {
            a.push(i, i, 1.0);
        }
        let g = AdjGraph::from_sym_lower(&a.to_csc());
        assert_eq!(g.nedges(), 0);
        assert!(g.validate());
    }

    #[test]
    fn subgraph_of_path() {
        let g = path_graph(6);
        let (sg, map) = g.subgraph(&[1, 2, 3]);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sg.nvert(), 3);
        assert_eq!(sg.nedges(), 2);
        assert_eq!(sg.neighbors(1), &[0, 2]); // vertex 2 connects to 1 and 3
        assert!(sg.validate());
    }

    #[test]
    fn subgraph_drops_external_edges() {
        let g = path_graph(6);
        let (sg, _) = g.subgraph(&[0, 5]); // not adjacent
        assert_eq!(sg.nedges(), 0);
    }

    #[test]
    fn components_of_disconnected_graph() {
        // Two disjoint edges: {0,1}, {2,3}.
        let mut a = CooMatrix::new(4, 4);
        for i in 0..4 {
            a.push(i, i, 1.0);
        }
        a.push(1, 0, -1.0);
        a.push(3, 2, -1.0);
        let g = AdjGraph::from_sym_lower(&a.to_csc());
        let (comp, ncomp) = g.connected_components();
        assert_eq!(ncomp, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn validate_rejects_asymmetric() {
        // Hand-built broken graph: edge 0->1 without mirror.
        let g = AdjGraph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
        };
        assert!(!g.validate());
    }
}
