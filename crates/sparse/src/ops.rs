//! Vector/matrix operations used across the solver stack: SpMV wrappers,
//! norms, residuals and diagonal utilities.

use crate::csc::CscMatrix;

/// Infinity norm of a vector.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Residual `r = b - A x` for a symmetric-lower `A`.
pub fn sym_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> Vec<f64> {
    let mut ax = vec![0.0; b.len()];
    a.sym_spmv(x, &mut ax);
    b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect()
}

/// `‖b − A x‖_∞ / (‖A‖_∞ ‖x‖_∞ + ‖b‖_∞)` — the standard componentwise-scaled
/// backward-error style residual for a symmetric-lower `A`.
pub fn sym_residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let r = sym_residual(a, x, b);
    let denom = sym_norm_inf(a) * norm_inf(x) + norm_inf(b);
    if denom == 0.0 {
        norm_inf(&r)
    } else {
        norm_inf(&r) / denom
    }
}

/// Infinity norm (max absolute row sum) of a symmetric-lower matrix.
pub fn sym_norm_inf(a: &CscMatrix) -> f64 {
    let n = a.ncols();
    let mut rowsum = vec![0.0f64; n];
    for c in 0..n {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            rowsum[r] += v.abs();
            if r != c {
                rowsum[c] += v.abs();
            }
        }
    }
    rowsum.into_iter().fold(0.0, f64::max)
}

/// Extract the diagonal of a symmetric-lower matrix (0.0 where absent).
pub fn sym_diagonal(a: &CscMatrix) -> Vec<f64> {
    let n = a.ncols();
    let mut d = vec![0.0; n];
    for c in 0..n {
        if let Some(v) = a.get(c, c) {
            d[c] = v;
        }
    }
    d
}

/// Conjugate gradient on a symmetric-lower SPD matrix. Used as an
/// independent cross-check of direct-solver solutions in tests; returns the
/// iterate and the number of iterations, or `None` if `maxit` is hit without
/// reducing the residual below `tol * ||b||`.
pub fn cg(a: &CscMatrix, b: &[f64], tol: f64, maxit: usize) -> Option<(Vec<f64>, usize)> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut rsold = dot(&r, &r);
    for it in 0..maxit {
        if rsold.sqrt() <= tol * bnorm {
            return Some((x, it));
        }
        a.sym_spmv(&p, &mut ap);
        let alpha = rsold / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rsnew = dot(&r, &r);
        let beta = rsnew / rsold;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rsold = rsnew;
    }
    if rsold.sqrt() <= tol * bnorm {
        Some((x, maxit))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn spd_lower() -> CscMatrix {
        // [ 4 -1  0]
        // [-1  4 -1]
        // [ 0 -1  4]
        let mut a = CooMatrix::new(3, 3);
        for i in 0..3 {
            a.push(i, i, 4.0);
        }
        a.push(1, 0, -1.0);
        a.push(2, 1, -1.0);
        a.to_csc()
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn sym_norm_inf_counts_both_triangles() {
        let a = spd_lower();
        // Row 1 sum: |-1| + |4| + |-1| = 6.
        assert_eq!(sym_norm_inf(&a), 6.0);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sym_diagonal(&spd_lower()), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = spd_lower();
        let x = vec![1.0, 2.0, 3.0];
        let mut b = vec![0.0; 3];
        a.sym_spmv(&x, &mut b);
        assert!(sym_residual_inf(&a, &x, &b) < 1e-16);
    }

    #[test]
    fn cg_solves_spd_system() {
        let a = spd_lower();
        let xstar = vec![1.0, -2.0, 0.5];
        let mut b = vec![0.0; 3];
        a.sym_spmv(&xstar, &mut b);
        let (x, _iters) = cg(&a, &b, 1e-12, 100).expect("cg must converge");
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_reports_nonconvergence() {
        let a = spd_lower();
        let b = vec![1.0, 1.0, 1.0];
        // Zero iterations allowed and nonzero rhs: must fail.
        assert!(cg(&a, &b, 1e-30, 0).is_none());
    }
}
