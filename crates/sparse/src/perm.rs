//! Permutations and symmetric permutation `P A Pᵀ`.

use crate::csc::CscMatrix;
use rand::Rng;

/// A permutation of `0..n`.
///
/// Convention: `perm[new] = old` — position `new` of the reordered system is
/// occupied by original index `old`. Equivalently, with permutation matrix
/// `P` defined by `(P x)[new] = x[perm[new]]`, applying this permutation to a
/// matrix produces `P A Pᵀ`. The inverse mapping (`old → new`) is available
/// via [`Perm::inv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Perm {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Perm {
            perm: (0..n).collect(),
            inv: (0..n).collect(),
        }
    }

    /// Build from a `new → old` vector. Panics if it is not a permutation.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n, "index {old} out of range for permutation of {n}");
            assert!(
                inv[old] == usize::MAX,
                "duplicate index {old} in permutation"
            );
            inv[old] = new;
        }
        Perm { perm, inv }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            p.swap(i, j);
        }
        Perm::from_vec(p)
    }

    /// Size of the permuted set.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The `new → old` map.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The `old → new` map.
    pub fn inv(&self) -> &[usize] {
        &self.inv
    }

    /// Original index occupying position `new`.
    pub fn old_of_new(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// Position that original index `old` moved to.
    pub fn new_of_old(&self, old: usize) -> usize {
        self.inv[old]
    }

    /// The inverse permutation as a standalone `Perm`.
    pub fn inverse(&self) -> Perm {
        Perm {
            perm: self.inv.clone(),
            inv: self.perm.clone(),
        }
    }

    /// Composition: apply `self` after `other` (`result.old_of_new(i) =
    /// other.old_of_new(self.old_of_new(i))`).
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len());
        let perm: Vec<usize> = (0..self.len())
            .map(|i| other.old_of_new(self.old_of_new(i)))
            .collect();
        Perm::from_vec(perm)
    }

    /// Permute a vector: `out[new] = x[old_of_new(new)]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Un-permute a vector: `out[old] = x[new_of_old(old)]`.
    pub fn apply_inv_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }

    /// Symmetric permutation of a **symmetric-lower** CSC matrix: returns the
    /// lower triangle of `P A Pᵀ`, again in sorted CSC form.
    ///
    /// Entry `(i, j)` of `A` (with `i >= j`) moves to `(i', j')` where
    /// `i' = new_of_old(i)`, `j' = new_of_old(j)`; it is stored at
    /// `(max(i', j'), min(i', j'))` to stay in the lower triangle.
    pub fn apply_sym_lower(&self, a: &CscMatrix) -> CscMatrix {
        assert_eq!(a.nrows(), a.ncols());
        assert_eq!(a.ncols(), self.len());
        let n = self.len();
        // Count entries per new column.
        let mut count = vec![0usize; n];
        for c in 0..n {
            let (rows, _) = a.col(c);
            for &r in rows {
                let (ri, ci) = (self.inv[r], self.inv[c]);
                let nc = ri.min(ci);
                count[nc] += 1;
            }
        }
        let mut colptr = vec![0usize; n + 1];
        for c in 0..n {
            colptr[c + 1] = colptr[c] + count[c];
        }
        let nnz = colptr[n];
        let mut rowind = vec![0usize; nnz];
        let mut vals = vec![0f64; nnz];
        let mut next = colptr.clone();
        for c in 0..n {
            let (rows, v) = a.col(c);
            for (&r, &x) in rows.iter().zip(v) {
                let (ri, ci) = (self.inv[r], self.inv[c]);
                let (nr, nc) = if ri >= ci { (ri, ci) } else { (ci, ri) };
                let slot = next[nc];
                rowind[slot] = nr;
                vals[slot] = x;
                next[nc] += 1;
            }
        }
        // Sort rows within each column, reusing one scratch buffer across
        // all columns so repeated permutation (e.g. every `refactorize`)
        // does not allocate per column.
        let mut pairs: Vec<(usize, f64)> = Vec::new();
        for c in 0..n {
            let (lo, hi) = (colptr[c], colptr[c + 1]);
            pairs.clear();
            pairs.extend(
                rowind[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            pairs.sort_unstable_by_key(|&(r, _)| r);
            for (k, &(r, x)) in pairs.iter().enumerate() {
                rowind[lo + k] = r;
                vals[lo + k] = x;
            }
        }
        CscMatrix::from_parts(n, n, colptr, rowind, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_noop() {
        let p = Perm::identity(4);
        let x = vec![3.0, 1.0, 4.0, 1.0];
        assert_eq!(p.apply_vec(&x), x);
        assert_eq!(p.apply_inv_vec(&x), x);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn from_vec_rejects_duplicates() {
        Perm::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Perm::random(10, &mut rng);
        let id = p.compose(&p.inverse());
        assert_eq!(id, Perm::identity(10));
    }

    #[test]
    fn apply_then_apply_inv_roundtrips() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Perm::random(8, &mut rng);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(p.apply_inv_vec(&p.apply_vec(&x)), x);
    }

    #[test]
    fn sym_permutation_matches_dense() {
        // Dense check: P A P^T in dense arithmetic vs apply_sym_lower.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        // Random symmetric matrix with full diagonal.
        for i in 0..n {
            coo.push(i, i, 10.0 + i as f64);
            for j in 0..i {
                if rand::Rng::gen_bool(&mut rng, 0.5) {
                    coo.push(i, j, (i * n + j) as f64);
                }
            }
        }
        let a = coo.to_csc();
        let p = Perm::random(n, &mut rng);
        let pa = p.apply_sym_lower(&a);
        pa.check_sym_lower().unwrap();

        let full = a.sym_to_full().to_dense_colmajor();
        let pfull = pa.sym_to_full().to_dense_colmajor();
        for newc in 0..n {
            for newr in 0..n {
                let (oldr, oldc) = (p.old_of_new(newr), p.old_of_new(newc));
                assert_eq!(pfull[newc * n + newr], full[oldc * n + oldr]);
            }
        }
    }

    #[test]
    fn random_perm_is_valid_and_seeded() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let p1 = Perm::random(100, &mut r1);
        let p2 = Perm::random(100, &mut r2);
        assert_eq!(p1, p2);
        let mut seen = [false; 100];
        for &i in p1.perm() {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }
}
