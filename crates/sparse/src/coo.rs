//! Triplet (coordinate) format — the assembly/ingest format.
//!
//! A [`CooMatrix`] is an unordered list of `(row, col, value)` triplets.
//! Duplicate entries are allowed and are **summed** on conversion to a
//! compressed format, which makes COO the natural target of finite-element
//! style assembly loops (the generators in [`crate::gen`] use it this way).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Sparse matrix in coordinate (triplet) form.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Create an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create an empty matrix and reserve room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Build from parallel triplet arrays, validating every index.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self, SparseError> {
        assert_eq!(rows.len(), cols.len(), "triplet arrays must match");
        assert_eq!(rows.len(), vals.len(), "triplet arrays must match");
        for (&r, &c) in rows.iter().zip(&cols) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry. Panics on out-of-bounds indices: assembly loops are
    /// internal code where a bad index is a bug, not recoverable input.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append `val` at `(row, col)` and, if off-diagonal, also at `(col, row)`.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Iterate over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR, summing duplicates. Entries whose sum is exactly zero
    /// are kept (structural nonzeros matter for symbolic analysis).
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort-and-merge within each row.
        let mut indptr = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            indptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        let mut next = indptr.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let slot = next[r];
            indices[slot] = c;
            vals[slot] = v;
            next[r] += 1;
        }
        // Sort each row segment by column and merge duplicates in place.
        let mut out_indptr = vec![0usize; self.nrows + 1];
        let mut out_indices = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (lo, hi) = (indptr[r], indptr[r + 1]);
            scratch.clear();
            scratch.extend(
                indices[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                out_indices.push(c);
                out_vals.push(sum);
            }
            out_indptr[r + 1] = out_indices.len();
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, out_indptr, out_indices, out_vals)
    }

    /// Convert to CSC, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        self.transposed_view_to_csr().into_csc_of_transpose()
    }

    /// Keep only the lower triangle (including the diagonal). Used to take a
    /// symmetrically-assembled matrix into the solver's lower-CSC convention.
    pub fn lower_triangle(&self) -> CooMatrix {
        let mut out = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz() / 2 + 1);
        for (r, c, v) in self.iter() {
            if r >= c {
                out.push(r, c, v);
            }
        }
        out
    }

    fn transposed_view_to_csr(&self) -> CsrMatrix {
        let t = CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        };
        t.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_shape() {
        let mut a = CooMatrix::new(3, 4);
        a.push(0, 0, 1.0);
        a.push(2, 3, -2.0);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut a = CooMatrix::new(2, 2);
        a.push(2, 0, 1.0);
    }

    #[test]
    fn from_triplets_validates() {
        let err = CooMatrix::from_triplets(2, 2, vec![0, 3], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(
            err,
            Err(SparseError::IndexOutOfBounds { row: 3, .. })
        ));
    }

    #[test]
    fn duplicates_are_summed_in_csr() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 1, 1.0);
        a.push(0, 1, 2.5);
        a.push(1, 0, -1.0);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(3.5));
        assert_eq!(csr.get(1, 0), Some(-1.0));
        assert_eq!(csr.get(0, 0), None);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut a = CooMatrix::new(3, 3);
        a.push_sym(1, 0, 4.0);
        a.push_sym(2, 2, 7.0);
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), Some(4.0));
        assert_eq!(csr.get(0, 1), Some(4.0));
        assert_eq!(csr.get(2, 2), Some(7.0));
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn lower_triangle_drops_upper() {
        let mut a = CooMatrix::new(3, 3);
        a.push_sym(1, 0, 4.0);
        a.push(2, 2, 1.0);
        let l = a.lower_triangle();
        assert_eq!(l.nnz(), 2);
        assert!(l.iter().all(|(r, c, _)| r >= c));
    }

    #[test]
    fn csr_row_columns_sorted() {
        let mut a = CooMatrix::new(1, 5);
        for &c in &[4, 0, 2, 1, 3] {
            a.push(0, c, c as f64);
        }
        let csr = a.to_csr();
        let (cols, _) = csr.row(0);
        assert_eq!(cols, &[0, 1, 2, 3, 4]);
    }
}
