//! Compressed sparse column format — the solver's working format.
//!
//! The factorization stack stores symmetric matrices as the **lower
//! triangle in CSC** (`A[i][j]` kept iff `i >= j`), the convention used by
//! classic sparse Cholesky codes: column `j` then lists exactly the
//! below-diagonal structure that the elimination of `j` touches.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Sparse matrix in compressed sparse column form. Row indices within each
/// column are sorted ascending and unique.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Assemble from raw parts. Debug-asserts the CSC invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(colptr.len(), ncols + 1);
        debug_assert_eq!(colptr[0], 0);
        debug_assert_eq!(*colptr.last().unwrap(), rowind.len());
        debug_assert_eq!(rowind.len(), vals.len());
        debug_assert!(colptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..ncols).all(|c| {
            let col = &rowind[colptr[c]..colptr[c + 1]];
            col.windows(2).all(|w| w[0] < w[1]) && col.iter().all(|&r| r < nrows)
        }));
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowind,
            vals,
        }
    }

    /// An `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowind: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices, concatenated column by column.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Values, parallel to [`Self::rowind`].
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values (structure stays fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// The row indices and values of column `c`.
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.colptr[c], self.colptr[c + 1]);
        (&self.rowind[lo..hi], &self.vals[lo..hi])
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let (rows, vals) = self.col(c);
        rows.binary_search(&r).ok().map(|k| vals[k])
    }

    /// `y = A x` (general, non-symmetric interpretation).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            let xc = x[c];
            for (&r, &v) in rows.iter().zip(vals) {
                y[r] += v * xc;
            }
        }
    }

    /// `y = A x` where `self` stores the **lower triangle of a symmetric**
    /// matrix (diagonal included). The implicit upper triangle is applied
    /// on the fly.
    pub fn sym_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(self.nrows, self.ncols, "symmetric matrix must be square");
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            let xc = x[c];
            for (&r, &v) in rows.iter().zip(vals) {
                y[r] += v * xc;
                if r != c {
                    y[c] += v * x[r];
                }
            }
        }
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        // CSR of A = transpose of (CSC of A read as CSR of Aᵀ).
        let as_csr_of_t = CsrMatrix::from_parts(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowind.clone(),
            self.vals.clone(),
        );
        as_csr_of_t.transpose()
    }

    /// Check the lower-triangle convention: square, every entry on or below
    /// the diagonal, and every diagonal entry structurally present.
    pub fn check_sym_lower(&self) -> Result<(), SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        for c in 0..self.ncols {
            let (rows, _) = self.col(c);
            match rows.first() {
                Some(&r0) if r0 == c => {}
                Some(&r0) if r0 < c => return Err(SparseError::NotLower { row: r0, col: c }),
                _ => {
                    // Missing diagonal: report as a structure violation at (c, c).
                    return Err(SparseError::NotLower { row: c, col: c });
                }
            }
        }
        Ok(())
    }

    /// Extract the lower triangle (diagonal included) of a general square
    /// matrix, producing the solver's symmetric-lower form.
    pub fn lower_triangle(&self) -> CscMatrix {
        assert_eq!(self.nrows, self.ncols);
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowind = Vec::new();
        let mut vals = Vec::new();
        for c in 0..self.ncols {
            let (rows, v) = self.col(c);
            for (&r, &x) in rows.iter().zip(v) {
                if r >= c {
                    rowind.push(r);
                    vals.push(x);
                }
            }
            colptr[c + 1] = rowind.len();
        }
        CscMatrix::from_parts(self.nrows, self.ncols, colptr, rowind, vals)
    }

    /// Expand a symmetric-lower matrix into its full (both-triangles) form.
    pub fn sym_to_full(&self) -> CscMatrix {
        assert_eq!(self.nrows, self.ncols);
        let n = self.ncols;
        // Count entries per column of the full matrix.
        let mut count = vec![0usize; n];
        for c in 0..n {
            let (rows, _) = self.col(c);
            for &r in rows {
                count[c] += 1;
                if r != c {
                    count[r] += 1;
                }
            }
        }
        let mut colptr = vec![0usize; n + 1];
        for c in 0..n {
            colptr[c + 1] = colptr[c] + count[c];
        }
        let nnz = colptr[n];
        let mut rowind = vec![0usize; nnz];
        let mut vals = vec![0f64; nnz];
        let mut next = colptr.clone();
        // Emit in row-sorted order per column: first the mirrored upper part
        // (rows < c come from columns r < c processed in order), then the
        // lower part. Processing columns ascending and appending (r, c) pairs
        // in ascending r keeps each output column sorted.
        for c in 0..n {
            let (rows, v) = self.col(c);
            for (&r, &x) in rows.iter().zip(v) {
                if r != c {
                    // Mirror into column r at row c (c > r, appended after
                    // all rows < c for that column).
                    let slot = next[r];
                    rowind[slot] = c;
                    vals[slot] = x;
                    next[r] += 1;
                }
            }
        }
        // Now append the stored lower entries column by column.
        // Careful: the mirrored entries for column c all have row > c, but we
        // appended them *before* the lower entries of column c, which start at
        // row c. Rebuild properly: mirrored entries of column r have rows > r,
        // and lower entries of column r also have rows >= r. To get sorted
        // columns we must interleave. Simplest correct approach: collect and
        // sort each column once at the end.
        for c in 0..n {
            let (rows, v) = self.col(c);
            for (&r, &x) in rows.iter().zip(v) {
                let slot = next[c];
                rowind[slot] = r;
                vals[slot] = x;
                next[c] += 1;
            }
        }
        for c in 0..n {
            let (lo, hi) = (colptr[c], colptr[c + 1]);
            let mut pairs: Vec<(usize, f64)> = rowind[lo..hi]
                .iter()
                .copied()
                .zip(vals[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(r, _)| r);
            for (k, (r, x)) in pairs.into_iter().enumerate() {
                rowind[lo + k] = r;
                vals[lo + k] = x;
            }
        }
        CscMatrix::from_parts(n, n, colptr, rowind, vals)
    }

    /// Dense column-major copy (test/debug helper; refuses huge matrices via
    /// the caller's judgment).
    pub fn to_dense_colmajor(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                d[c * self.nrows + r] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sym_lower_3x3() -> CscMatrix {
        // Full matrix:
        // [ 4 -1  0]
        // [-1  4 -2]
        // [ 0 -2  5]
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, 4.0);
        a.push(1, 0, -1.0);
        a.push(1, 1, 4.0);
        a.push(2, 1, -2.0);
        a.push(2, 2, 5.0);
        a.to_csc()
    }

    #[test]
    fn col_access() {
        let a = sym_lower_3x3();
        let (rows, vals) = a.col(1);
        assert_eq!(rows, &[1, 2]);
        assert_eq!(vals, &[4.0, -2.0]);
    }

    #[test]
    fn sym_spmv_matches_full_spmv() {
        let a = sym_lower_3x3();
        let full = a.sym_to_full();
        let x = vec![1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        a.sym_spmv(&x, &mut y1);
        full.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn sym_to_full_is_symmetric() {
        let f = sym_lower_3x3().sym_to_full();
        assert_eq!(f.nnz(), 7);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(f.get(r, c), f.get(c, r));
            }
        }
    }

    #[test]
    fn check_sym_lower_accepts_valid() {
        assert!(sym_lower_3x3().check_sym_lower().is_ok());
    }

    #[test]
    fn check_sym_lower_rejects_upper_entry() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(0, 1, 2.0); // upper entry
        a.push(1, 1, 1.0);
        let csc = a.to_csc();
        assert!(matches!(
            csc.check_sym_lower(),
            Err(SparseError::NotLower { row: 0, col: 1 })
        ));
    }

    #[test]
    fn check_sym_lower_rejects_missing_diagonal() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(1, 0, 2.0);
        let csc = a.to_csc();
        assert!(csc.check_sym_lower().is_err());
    }

    #[test]
    fn lower_triangle_of_full() {
        let full = sym_lower_3x3().sym_to_full();
        let low = full.lower_triangle();
        assert_eq!(low, sym_lower_3x3());
    }

    #[test]
    fn csr_roundtrip() {
        let a = sym_lower_3x3();
        let back = a.to_csr().to_csc();
        assert_eq!(a, back);
    }

    #[test]
    fn to_dense_colmajor_layout() {
        let a = sym_lower_3x3();
        let d = a.to_dense_colmajor();
        assert_eq!(d[0], 4.0); // (0,0)
        assert_eq!(d[1], -1.0); // (1,0)
        assert_eq!(d[3 + 1], 4.0); // (1,1)
        assert_eq!(d[3 + 2], -2.0); // (2,1)
    }
}
