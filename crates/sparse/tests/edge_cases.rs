//! Edge-case battery for the sparse substrate: degenerate shapes, empty
//! structures, and boundary conditions that unit tests tend to skip.

use parfact_sparse::coo::CooMatrix;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::csr::CsrMatrix;
use parfact_sparse::gen;
use parfact_sparse::graph::AdjGraph;
use parfact_sparse::ops;
use parfact_sparse::perm::Perm;

#[test]
fn empty_matrix_conversions() {
    let coo = CooMatrix::new(0, 0);
    let csr = coo.to_csr();
    assert_eq!(csr.nrows(), 0);
    assert_eq!(csr.nnz(), 0);
    let csc = csr.to_csc();
    assert_eq!(csc.ncols(), 0);
}

#[test]
fn empty_rows_and_columns_survive_roundtrip() {
    // 4x4 with entries only in row/col 1 and 3.
    let mut coo = CooMatrix::new(4, 4);
    coo.push(1, 1, 2.0);
    coo.push(3, 1, -1.0);
    coo.push(3, 3, 2.0);
    let csc = coo.to_csc();
    assert_eq!(csc.col(0).0.len(), 0);
    assert_eq!(csc.col(2).0.len(), 0);
    let back = csc.to_csr().to_csc();
    assert_eq!(csc, back);
}

#[test]
fn one_by_one_matrix() {
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 5.0);
    let a = coo.to_csc();
    a.check_sym_lower().unwrap();
    let mut y = vec![0.0];
    a.sym_spmv(&[3.0], &mut y);
    assert_eq!(y, vec![15.0]);
    let g = AdjGraph::from_sym_lower(&a);
    assert_eq!(g.nvert(), 1);
    assert_eq!(g.nedges(), 0);
}

#[test]
fn rectangular_spmv_and_transpose() {
    // 2x5 matrix through CSR.
    let mut coo = CooMatrix::new(2, 5);
    coo.push(0, 4, 1.0);
    coo.push(1, 0, 2.0);
    let csr = coo.to_csr();
    let mut y = vec![0.0; 2];
    csr.spmv(&[1.0, 0.0, 0.0, 0.0, 10.0], &mut y);
    assert_eq!(y, vec![10.0, 2.0]);
    let t = csr.transpose();
    assert_eq!((t.nrows(), t.ncols()), (5, 2));
    assert_eq!(t.get(4, 0), Some(1.0));
}

#[test]
fn identity_permutation_on_empty() {
    let p = Perm::identity(0);
    assert!(p.is_empty());
    assert_eq!(p.apply_vec(&[]), Vec::<f64>::new());
}

#[test]
fn sym_norms_on_diagonal_matrix() {
    let mut coo = CooMatrix::new(3, 3);
    for i in 0..3 {
        coo.push(i, i, -((i + 1) as f64));
    }
    let a = coo.to_csc();
    assert_eq!(ops::sym_norm_inf(&a), 3.0);
    assert_eq!(ops::sym_diagonal(&a), vec![-1.0, -2.0, -3.0]);
}

#[test]
fn generators_minimum_sizes() {
    // 1x1x1 grids and tiny meshes must not panic and stay SPD-shaped.
    let a = gen::laplace3d(1, 1, 1, gen::Stencil3d::SevenPoint);
    assert_eq!(a.nrows(), 1);
    assert_eq!(a.get(0, 0), Some(6.0));

    let b = gen::laplace2d(1, 5, gen::Stencil2d::NinePoint);
    b.check_sym_lower().unwrap();
    assert_eq!(b.nrows(), 5);

    let e = gen::elasticity3d(1, 1, 2);
    e.check_sym_lower().unwrap();
    assert_eq!(e.nrows(), 6);
    assert!(ops::cg(&e, &[1.0; 6], 1e-10, 200).is_some());
}

#[test]
fn identity_csr_and_csc_agree() {
    let i1 = CsrMatrix::identity(7).to_csc();
    let i2 = CscMatrix::identity(7);
    assert_eq!(i1, i2);
}

#[test]
fn lower_triangle_idempotent() {
    let a = gen::random_spd(30, 4, 3);
    let full = a.sym_to_full();
    let low1 = full.lower_triangle();
    let low2 = low1.clone(); // already lower: extracting again is a no-op
    assert_eq!(low1, low2.lower_triangle());
    assert_eq!(low1, a);
}

#[test]
fn coo_iter_matches_pushes() {
    let mut coo = CooMatrix::new(3, 3);
    coo.push(2, 1, 4.5);
    coo.push(0, 0, -1.0);
    let got: Vec<(usize, usize, f64)> = coo.iter().collect();
    assert_eq!(got, vec![(2, 1, 4.5), (0, 0, -1.0)]);
}

#[test]
fn graph_subgraph_of_everything_is_identity() {
    let a = gen::laplace2d(4, 4, gen::Stencil2d::FivePoint);
    let g = AdjGraph::from_sym_lower(&a);
    let all: Vec<usize> = (0..g.nvert()).collect();
    let (sg, map) = g.subgraph(&all);
    assert_eq!(sg, g);
    assert_eq!(map, all);
}

#[test]
fn cg_on_singular_matrix_fails_gracefully() {
    // Zero matrix with unit diagonal removed -> singular; cg must return
    // None rather than produce NaN panics.
    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 0, 1.0);
    coo.push(1, 1, 0.0);
    let a = coo.to_csc();
    let r = ops::cg(&a, &[0.0, 1.0], 1e-12, 50);
    assert!(r.is_none() || r.unwrap().0[1].is_finite());
}
