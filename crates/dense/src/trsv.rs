//! Dense triangular solves on vectors — the kernels behind the sparse
//! solve phase, operating on per-supernode blocks of the factor.

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Forward solve `L x = b` in place, `L` lower `n x n` with leading
/// dimension `ldl`. With `unit`, the diagonal is implicitly 1.
pub fn trsv_ln(n: usize, l: &[f64], ldl: usize, x: &mut [f64], unit: bool) {
    debug_assert!(x.len() >= n);
    for j in 0..n {
        let mut xj = x[j];
        if !unit {
            xj /= l[at(ldl, j, j)];
        }
        x[j] = xj;
        if xj != 0.0 {
            let lc = j * ldl;
            for i in j + 1..n {
                x[i] -= l[lc + i] * xj;
            }
        }
    }
}

/// Backward solve `Lᵀ x = b` in place.
pub fn trsv_lt(n: usize, l: &[f64], ldl: usize, x: &mut [f64], unit: bool) {
    debug_assert!(x.len() >= n);
    for j in (0..n).rev() {
        let lc = j * ldl;
        let mut acc = x[j];
        for i in j + 1..n {
            acc -= l[lc + i] * x[i];
        }
        x[j] = if unit { acc } else { acc / l[lc + j] };
    }
}

/// `y -= L21 * x` where `L21` is `m x n` (the subdiagonal panel of a
/// supernode), `x` has length `n`, `y` length `m`. Used during the forward
/// sweep to push a supernode's contribution into its ancestors.
pub fn gemv_sub(m: usize, n: usize, l21: &[f64], ld: usize, x: &[f64], y: &mut [f64]) {
    debug_assert!(x.len() >= n && y.len() >= m);
    for j in 0..n {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        let lc = j * ld;
        for i in 0..m {
            y[i] -= l21[lc + i] * xj;
        }
    }
}

/// `x -= L21ᵀ * y` with the same shapes as [`gemv_sub`]. Used during the
/// backward sweep to pull ancestor values back into a supernode.
pub fn gemv_t_sub(m: usize, n: usize, l21: &[f64], ld: usize, y: &[f64], x: &mut [f64]) {
    debug_assert!(y.len() >= m && x.len() >= n);
    for j in 0..n {
        let lc = j * ld;
        let mut acc = 0.0;
        for i in 0..m {
            acc += l21[lc + i] * y[i];
        }
        x[j] -= acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DMat;

    fn lower(n: usize, seed: u64) -> DMat {
        let mut s = seed.max(1);
        let mut r = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        };
        DMat::from_fn(n, n, |i, j| {
            if i > j {
                r() * 0.4
            } else if i == j {
                1.5 + r().abs()
            } else {
                0.0
            }
        })
    }

    #[test]
    fn trsv_roundtrip() {
        let n = 9;
        let l = lower(n, 3);
        let x0: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        // b = L x0.
        let xm = DMat::from_colmajor(n, 1, x0.clone());
        let mut b: Vec<f64> = l.matmul(&xm).as_slice().to_vec();
        trsv_ln(n, l.as_slice(), n, &mut b, false);
        for (a, e) in b.iter().zip(&x0) {
            assert!((a - e).abs() < 1e-12);
        }
        // bt = L^T x0.
        let mut bt: Vec<f64> = l.transpose().matmul(&xm).as_slice().to_vec();
        trsv_lt(n, l.as_slice(), n, &mut bt, false);
        for (a, e) in bt.iter().zip(&x0) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn trsv_unit_ignores_diagonal() {
        let n = 5;
        let mut l = lower(n, 4);
        let x0 = vec![1.0; n];
        // b = Lunit x0 where Lunit has 1s on the diagonal.
        let mut lu = l.clone();
        for i in 0..n {
            lu[(i, i)] = 1.0;
        }
        let mut b: Vec<f64> = lu
            .matmul(&DMat::from_colmajor(n, 1, x0.clone()))
            .as_slice()
            .to_vec();
        for i in 0..n {
            l[(i, i)] = f64::NAN; // must never be read
        }
        trsv_ln(n, l.as_slice(), n, &mut b, true);
        for (a, e) in b.iter().zip(&x0) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_sub_matches_matvec() {
        let (m, n) = (6, 4);
        let l21 = DMat::from_fn(m, n, |i, j| (i + j) as f64);
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut y = vec![100.0; m];
        gemv_sub(m, n, l21.as_slice(), m, &x, &mut y);
        let expect = l21.matmul(&DMat::from_colmajor(n, 1, x.clone()));
        for i in 0..m {
            assert!((y[i] - (100.0 - expect[(i, 0)])).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_sub_matches_transposed_matvec() {
        let (m, n) = (5, 3);
        let l21 = DMat::from_fn(m, n, |i, j| (2 * i + 3 * j) as f64);
        let y: Vec<f64> = (0..m).map(|i| i as f64 - 2.0).collect();
        let mut x = vec![7.0; n];
        gemv_t_sub(m, n, l21.as_slice(), m, &y, &mut x);
        let expect = l21
            .transpose()
            .matmul(&DMat::from_colmajor(m, 1, y.clone()));
        for j in 0..n {
            assert!((x[j] - (7.0 - expect[(j, 0)])).abs() < 1e-12);
        }
    }
}
