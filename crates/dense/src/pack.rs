//! BLIS-style packed, register-blocked matrix-multiply core.
//!
//! Layering (innermost first):
//!
//! - **microkernel** — an `MR x NR` register tile accumulated over a packed
//!   `k`-slice. The accumulator lives entirely in registers / stack; the
//!   inner loop is a rank-1 broadcast update with unit-stride loads from
//!   both packed panels. On x86-64 a runtime-dispatched AVX variant runs
//!   the same chains at double vector width (separate mul/add, no FMA —
//!   see the determinism contract); elsewhere LLVM auto-vectorizes the
//!   portable loop.
//! - **packing** — `A` is repacked into `MR`-row panels (`pack_a`), the
//!   `B` operand of `C ← A Bᵀ` into `NR`-row panels (`pack_b`). Panels are
//!   zero-padded in the `m`/`n` direction only, never in `k`, so padded
//!   lanes contribute exact zeros and edge tiles run the same microkernel
//!   as full tiles.
//! - **cache blocking** — `KC x NC` blocks of packed `B` and `MC x KC`
//!   blocks of packed `A` keep the working set resident while the macro
//!   loops sweep the `C` tile grid.
//!
//! Packing buffers live in a thread-local arena (`PACK_BUFS`) so
//! steady-state factorization does zero packing allocation after warm-up.
//!
//! # Determinism contract
//!
//! The engines' bitwise parity tests (Sequential vs Smp vs Dist) rely on a
//! per-entry rounding contract: for each output entry `C[i][j]`, one
//! `k`-block contributes
//!
//! ```text
//! acc = Σ_{l ascending} A[i][l] * B[j][l]   (single sequential chain)
//! C[i][j] = C[i][j] + alpha * acc
//! ```
//!
//! The accumulator chain for an entry never crosses entries, so the result
//! is independent of which tile the entry lands in and of how callers
//! slice the output into row/column chunks. With `k <= KC` there is a
//! single `k`-block and the whole operation satisfies the contract; the
//! factorization path always has `k` equal to a panel width
//! `<= chol::NB <= KC`. Changing [`KC`], the accumulation order, or the
//! writeback formula breaks cross-engine bitwise parity.

use std::cell::RefCell;

/// Microkernel register-tile rows.
pub const MR: usize = 8;
/// Microkernel register-tile columns.
pub const NR: usize = 4;
/// Cache-block size along the shared `k` dimension. Must stay `>=`
/// `chol::NB` to keep factorization-path calls in a single `k`-block
/// (see the determinism contract above).
pub const KC: usize = 256;
/// Cache-block rows of packed `A` (multiple of `MR`).
pub const MC: usize = 64;
/// Cache-block columns of packed `B` (multiple of `NR`).
pub const NC: usize = 512;

/// Thread-local packing buffers, reused across calls.
struct PackBufs {
    a: Vec<f64>,
    b: Vec<f64>,
}

thread_local! {
    static PACK_BUFS: RefCell<PackBufs> = const {
        RefCell::new(PackBufs {
            a: Vec::new(),
            b: Vec::new(),
        })
    };
}

// Separate thread-local scratch vector for callers (e.g. the blocked
// LDLᵀ trailing update) that need a workspace *while* a packed kernel
// runs; keeping it out of `PACK_BUFS` avoids a nested `RefCell` borrow.
thread_local! {
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed thread-local scratch slice of length `len`.
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let s = &mut buf[..len];
        s.fill(0.0);
        f(s)
    })
}

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Pack `mc x kc` of `A` (rows `i0..`, k-columns `l0..`) into `MR`-row
/// panels: element `(p, l)` of panel `pan` lands at
/// `pan * MR * kc + l * MR + p`. Rows past `mc` are zero.
fn pack_a(buf: &mut Vec<f64>, a: &[f64], lda: usize, i0: usize, mc: usize, l0: usize, kc: usize) {
    let npan = mc.div_ceil(MR);
    let need = npan * MR * kc;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    for pan in 0..npan {
        let r0 = pan * MR;
        let rows = MR.min(mc - r0);
        let dst0 = pan * MR * kc;
        for l in 0..kc {
            let src = at(lda, i0 + r0, l0 + l);
            let d = &mut buf[dst0 + l * MR..dst0 + (l + 1) * MR];
            d[..rows].copy_from_slice(&a[src..src + rows]);
            d[rows..].fill(0.0);
        }
    }
}

/// Pack `nc x kc` of `B` (rows `j0..`, k-columns `l0..`) into `NR`-row
/// panels, same layout as [`pack_a`] with `NR` in place of `MR`.
fn pack_b(buf: &mut Vec<f64>, b: &[f64], ldb: usize, j0: usize, nc: usize, l0: usize, kc: usize) {
    let npan = nc.div_ceil(NR);
    let need = npan * NR * kc;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    for pan in 0..npan {
        let r0 = pan * NR;
        let rows = NR.min(nc - r0);
        let dst0 = pan * NR * kc;
        for l in 0..kc {
            let src = at(ldb, j0 + r0, l0 + l);
            let d = &mut buf[dst0 + l * NR..dst0 + (l + 1) * NR];
            d[..rows].copy_from_slice(&b[src..src + rows]);
            d[rows..].fill(0.0);
        }
    }
}

/// `MR x NR` register microkernel: `acc[q][p] += Σ_l ap[l][p] * bp[l][q]`
/// over one packed `k`-slice. Dispatches to the AVX path when the CPU has
/// it (detection result is cached by `std`), else runs the portable loop.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just detected at runtime.
        unsafe { microkernel_avx(kc, ap, bp, acc) };
        return;
    }
    microkernel_portable(kc, ap, bp, acc);
}

/// Portable microkernel: both loads are unit-stride; the `p` loop is the
/// vector lane for the auto-vectorizer.
#[inline(always)]
fn microkernel_portable(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    for l in 0..kc {
        let av = &ap[l * MR..(l + 1) * MR];
        let bv = &bp[l * NR..(l + 1) * NR];
        for q in 0..NR {
            let bq = bv[q];
            let accq = &mut acc[q];
            for p in 0..MR {
                accq[p] += av[p] * bq;
            }
        }
    }
}

/// AVX microkernel: the 8 rows of the tile live in two 4-lane vectors per
/// column, so one `l` step is a broadcast plus 8 `vmulpd`/`vaddpd` pairs —
/// double the width of the SSE2 baseline the portable loop compiles to.
///
/// Arithmetic is deliberately separate multiply-then-add, **not** FMA:
/// each accumulator lane performs exactly the scalar chain of
/// [`microkernel_portable`] in the same `l` order, so the two paths are
/// bitwise identical and the determinism contract above is preserved.
/// Fused rounding would break cross-engine parity.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
fn microkernel_avx(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    use std::arch::x86_64::*;
    const {
        assert!(MR == 8 && NR == 4, "tile shape is baked into this kernel");
    }
    // SAFETY: callers checked `ap`/`bp` hold `kc` packed slices; loads stay
    // in bounds and `acc` is a plain `f64` array with room for 2 vectors
    // per column.
    unsafe {
        let mut lo = [_mm256_setzero_pd(); NR];
        let mut hi = [_mm256_setzero_pd(); NR];
        let apt = ap.as_ptr();
        let bpt = bp.as_ptr();
        for l in 0..kc {
            let a0 = _mm256_loadu_pd(apt.add(l * MR));
            let a1 = _mm256_loadu_pd(apt.add(l * MR + 4));
            for q in 0..NR {
                let bq = _mm256_broadcast_sd(&*bpt.add(l * NR + q));
                lo[q] = _mm256_add_pd(lo[q], _mm256_mul_pd(a0, bq));
                hi[q] = _mm256_add_pd(hi[q], _mm256_mul_pd(a1, bq));
            }
        }
        for q in 0..NR {
            let p = acc[q].as_mut_ptr();
            _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), lo[q]));
            let p4 = p.add(4);
            _mm256_storeu_pd(p4, _mm256_add_pd(_mm256_loadu_pd(p4), hi[q]));
        }
    }
}

/// Write an accumulated tile back: `C[i][j] += alpha * acc` for the
/// `mr_eff x nr_eff` valid corner, masking out strictly-upper entries
/// (`row < col`) when `lower` is set. This is the only place packed
/// results touch `C`, so full and remainder tiles share one rounding
/// behaviour.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_tile(
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    alpha: f64,
    acc: &[[f64; MR]; NR],
    lower: bool,
) {
    for (q, accq) in acc.iter().enumerate().take(nr_eff) {
        let col = j0 + q;
        let p0 = if lower && col > i0 { col - i0 } else { 0 };
        if p0 >= mr_eff {
            continue;
        }
        let base = at(ldc, i0, col);
        let dst = &mut c[base + p0..base + mr_eff];
        for (cv, &av) in dst.iter_mut().zip(&accq[p0..mr_eff]) {
            *cv += alpha * av;
        }
    }
}

/// Packed driver for `C ← C + alpha * A Bᵀ` (`A` is `m x k`, `B` is
/// `n x k`, `C` is `m x n`, column-major). With `lower`, only entries
/// `C[i][j]` with `i >= j` are written (callers guarantee `C` is the
/// square lower-triangular target, e.g. `syrk_ln`).
///
/// `beta` scaling is the caller's job — the driver is purely accumulating
/// so that the per-entry determinism contract holds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    lower: bool,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    debug_assert!(lda >= m && ldb >= n && ldc >= m);
    PACK_BUFS.with(|cell| {
        let bufs = &mut *cell.borrow_mut();
        let PackBufs { a: abuf, b: bbuf } = bufs;
        for l0 in (0..k).step_by(KC) {
            let kc = KC.min(k - l0);
            for j0 in (0..n).step_by(NC) {
                if lower && j0 >= m {
                    // Every entry of this column block is strictly upper.
                    break;
                }
                let nc = NC.min(n - j0);
                pack_b(bbuf, b, ldb, j0, nc, l0, kc);
                for i0 in (0..m).step_by(MC) {
                    let mc = MC.min(m - i0);
                    if lower && i0 + mc <= j0 {
                        // Row block sits entirely above the diagonal.
                        continue;
                    }
                    pack_a(abuf, a, lda, i0, mc, l0, kc);
                    for jr in (0..nc).step_by(NR) {
                        let nre = NR.min(nc - jr);
                        let gj = j0 + jr;
                        let bp = &bbuf[(jr / NR) * NR * kc..];
                        for ir in (0..mc).step_by(MR) {
                            let mre = MR.min(mc - ir);
                            let gi = i0 + ir;
                            if lower && gi + mre <= gj {
                                continue;
                            }
                            let ap = &abuf[(ir / MR) * MR * kc..];
                            let mut acc = [[0.0f64; MR]; NR];
                            microkernel(kc, ap, bp, &mut acc);
                            store_tile(c, ldc, gi, gj, mre, nre, alpha, &acc, lower);
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_pads_partial_panels_with_zeros() {
        // 5x3 A inside a lda=7 allocation.
        let (m, k, lda) = (5usize, 3usize, 7usize);
        let a: Vec<f64> = (0..lda * k).map(|v| v as f64 + 1.0).collect();
        let mut buf = Vec::new();
        pack_a(&mut buf, &a, lda, 0, m, 0, k);
        assert_eq!(buf.len(), MR * k);
        for l in 0..k {
            for p in 0..MR {
                let want = if p < m { a[at(lda, p, l)] } else { 0.0 };
                assert_eq!(buf[l * MR + p], want, "l={l} p={p}");
            }
        }
    }

    #[test]
    fn pack_b_pads_partial_panels_with_zeros() {
        let (n, k, ldb) = (6usize, 2usize, 9usize);
        let b: Vec<f64> = (0..ldb * k).map(|v| v as f64 * 0.5 - 3.0).collect();
        let mut buf = Vec::new();
        pack_b(&mut buf, &b, ldb, 0, n, 0, k);
        let npan = n.div_ceil(NR);
        assert_eq!(buf.len(), npan * NR * k);
        for pan in 0..npan {
            for l in 0..k {
                for q in 0..NR {
                    let j = pan * NR + q;
                    let want = if j < n { b[at(ldb, j, l)] } else { 0.0 };
                    assert_eq!(buf[pan * NR * k + l * NR + q], want);
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    // Miri cannot execute AVX intrinsics; the portable path is covered by
    // the other packing tests.
    #[cfg_attr(miri, ignore)]
    fn avx_microkernel_is_bitwise_equal_to_portable() {
        if !std::arch::is_x86_feature_detected!("avx") {
            return;
        }
        for kc in [1usize, 7, 48, 255, 256] {
            let mut s = 0x9e37_79b9_u64.wrapping_mul(kc as u64 + 1);
            let mut r = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f64 / 1000.0 - 1.0
            };
            let ap: Vec<f64> = (0..kc * MR).map(|_| r()).collect();
            let bp: Vec<f64> = (0..kc * NR).map(|_| r()).collect();
            let mut want = [[0.0; MR]; NR];
            let mut got = [[0.0; MR]; NR];
            microkernel_portable(kc, &ap, &bp, &mut want);
            // SAFETY: guarded by the feature check above.
            unsafe { microkernel_avx(kc, &ap, &bp, &mut got) };
            for q in 0..NR {
                for p in 0..MR {
                    assert_eq!(
                        want[q][p].to_bits(),
                        got[q][p].to_bits(),
                        "kc={kc} q={q} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_is_zeroed_between_uses() {
        with_scratch(4, |s| s.fill(7.0));
        with_scratch(8, |s| {
            assert!(s.iter().all(|&v| v == 0.0));
        });
    }
}
