//! Column-major dense matrix used for fronts and tests.

use std::fmt;

/// A column-major dense matrix: entry `(i, j)` lives at `data[j * nrows + i]`.
#[derive(Clone, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a generator `f(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        DMat { nrows, ncols, data }
    }

    /// Wrap an existing column-major buffer.
    pub fn from_colmajor(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        DMat { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Underlying column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// `self * other` (naive; test/assembly helper, not a hot kernel).
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(self.ncols, other.nrows);
        let mut out = DMat::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let b = other[(k, j)];
                if b == 0.0 {
                    continue;
                }
                for i in 0..self.nrows {
                    out[(i, j)] += self[(i, k)] * b;
                }
            }
        }
        out
    }

    /// Transpose copy.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Maximum absolute entrywise difference.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Zero out the strict upper triangle (factor kernels leave garbage there).
    pub fn zero_upper(&mut self) {
        for j in 1..self.ncols {
            for i in 0..j.min(self.nrows) {
                self[(i, j)] = 0.0;
            }
        }
    }

    /// Symmetrize from the lower triangle: copy `(i, j), i > j` into `(j, i)`.
    pub fn mirror_lower(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for i in j + 1..self.nrows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }

    /// A random symmetric positive definite matrix: `B Bᵀ + n·I` with `B`
    /// filled from the provided generator closure (kept generic so callers
    /// control the RNG without this crate depending on `rand`).
    pub fn random_spd(n: usize, mut next: impl FnMut() -> f64) -> DMat {
        let b = DMat::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.ncols > 8 { "..." } else { "" })?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_column_major() {
        let mut m = DMat::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m.as_slice()[2 * 2 + 1], 7.0);
    }

    #[test]
    fn identity_matmul() {
        let a = DMat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = DMat::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_fn(2, 4, |i, j| (i + 10 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(3, 1)], a[(1, 3)]);
    }

    #[test]
    fn mirror_and_zero_upper() {
        let mut a = DMat::from_fn(3, 3, |i, j| if i >= j { (i + 1) as f64 } else { 99.0 });
        a.zero_upper();
        assert_eq!(a[(0, 2)], 0.0);
        a.mirror_lower();
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(2, 0)], 3.0);
    }

    #[test]
    fn random_spd_is_symmetric_with_heavy_diagonal() {
        let mut state = 1u64;
        let a = DMat::random_spd(5, move || {
            // Tiny xorshift so the test has no external deps.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        });
        for i in 0..5 {
            assert!(a[(i, i)] >= 5.0);
            for j in 0..5 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn max_abs_diff_reports_largest() {
        let a = DMat::zeros(2, 2);
        let mut b = DMat::zeros(2, 2);
        b[(1, 0)] = -3.0;
        b[(0, 1)] = 2.0;
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }
}
