//! Naive (pre-packing) reference kernels.
//!
//! These are the original unpacked axpy-loop kernels the packed
//! implementations in [`crate::blas`] replaced. They are kept for two
//! reasons:
//!
//! - **correctness oracle** — the property tests compare the packed
//!   kernels against these over odd shapes, remainder tiles and
//!   non-trivial leading dimensions;
//! - **performance baseline** — `bench_pr2` and the `dense_kernels`
//!   criterion groups measure the packed kernels *against* these, so the
//!   speedup is tracked as evidence rather than asserted from memory.
//!
//! Do not use them in the factorization path.

/// Tile size along the shared (`k`) dimension.
const KC: usize = 64;
/// Tile size along the output-column (`n`) dimension.
const NC: usize = 128;

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Reference `C ← α A Bᵀ + β C`: `A` is `m x k`, `B` is `n x k`, `C` is
/// `m x n`, all column-major with leading dimensions `lda`, `ldb`, `ldc`.
#[allow(clippy::too_many_arguments)] // BLAS calling convention
pub fn gemm_nt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= m.max(1) && ldb >= n.max(1) && ldc >= m.max(1));
    if beta != 1.0 {
        for j in 0..n {
            let cj = &mut c[at(ldc, 0, j)..at(ldc, m, j)];
            if beta == 0.0 {
                cj.fill(0.0);
            } else {
                for v in cj {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    for l0 in (0..k).step_by(KC) {
        let l1 = (l0 + KC).min(k);
        for j0 in (0..n).step_by(NC) {
            let j1 = (j0 + NC).min(n);
            for j in j0..j1 {
                let cj = j * ldc;
                for l in l0..l1 {
                    let blj = alpha * b[at(ldb, j, l)];
                    if blj == 0.0 {
                        continue;
                    }
                    let al = l * lda;
                    let (acol, ccol) = (&a[al..al + m], &mut c[cj..cj + m]);
                    for (cv, &av) in ccol.iter_mut().zip(acol) {
                        *cv += av * blj;
                    }
                }
            }
        }
    }
}

/// Reference lower-triangle rank-k update: `C ← α A Aᵀ + β C`, touching
/// only `C[i][j]` with `i >= j`. `A` is `n x k`, `C` is `n x n`.
#[allow(clippy::too_many_arguments)] // BLAS calling convention
pub fn syrk_ln(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= n.max(1) && ldc >= n.max(1));
    if beta != 1.0 {
        for j in 0..n {
            let cj = &mut c[at(ldc, j, j)..at(ldc, n, j)];
            if beta == 0.0 {
                cj.fill(0.0);
            } else {
                for v in cj {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || n == 0 || k == 0 {
        return;
    }
    for l0 in (0..k).step_by(KC) {
        let l1 = (l0 + KC).min(k);
        for j in 0..n {
            let cj = j * ldc;
            for l in l0..l1 {
                let alj = alpha * a[at(lda, j, l)];
                if alj == 0.0 {
                    continue;
                }
                let al = l * lda;
                let (acol, ccol) = (&a[al + j..al + n], &mut c[cj + j..cj + n]);
                for (cv, &av) in ccol.iter_mut().zip(acol) {
                    *cv += av * alj;
                }
            }
        }
    }
}
