//! Bunch–Kaufman pivoted dense `LDLᵀ` — the numerically robust
//! factorization for general (not quasi-definite) symmetric indefinite
//! matrices, with 1×1 and 2×2 pivot blocks and symmetric partial pivoting.
//!
//! This is the full-strength dense kernel (LAPACK `dsytf2`-style, lower
//! storage). The *sparse* LDLᵀ path stays pivot-free: dynamic pivoting
//! perturbs the symbolic structure, which the paper's solver family
//! handles with delayed pivots — out of scope here and documented as a
//! limitation. The dense kernel is complete and exposed for front-level
//! use and for dense subproblems (e.g. Schur-complement interface solves
//! of indefinite systems).

use crate::error::DenseError;

/// The growth-bound constant `(1 + sqrt(17)) / 8`.
const ALPHA: f64 = 0.6403882032022076;

/// One diagonal block of `D`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BkPivot {
    /// 1×1 block starting at its column.
    One(f64),
    /// 2×2 block spanning its column and the next.
    Two { d11: f64, d21: f64, d22: f64 },
}

/// A Bunch–Kaufman factorization `P A Pᵀ = L D Lᵀ` of a dense symmetric
/// matrix (lower storage).
#[derive(Debug, Clone)]
pub struct BkFactor {
    n: usize,
    /// Unit-lower `L` packed column-major (the entry below a 2×2 pivot's
    /// first column is implicitly zero).
    l: Vec<f64>,
    /// `(start column, block)` for each diagonal block, in order.
    pivots: Vec<(usize, BkPivot)>,
    /// Row permutation: `perm[i]` = original index now at position `i`.
    perm: Vec<usize>,
}

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Swap rows/columns `r1 < r2` of a symmetric lower-stored matrix.
fn sym_swap(n: usize, a: &mut [f64], lda: usize, r1: usize, r2: usize) {
    debug_assert!(r1 < r2 && r2 < n);
    for j in 0..r1 {
        a.swap(at(lda, r1, j), at(lda, r2, j));
    }
    for j in r1 + 1..r2 {
        a.swap(at(lda, j, r1), at(lda, r2, j));
    }
    a.swap(at(lda, r1, r1), at(lda, r2, r2));
    for i in r2 + 1..n {
        a.swap(at(lda, i, r1), at(lda, i, r2));
    }
}

/// Factor a dense symmetric matrix (lower storage, order `n`, leading
/// dimension `lda`) with Bunch–Kaufman pivoting. `a` is consumed as
/// workspace.
pub fn factorize_bk(n: usize, a: &mut [f64], lda: usize) -> Result<BkFactor, DenseError> {
    assert!(lda >= n.max(1));
    let mut perm: Vec<usize> = (0..n).collect();
    let mut pivots: Vec<(usize, BkPivot)> = Vec::new();
    let mut k = 0usize;
    while k < n {
        let absakk = a[at(lda, k, k)].abs();
        // Largest off-diagonal in column k (below the diagonal).
        let (mut imax, mut colmax) = (k, 0.0f64);
        for i in k + 1..n {
            let v = a[at(lda, i, k)].abs();
            if v > colmax {
                colmax = v;
                imax = i;
            }
        }
        if absakk.max(colmax) == 0.0 {
            return Err(DenseError::ZeroPivot { index: k });
        }
        // Decide the pivot: 1x1 at k, 1x1 at imax (swap), or 2x2 (k, imax).
        let mut kstep = 1usize;
        let mut kp = k;
        if absakk < ALPHA * colmax {
            // rowmax = largest off-diagonal in row imax of the trailing block.
            let mut rowmax = 0.0f64;
            for j in k..imax {
                rowmax = rowmax.max(a[at(lda, imax, j)].abs());
            }
            for i in imax + 1..n {
                rowmax = rowmax.max(a[at(lda, i, imax)].abs());
            }
            if absakk * rowmax >= ALPHA * colmax * colmax {
                // 1x1 pivot at k after all.
            } else if a[at(lda, imax, imax)].abs() >= ALPHA * rowmax {
                kp = imax; // 1x1 pivot, swap k <-> imax
            } else {
                kstep = 2;
                kp = imax; // 2x2 pivot, swap k+1 <-> imax
            }
        }
        let kk = k + kstep - 1; // row that kp swaps with
        if kp != kk {
            sym_swap(n, a, lda, kk.min(kp), kk.max(kp));
            perm.swap(kk, kp);
        }
        if kstep == 1 {
            let d = a[at(lda, k, k)];
            if d == 0.0 {
                return Err(DenseError::ZeroPivot { index: k });
            }
            pivots.push((k, BkPivot::One(d)));
            let inv = 1.0 / d;
            for i in k + 1..n {
                a[at(lda, i, k)] *= inv;
            }
            // Trailing update: A -= l d l^T (lower), one contiguous column
            // slice at a time (k < j keeps source and target disjoint).
            for j in k + 1..n {
                let w = a[at(lda, j, k)] * d;
                if w == 0.0 {
                    continue;
                }
                let (kcol, jcol) = (k * lda, j * lda);
                let (lo, hi) = a.split_at_mut(jcol);
                let lk = &lo[kcol + j..kcol + n];
                let cj = &mut hi[j..n];
                for (cv, &lv) in cj.iter_mut().zip(lk) {
                    *cv -= lv * w;
                }
            }
        } else {
            let d11 = a[at(lda, k, k)];
            let d21 = a[at(lda, k + 1, k)];
            let d22 = a[at(lda, k + 1, k + 1)];
            let det = d11 * d22 - d21 * d21;
            if det == 0.0 {
                return Err(DenseError::ZeroPivot { index: k });
            }
            pivots.push((k, BkPivot::Two { d11, d21, d22 }));
            // L rows: [l1 l2] = [w1 w2] * Dinv where [w1 w2] = A[k+2.., k..k+2].
            let (i11, i21, i22) = (d22 / det, -d21 / det, d11 / det);
            for i in k + 2..n {
                let w1 = a[at(lda, i, k)];
                let w2 = a[at(lda, i, k + 1)];
                a[at(lda, i, k)] = w1 * i11 + w2 * i21;
                a[at(lda, i, k + 1)] = w1 * i21 + w2 * i22;
            }
            // Trailing update: A -= L D L^T = L W^T where W = original cols.
            // Reconstruct W from L and D (w = l * D) and stream both source
            // columns as slices (k + 1 < j keeps them disjoint from target).
            for j in k + 2..n {
                let lj1 = a[at(lda, j, k)];
                let lj2 = a[at(lda, j, k + 1)];
                let wj1 = lj1 * d11 + lj2 * d21;
                let wj2 = lj1 * d21 + lj2 * d22;
                if wj1 == 0.0 && wj2 == 0.0 {
                    continue;
                }
                let jcol = j * lda;
                let (lo, hi) = a.split_at_mut(jcol);
                let l1 = &lo[k * lda + j..k * lda + n];
                let l2 = &lo[(k + 1) * lda + j..(k + 1) * lda + n];
                let cj = &mut hi[j..n];
                for ((cv, &v1), &v2) in cj.iter_mut().zip(l1).zip(l2) {
                    *cv -= v1 * wj1 + v2 * wj2;
                }
            }
            // The entry below the pivot's first column inside the block is
            // not an L entry.
            a[at(lda, k + 1, k)] = 0.0;
        }
        k += kstep;
    }
    // Pack L (unit lower).
    let mut l = vec![0.0f64; n * n];
    for j in 0..n {
        l[at(n, j, j)] = 1.0;
        for i in j + 1..n {
            l[at(n, i, j)] = a[at(lda, i, j)];
        }
    }
    Ok(BkFactor { n, l, pivots, perm })
}

impl BkFactor {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of 2×2 pivot blocks (0 for a definite matrix).
    pub fn n_2x2(&self) -> usize {
        self.pivots
            .iter()
            .filter(|(_, p)| matches!(p, BkPivot::Two { .. }))
            .count()
    }

    /// Matrix inertia `(n_pos, n_neg, n_zero)` by Sylvester's law (each 2×2
    /// block of an indefinite pivot contributes one of each sign).
    pub fn inertia(&self) -> (usize, usize, usize) {
        let (mut pos, mut neg) = (0usize, 0usize);
        for &(_, p) in &self.pivots {
            match p {
                BkPivot::One(d) => {
                    if d > 0.0 {
                        pos += 1;
                    } else {
                        neg += 1;
                    }
                }
                BkPivot::Two { d11, d21, d22 } => {
                    let det = d11 * d22 - d21 * d21;
                    if det < 0.0 {
                        pos += 1;
                        neg += 1;
                    } else if d11 + d22 > 0.0 {
                        pos += 2;
                    } else {
                        neg += 2;
                    }
                }
            }
        }
        (pos, neg, self.n - pos - neg)
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // x = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&o| b[o]).collect();
        // Forward: L y = x (unit lower).
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                for i in j + 1..n {
                    x[i] -= self.l[at(n, i, j)] * xj;
                }
            }
        }
        // Block-diagonal solve.
        for &(k, p) in &self.pivots {
            match p {
                BkPivot::One(d) => x[k] /= d,
                BkPivot::Two { d11, d21, d22 } => {
                    let det = d11 * d22 - d21 * d21;
                    let (b1, b2) = (x[k], x[k + 1]);
                    x[k] = (d22 * b1 - d21 * b2) / det;
                    x[k + 1] = (-d21 * b1 + d11 * b2) / det;
                }
            }
        }
        // Backward: L^T z = y.
        for j in (0..n).rev() {
            let mut acc = x[j];
            for i in j + 1..n {
                acc -= self.l[at(n, i, j)] * x[i];
            }
            x[j] = acc;
        }
        // Un-permute: out[perm[i]] = x[i].
        let mut out = vec![0.0; n];
        for (i, &o) in self.perm.iter().enumerate() {
            out[o] = x[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DMat;

    fn det_rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        }
    }

    /// Random symmetric (indefinite) matrix.
    fn random_sym(n: usize, seed: u64) -> DMat {
        let mut r = det_rng(seed);
        let mut a = DMat::from_fn(n, n, |_, _| r());
        a.mirror_lower();
        // Re-symmetrize properly: average.
        for j in 0..n {
            for i in j..n {
                let v = (a[(i, j)] + a[(j, i)]) / 2.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    fn check_solve(a: &DMat, seed: u64) {
        let n = a.nrows();
        let mut work = a.clone();
        let f = factorize_bk(n, work.as_mut_slice(), n).expect("factorizable");
        let mut r = det_rng(seed * 7 + 1);
        let xstar: Vec<f64> = (0..n).map(|_| r()).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)] * xstar[j]).sum())
            .collect();
        let x = f.solve(&b);
        let scale = a.as_slice().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!(
                (xi - xs).abs() < 1e-9 * scale * n as f64,
                "solve mismatch: {xi} vs {xs}"
            );
        }
    }

    #[test]
    fn solves_random_indefinite_systems() {
        for n in [1usize, 2, 3, 5, 8, 13, 21, 40] {
            let a = random_sym(n, n as u64 * 3 + 1);
            check_solve(&a, n as u64);
        }
    }

    #[test]
    fn handles_zero_diagonal_saddle_point() {
        // [[0, 1], [1, 0]] — impossible without 2x2 pivots.
        let mut a = DMat::zeros(2, 2);
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        let mut w = a.clone();
        let f = factorize_bk(2, w.as_mut_slice(), 2).unwrap();
        assert_eq!(f.n_2x2(), 1);
        let x = f.solve(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn saddle_point_block_system() {
        // KKT-style: [[I, B^T], [B, 0]] with B = [1 1].
        let mut a = DMat::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        a[(2, 0)] = 1.0;
        a[(0, 2)] = 1.0;
        a[(2, 1)] = 1.0;
        a[(1, 2)] = 1.0;
        check_solve(&a, 4);
        let mut w = a.clone();
        let f = factorize_bk(3, w.as_mut_slice(), 3).unwrap();
        let (pos, neg, zero) = f.inertia();
        assert_eq!((pos, neg, zero), (2, 1, 0));
    }

    #[test]
    fn spd_matrix_needs_no_2x2_blocks_and_matches_inertia() {
        let mut r = det_rng(9);
        let a = DMat::random_spd(20, &mut r);
        let mut w = a.clone();
        let f = factorize_bk(20, w.as_mut_slice(), 20).unwrap();
        assert_eq!(f.inertia(), (20, 0, 0));
        check_solve(&a, 11);
    }

    #[test]
    fn inertia_counts_negative_eigenvalues() {
        // diag(1, -2, 3, -4): inertia (2, 2, 0).
        let mut a = DMat::zeros(4, 4);
        for (i, v) in [1.0, -2.0, 3.0, -4.0].into_iter().enumerate() {
            a[(i, i)] = v;
        }
        let mut w = a.clone();
        let f = factorize_bk(4, w.as_mut_slice(), 4).unwrap();
        assert_eq!(f.inertia(), (2, 2, 0));
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = DMat::zeros(3, 3);
        let mut w = a.clone();
        assert!(matches!(
            factorize_bk(3, w.as_mut_slice(), 3),
            Err(DenseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn reconstruction_p_a_pt_equals_ldlt() {
        let n = 12;
        let a = random_sym(n, 31);
        let mut w = a.clone();
        let f = factorize_bk(n, w.as_mut_slice(), n).unwrap();
        // Build D.
        let mut d = DMat::zeros(n, n);
        for &(k, p) in &f.pivots {
            match p {
                BkPivot::One(v) => d[(k, k)] = v,
                BkPivot::Two { d11, d21, d22 } => {
                    d[(k, k)] = d11;
                    d[(k + 1, k)] = d21;
                    d[(k, k + 1)] = d21;
                    d[(k + 1, k + 1)] = d22;
                }
            }
        }
        let l = DMat::from_colmajor(n, n, f.l.clone());
        let ldl = l.matmul(&d).matmul(&l.transpose());
        // P A P^T: entry (i, j) = a[perm[i]][perm[j]].
        let papt = DMat::from_fn(n, n, |i, j| a[(f.perm[i], f.perm[j])]);
        assert!(
            ldl.max_abs_diff(&papt) < 1e-10,
            "reconstruction error {}",
            ldl.max_abs_diff(&papt)
        );
    }
}
