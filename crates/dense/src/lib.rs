//! Dense kernels for `parfact` frontal matrices.
//!
//! The multifrontal method turns a sparse factorization into a tree of
//! *dense* partial factorizations. This crate supplies those kernels in
//! pure Rust, mirroring the BLAS-3/LAPACK operations a production solver
//! would get from a vendor library:
//!
//! - [`blas`] — `gemm` (`C += A Bᵀ`), `syrk` (lower `C += A Aᵀ`), and the
//!   `trsm` variants the factorization needs, built on the packed
//!   register-blocked core in [`pack`];
//! - [`pack`] — BLIS-style packing + microkernel layer (MC/KC/NC cache
//!   blocks, `MR x NR` register tiles, thread-local packing arenas);
//! - [`naive`] — the pre-packing reference kernels, kept as correctness
//!   oracle and performance baseline;
//! - [`chol`] — blocked full and **partial** Cholesky (`LLᵀ`) and `LDLᵀ`
//!   factorizations of a front: factor the first `npiv` columns, form the
//!   Schur complement of the rest;
//! - [`bunch_kaufman`] — fully pivoted dense `LDLᵀ` (1×1/2×2 blocks) for
//!   general symmetric indefinite systems, with inertia computation;
//! - [`trsv`] — dense triangular solves used by the sparse solve phase;
//! - [`matrix`] — a small column-major matrix type for assembling fronts.
//!
//! All kernels work on **column-major** storage with an explicit leading
//! dimension, so they apply directly to sub-blocks of larger fronts.
// Index loops over parallel arrays (`for j in 0..n` touching several
// slices) are the deliberate idiom of this numerical code; clippy's
// iterator rewrites obscure the subscript math.
#![allow(clippy::needless_range_loop)]

pub mod blas;
pub mod bunch_kaufman;
pub mod chol;
pub mod error;
pub mod matrix;
pub mod naive;
pub mod pack;
pub mod solve;
pub mod trsv;

pub use error::DenseError;
pub use matrix::DMat;
