//! Batched (multi-right-hand-side) triangular-solve kernels.
//!
//! The solve phase streams every factor panel once and applies it to an
//! `n x nrhs` column-major block, so the per-panel work has the BLAS-3
//! shape `TRSM` + `GEMM` instead of `nrhs` scalar `trsv`/`gemv` sweeps.
//!
//! ## Bitwise contract
//!
//! Every kernel here processes each right-hand-side column with a
//! floating-point operation order that is *identical* for every column and
//! *independent of `nrhs`* (the block shape only amortizes panel loads:
//! each loaded `L` column is applied to several RHS columns before moving
//! on). Consequently a blocked solve over `nrhs` columns is bitwise equal
//! to `nrhs` independent single-column solves — the property the solver's
//! cross-`nrhs` determinism tests pin down.
//!
//! ## Two layouts
//!
//! There are two kernel families. The column-major family (`trsm_ln`,
//! `gemm_block_sub`, ...) takes the RHS block as `nrhs` stride-`ld`
//! columns and is used where the data already lives that way (the
//! distributed engine's message blocks, the SMP tree solve). The
//! interleaved family (`*_rm`) takes row `i`'s `nrhs` values contiguously
//! at `b[i*nrhs..]`, which lets SIMD run *across* RHS columns while each
//! column keeps a fixed op order — reductions over `i` stay per-lane and
//! are never reassociated. Both families are nrhs-independent per column,
//! but they order the panel updates differently (pure column sweeps vs
//! 4-column panels), so results *between* families agree to rounding, not
//! bit for bit.

/// How many RHS columns the block-apply kernels advance per outer step.
/// Each loaded `L21` column is reused across the group, which is where the
/// batched solve earns its bandwidth advantage.
const RHS_UNROLL: usize = 4;

/// How many `L21` columns the micro-kernels chain per row visit. Chained
/// updates stay in ascending-`j` order per RHS column (subtraction is not
/// reassociated), so the bitwise contract holds; the payoff is that each
/// `Y` element is loaded and stored once per group of four `L` columns
/// instead of once per column.
const COL_UNROLL: usize = 4;

/// Solve `L X = B` in place (`B <- L^-1 B`), `L` lower `n x n` (`ldl`),
/// `B` `n x nrhs` (`ldb`). RHS columns are processed four at a time so
/// each loaded `L` column serves the whole group; per column the update
/// sequence (divide, then subtract down the column, skipping when the
/// pivot value is exactly zero) is identical to the scalar
/// [`crate::blas::trsm_left_ln`] sweep, so results are bitwise equal to a
/// per-column loop for every `nrhs`.
pub fn trsm_ln(
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    unit: bool,
) {
    debug_assert!(ldl >= n.max(1) && ldb >= n.max(1));
    let at = |i: usize, j: usize| j * ldl + i;
    let mut r = 0;
    while r + RHS_UNROLL <= nrhs {
        let (c0, rest) = b[r * ldb..].split_at_mut(ldb);
        let (c1, rest) = rest.split_at_mut(ldb);
        let (c2, c3) = rest.split_at_mut(ldb);
        let (c0, c1, c2, c3) = (&mut c0[..n], &mut c1[..n], &mut c2[..n], &mut c3[..n]);
        for j in 0..n {
            let (mut x0, mut x1, mut x2, mut x3) = (c0[j], c1[j], c2[j], c3[j]);
            if !unit {
                let d = l[at(j, j)];
                x0 /= d;
                x1 /= d;
                x2 /= d;
                x3 /= d;
            }
            c0[j] = x0;
            c1[j] = x1;
            c2[j] = x2;
            c3[j] = x3;
            let lc = &l[at(j + 1, j)..at(n, j)];
            if x0 != 0.0 && x1 != 0.0 && x2 != 0.0 && x3 != 0.0 {
                for (i, &lv) in lc.iter().enumerate() {
                    c0[j + 1 + i] -= lv * x0;
                    c1[j + 1 + i] -= lv * x1;
                    c2[j + 1 + i] -= lv * x2;
                    c3[j + 1 + i] -= lv * x3;
                }
            } else {
                // A zero pivot value: fall back to per-column skips so the
                // scalar sweep's behaviour is reproduced exactly.
                for (xv, col) in [(x0, &mut *c0), (x1, c1), (x2, c2), (x3, c3)] {
                    if xv != 0.0 {
                        for (bv, &lv) in col[j + 1..].iter_mut().zip(lc) {
                            *bv -= lv * xv;
                        }
                    }
                }
            }
        }
        r += RHS_UNROLL;
    }
    for r in r..nrhs {
        crate::blas::trsm_left_ln(n, 1, l, ldl, &mut b[r * ldb..r * ldb + n], ldb.max(1), unit);
    }
}

/// Solve `L' X = B` in place, blocked over RHS like [`trsm_ln`]. Per
/// column the dot products accumulate with `i` ascending exactly like the
/// scalar [`crate::blas::trsm_left_lt`] sweep.
pub fn trsm_lt(
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    unit: bool,
) {
    debug_assert!(ldl >= n.max(1) && ldb >= n.max(1));
    let at = |i: usize, j: usize| j * ldl + i;
    let mut r = 0;
    while r + RHS_UNROLL <= nrhs {
        let (c0, rest) = b[r * ldb..].split_at_mut(ldb);
        let (c1, rest) = rest.split_at_mut(ldb);
        let (c2, c3) = rest.split_at_mut(ldb);
        let (c0, c1, c2, c3) = (&mut c0[..n], &mut c1[..n], &mut c2[..n], &mut c3[..n]);
        for j in (0..n).rev() {
            let lc = &l[at(j + 1, j)..at(n, j)];
            let (mut a0, mut a1, mut a2, mut a3) = (c0[j], c1[j], c2[j], c3[j]);
            for (i, &lv) in lc.iter().enumerate() {
                a0 -= lv * c0[j + 1 + i];
                a1 -= lv * c1[j + 1 + i];
                a2 -= lv * c2[j + 1 + i];
                a3 -= lv * c3[j + 1 + i];
            }
            if !unit {
                let d = l[at(j, j)];
                a0 /= d;
                a1 /= d;
                a2 /= d;
                a3 /= d;
            }
            c0[j] = a0;
            c1[j] = a1;
            c2[j] = a2;
            c3[j] = a3;
        }
        r += RHS_UNROLL;
    }
    for r in r..nrhs {
        crate::blas::trsm_left_lt(n, 1, l, ldl, &mut b[r * ldb..r * ldb + n], ldb.max(1), unit);
    }
}

/// Off-diagonal forward apply: `Y <- Y - L21 * X`.
///
/// `l21` is `m x k` column-major with leading dimension `ldl`; `X` is
/// `k x nrhs` with leading dimension `ldx`; `Y` is `m x nrhs` with leading
/// dimension `ldy`. Per RHS column the update order matches the scalar
/// sweep (`j` ascending over `L` columns, `i` ascending over rows), with
/// no zero-skip, so results do not depend on how columns are grouped.
#[allow(clippy::too_many_arguments)]
pub fn gemm_block_sub(
    m: usize,
    k: usize,
    nrhs: usize,
    l21: &[f64],
    ldl: usize,
    x: &[f64],
    ldx: usize,
    y: &mut [f64],
    ldy: usize,
) {
    debug_assert!(ldl >= m.max(1) && ldy >= m.max(1) && ldx >= k.max(1));
    if m == 0 || k == 0 {
        return;
    }
    let mut r = 0;
    while r + RHS_UNROLL <= nrhs {
        // Split the Y group into four distinct columns so the compiler can
        // keep all four live without aliasing checks.
        let (y0, rest) = y[r * ldy..].split_at_mut(ldy);
        let (y1, rest) = rest.split_at_mut(ldy);
        let (y2, y3) = rest.split_at_mut(ldy);
        let (y0, y1, y2, y3) = (&mut y0[..m], &mut y1[..m], &mut y2[..m], &mut y3[..m]);
        let mut j = 0;
        while j + COL_UNROLL <= k {
            // 4 RHS x 4 L-column register block: each Y element takes the
            // four chained updates in ascending-j order, exactly as the
            // per-j loop below would apply them one at a time.
            let ca = &l21[j * ldl..j * ldl + m];
            let cb = &l21[(j + 1) * ldl..(j + 1) * ldl + m];
            let cc = &l21[(j + 2) * ldl..(j + 2) * ldl + m];
            let cd = &l21[(j + 3) * ldl..(j + 3) * ldl + m];
            let xr = |t: usize, jj: usize| x[(r + t) * ldx + j + jj];
            let (xa0, xb0, xc0, xd0) = (xr(0, 0), xr(0, 1), xr(0, 2), xr(0, 3));
            let (xa1, xb1, xc1, xd1) = (xr(1, 0), xr(1, 1), xr(1, 2), xr(1, 3));
            let (xa2, xb2, xc2, xd2) = (xr(2, 0), xr(2, 1), xr(2, 2), xr(2, 3));
            let (xa3, xb3, xc3, xd3) = (xr(3, 0), xr(3, 1), xr(3, 2), xr(3, 3));
            for i in 0..m {
                let (a, b, c, d) = (ca[i], cb[i], cc[i], cd[i]);
                y0[i] = (((y0[i] - a * xa0) - b * xb0) - c * xc0) - d * xd0;
                y1[i] = (((y1[i] - a * xa1) - b * xb1) - c * xc1) - d * xd1;
                y2[i] = (((y2[i] - a * xa2) - b * xb2) - c * xc2) - d * xd2;
                y3[i] = (((y3[i] - a * xa3) - b * xb3) - c * xc3) - d * xd3;
            }
            j += COL_UNROLL;
        }
        for j in j..k {
            let col = &l21[j * ldl..j * ldl + m];
            let x0 = x[r * ldx + j];
            let x1 = x[(r + 1) * ldx + j];
            let x2 = x[(r + 2) * ldx + j];
            let x3 = x[(r + 3) * ldx + j];
            for (i, &lv) in col.iter().enumerate() {
                y0[i] -= lv * x0;
                y1[i] -= lv * x1;
                y2[i] -= lv * x2;
                y3[i] -= lv * x3;
            }
        }
        r += RHS_UNROLL;
    }
    for r in r..nrhs {
        let yr = &mut y[r * ldy..r * ldy + m];
        for j in 0..k {
            let col = &l21[j * ldl..j * ldl + m];
            let xj = x[r * ldx + j];
            for (yi, &lv) in yr.iter_mut().zip(col) {
                *yi -= lv * xj;
            }
        }
    }
}

/// Off-diagonal backward apply: `X <- X - L21' * Y`.
///
/// Shapes as in [`gemm_block_sub`]: `l21` is `m x k` (`ldl`), `Y` is
/// `m x nrhs` (`ldy`), `X` is `k x nrhs` (`ldx`). Per column the dot
/// products accumulate with `i` ascending, matching the scalar backward
/// sweep exactly.
#[allow(clippy::too_many_arguments)]
pub fn gemm_block_t_sub(
    m: usize,
    k: usize,
    nrhs: usize,
    l21: &[f64],
    ldl: usize,
    y: &[f64],
    ldy: usize,
    x: &mut [f64],
    ldx: usize,
) {
    debug_assert!(ldl >= m.max(1) && ldy >= m.max(1) && ldx >= k.max(1));
    if m == 0 || k == 0 {
        return;
    }
    let mut r = 0;
    while r + RHS_UNROLL <= nrhs {
        let y0 = &y[r * ldy..r * ldy + m];
        let y1 = &y[(r + 1) * ldy..(r + 1) * ldy + m];
        let y2 = &y[(r + 2) * ldy..(r + 2) * ldy + m];
        let y3 = &y[(r + 3) * ldy..(r + 3) * ldy + m];
        let mut j = 0;
        while j + COL_UNROLL <= k {
            // 4 RHS x 4 L-column block: 16 independent dot products, each
            // accumulating with i ascending exactly like the scalar sweep.
            let ca = &l21[j * ldl..j * ldl + m];
            let cb = &l21[(j + 1) * ldl..(j + 1) * ldl + m];
            let cc = &l21[(j + 2) * ldl..(j + 2) * ldl + m];
            let cd = &l21[(j + 3) * ldl..(j + 3) * ldl + m];
            let (mut a00, mut a01, mut a02, mut a03) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut a10, mut a11, mut a12, mut a13) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut a20, mut a21, mut a22, mut a23) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut a30, mut a31, mut a32, mut a33) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for i in 0..m {
                let (a, b, c, d) = (ca[i], cb[i], cc[i], cd[i]);
                let (v0, v1, v2, v3) = (y0[i], y1[i], y2[i], y3[i]);
                a00 += a * v0;
                a01 += b * v0;
                a02 += c * v0;
                a03 += d * v0;
                a10 += a * v1;
                a11 += b * v1;
                a12 += c * v1;
                a13 += d * v1;
                a20 += a * v2;
                a21 += b * v2;
                a22 += c * v2;
                a23 += d * v2;
                a30 += a * v3;
                a31 += b * v3;
                a32 += c * v3;
                a33 += d * v3;
            }
            x[r * ldx + j] -= a00;
            x[r * ldx + j + 1] -= a01;
            x[r * ldx + j + 2] -= a02;
            x[r * ldx + j + 3] -= a03;
            x[(r + 1) * ldx + j] -= a10;
            x[(r + 1) * ldx + j + 1] -= a11;
            x[(r + 1) * ldx + j + 2] -= a12;
            x[(r + 1) * ldx + j + 3] -= a13;
            x[(r + 2) * ldx + j] -= a20;
            x[(r + 2) * ldx + j + 1] -= a21;
            x[(r + 2) * ldx + j + 2] -= a22;
            x[(r + 2) * ldx + j + 3] -= a23;
            x[(r + 3) * ldx + j] -= a30;
            x[(r + 3) * ldx + j + 1] -= a31;
            x[(r + 3) * ldx + j + 2] -= a32;
            x[(r + 3) * ldx + j + 3] -= a33;
            j += COL_UNROLL;
        }
        for j in j..k {
            let col = &l21[j * ldl..j * ldl + m];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (i, &lv) in col.iter().enumerate() {
                a0 += lv * y0[i];
                a1 += lv * y1[i];
                a2 += lv * y2[i];
                a3 += lv * y3[i];
            }
            x[r * ldx + j] -= a0;
            x[(r + 1) * ldx + j] -= a1;
            x[(r + 2) * ldx + j] -= a2;
            x[(r + 3) * ldx + j] -= a3;
        }
        r += RHS_UNROLL;
    }
    for r in r..nrhs {
        let yr = &y[r * ldy..r * ldy + m];
        for j in 0..k {
            let col = &l21[j * ldl..j * ldl + m];
            let mut acc = 0.0f64;
            for (&lv, &yv) in col.iter().zip(yr) {
                acc += lv * yv;
            }
            x[r * ldx + j] -= acc;
        }
    }
}

/// Forward apply, interleaved layout: `Y <- Y - L21 * X` where `X` holds
/// `k` rows of `nrhs` contiguous lane values (`x[j*nrhs + r]`) and `Y`
/// holds `m` such rows. Per lane the update order is: 4-column panels in
/// ascending `j`, chained in ascending column order per row visit, then
/// tail columns one at a time — fixed and independent of `nrhs`.
pub fn gemm_block_sub_rm(
    m: usize,
    k: usize,
    nrhs: usize,
    l21: &[f64],
    ldl: usize,
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert!(ldl >= m.max(1) && x.len() >= k * nrhs && y.len() >= m * nrhs);
    let mut j = 0;
    while j + COL_UNROLL <= k {
        let ca = &l21[j * ldl..j * ldl + m];
        let cb = &l21[(j + 1) * ldl..(j + 1) * ldl + m];
        let cc = &l21[(j + 2) * ldl..(j + 2) * ldl + m];
        let cd = &l21[(j + 3) * ldl..(j + 3) * ldl + m];
        let xa = &x[j * nrhs..(j + 1) * nrhs];
        let xb = &x[(j + 1) * nrhs..(j + 2) * nrhs];
        let xc = &x[(j + 2) * nrhs..(j + 3) * nrhs];
        let xd = &x[(j + 3) * nrhs..(j + 4) * nrhs];
        for i in 0..m {
            let (a, b, c, d) = (ca[i], cb[i], cc[i], cd[i]);
            let row = &mut y[i * nrhs..(i + 1) * nrhs];
            for (r, yv) in row.iter_mut().enumerate() {
                *yv = (((*yv - a * xa[r]) - b * xb[r]) - c * xc[r]) - d * xd[r];
            }
        }
        j += COL_UNROLL;
    }
    for j in j..k {
        let col = &l21[j * ldl..j * ldl + m];
        let xj = &x[j * nrhs..(j + 1) * nrhs];
        for (i, &lv) in col.iter().enumerate() {
            let row = &mut y[i * nrhs..(i + 1) * nrhs];
            for (r, yv) in row.iter_mut().enumerate() {
                *yv -= lv * xj[r];
            }
        }
    }
}

/// Lanes per accumulator group in the transposed interleaved kernels:
/// small enough that the per-group partial sums stay in vector registers.
const LANE_GROUP: usize = 4;

/// Backward apply, interleaved layout: `X <- X - L21' * Y` (shapes as in
/// [`gemm_block_sub_rm`]). Per lane each dot product accumulates from zero
/// with `i` ascending and is subtracted once — the order is fixed and
/// independent of `nrhs` (lane grouping never touches a lane's own chain).
pub fn gemm_block_t_sub_rm(
    m: usize,
    k: usize,
    nrhs: usize,
    l21: &[f64],
    ldl: usize,
    y: &[f64],
    x: &mut [f64],
) {
    debug_assert!(ldl >= m.max(1) && y.len() >= m * nrhs && x.len() >= k * nrhs);
    let mut j = 0;
    while j + COL_UNROLL <= k {
        let ca = &l21[j * ldl..j * ldl + m];
        let cb = &l21[(j + 1) * ldl..(j + 1) * ldl + m];
        let cc = &l21[(j + 2) * ldl..(j + 2) * ldl + m];
        let cd = &l21[(j + 3) * ldl..(j + 3) * ldl + m];
        let mut g = 0;
        while g + LANE_GROUP <= nrhs {
            let mut aa = [0.0f64; LANE_GROUP];
            let mut ab = [0.0f64; LANE_GROUP];
            let mut ac = [0.0f64; LANE_GROUP];
            let mut ad = [0.0f64; LANE_GROUP];
            for i in 0..m {
                let yv = &y[i * nrhs + g..i * nrhs + g + LANE_GROUP];
                let (a, b, c, d) = (ca[i], cb[i], cc[i], cd[i]);
                for t in 0..LANE_GROUP {
                    aa[t] += a * yv[t];
                    ab[t] += b * yv[t];
                    ac[t] += c * yv[t];
                    ad[t] += d * yv[t];
                }
            }
            for t in 0..LANE_GROUP {
                x[j * nrhs + g + t] -= aa[t];
                x[(j + 1) * nrhs + g + t] -= ab[t];
                x[(j + 2) * nrhs + g + t] -= ac[t];
                x[(j + 3) * nrhs + g + t] -= ad[t];
            }
            g += LANE_GROUP;
        }
        for r in g..nrhs {
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for i in 0..m {
                let v = y[i * nrhs + r];
                a0 += ca[i] * v;
                a1 += cb[i] * v;
                a2 += cc[i] * v;
                a3 += cd[i] * v;
            }
            x[j * nrhs + r] -= a0;
            x[(j + 1) * nrhs + r] -= a1;
            x[(j + 2) * nrhs + r] -= a2;
            x[(j + 3) * nrhs + r] -= a3;
        }
        j += COL_UNROLL;
    }
    for j in j..k {
        let col = &l21[j * ldl..j * ldl + m];
        let mut g = 0;
        while g + LANE_GROUP <= nrhs {
            let mut acc = [0.0f64; LANE_GROUP];
            for (i, &lv) in col.iter().enumerate() {
                let yv = &y[i * nrhs + g..i * nrhs + g + LANE_GROUP];
                for t in 0..LANE_GROUP {
                    acc[t] += lv * yv[t];
                }
            }
            for t in 0..LANE_GROUP {
                x[j * nrhs + g + t] -= acc[t];
            }
            g += LANE_GROUP;
        }
        for r in g..nrhs {
            let mut acc = 0.0f64;
            for (i, &lv) in col.iter().enumerate() {
                acc += lv * y[i * nrhs + r];
            }
            x[j * nrhs + r] -= acc;
        }
    }
}

/// Solve `L X = B` in place, interleaved layout (`b[i*nrhs + r]`). The
/// triangle is processed in 4-column panels: solve the small diagonal
/// block, then rank-4-update the rows below through
/// [`gemm_block_sub_rm`]. Per lane the order is fixed and independent of
/// `nrhs`; there is no zero-skip (unlike the column-major [`trsm_ln`]).
pub fn trsm_ln_rm(n: usize, nrhs: usize, l: &[f64], ldl: usize, b: &mut [f64], unit: bool) {
    debug_assert!(ldl >= n.max(1) && b.len() >= n * nrhs);
    let at = |i: usize, j: usize| j * ldl + i;
    let mut jp = 0;
    while jp + COL_UNROLL <= n {
        for jj in jp..jp + COL_UNROLL {
            let (head, tail) = b.split_at_mut((jj + 1) * nrhs);
            let rowj = &mut head[jj * nrhs..];
            if !unit {
                let d = l[at(jj, jj)];
                for v in rowj.iter_mut() {
                    *v /= d;
                }
            }
            for i in jj + 1..jp + COL_UNROLL {
                let lv = l[at(i, jj)];
                let row = &mut tail[(i - jj - 1) * nrhs..(i - jj) * nrhs];
                for (r, yv) in row.iter_mut().enumerate() {
                    *yv -= lv * rowj[r];
                }
            }
        }
        if jp + COL_UNROLL < n {
            let (x, y) = b.split_at_mut((jp + COL_UNROLL) * nrhs);
            gemm_block_sub_rm(
                n - jp - COL_UNROLL,
                COL_UNROLL,
                nrhs,
                &l[at(jp + COL_UNROLL, jp)..],
                ldl,
                &x[jp * nrhs..],
                y,
            );
        }
        jp += COL_UNROLL;
    }
    for jj in jp..n {
        let (head, tail) = b.split_at_mut((jj + 1) * nrhs);
        let rowj = &mut head[jj * nrhs..];
        if !unit {
            let d = l[at(jj, jj)];
            for v in rowj.iter_mut() {
                *v /= d;
            }
        }
        for i in jj + 1..n {
            let lv = l[at(i, jj)];
            let row = &mut tail[(i - jj - 1) * nrhs..(i - jj) * nrhs];
            for (r, yv) in row.iter_mut().enumerate() {
                *yv -= lv * rowj[r];
            }
        }
    }
}

/// Solve `L' X = B` in place, interleaved layout. Mirrors [`trsm_ln_rm`]:
/// tail columns first (descending), then 4-column panels descending, each
/// taking the below-panel contribution through [`gemm_block_t_sub_rm`]
/// before the small intra-panel sweep. Per lane the order is fixed and
/// independent of `nrhs`.
pub fn trsm_lt_rm(n: usize, nrhs: usize, l: &[f64], ldl: usize, b: &mut [f64], unit: bool) {
    debug_assert!(ldl >= n.max(1) && b.len() >= n * nrhs);
    let at = |i: usize, j: usize| j * ldl + i;
    let tail_start = n - n % COL_UNROLL;
    for jj in (tail_start..n).rev() {
        let (head, below) = b.split_at_mut((jj + 1) * nrhs);
        let rowj = &mut head[jj * nrhs..];
        let col = &l[at(jj + 1, jj)..at(n, jj)];
        let mut g = 0;
        while g + LANE_GROUP <= nrhs {
            let mut acc = [0.0f64; LANE_GROUP];
            for (i, &lv) in col.iter().enumerate() {
                let yv = &below[i * nrhs + g..i * nrhs + g + LANE_GROUP];
                for t in 0..LANE_GROUP {
                    acc[t] += lv * yv[t];
                }
            }
            for t in 0..LANE_GROUP {
                rowj[g + t] -= acc[t];
            }
            g += LANE_GROUP;
        }
        for r in g..nrhs {
            let mut acc = 0.0f64;
            for (i, &lv) in col.iter().enumerate() {
                acc += lv * below[i * nrhs + r];
            }
            rowj[r] -= acc;
        }
        if !unit {
            let d = l[at(jj, jj)];
            for v in rowj.iter_mut() {
                *v /= d;
            }
        }
    }
    let mut jp = tail_start;
    while jp >= COL_UNROLL {
        jp -= COL_UNROLL;
        if jp + COL_UNROLL < n {
            let (x, y) = b.split_at_mut((jp + COL_UNROLL) * nrhs);
            gemm_block_t_sub_rm(
                n - jp - COL_UNROLL,
                COL_UNROLL,
                nrhs,
                &l[at(jp + COL_UNROLL, jp)..],
                ldl,
                y,
                &mut x[jp * nrhs..],
            );
        }
        for jj in (jp..jp + COL_UNROLL).rev() {
            let (head, below) = b.split_at_mut((jj + 1) * nrhs);
            let rowj = &mut head[jj * nrhs..];
            for i in jj + 1..jp + COL_UNROLL {
                let lv = l[at(i, jj)];
                let row = &below[(i - jj - 1) * nrhs..(i - jj) * nrhs];
                for (r, v) in rowj.iter_mut().enumerate() {
                    *v -= lv * row[r];
                }
            }
            if !unit {
                let d = l[at(jj, jj)];
                for v in rowj.iter_mut() {
                    *v /= d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        }
    }

    /// Scalar single-column references with the exact op order the blocked
    /// kernels promise (no zero-skip, ascending loops).
    fn gemm_sub_ref(m: usize, k: usize, l21: &[f64], ldl: usize, x: &[f64], y: &mut [f64]) {
        for j in 0..k {
            let xj = x[j];
            for i in 0..m {
                y[i] -= l21[j * ldl + i] * xj;
            }
        }
    }

    fn gemm_t_sub_ref(m: usize, k: usize, l21: &[f64], ldl: usize, y: &[f64], x: &mut [f64]) {
        for j in 0..k {
            let mut acc = 0.0;
            for i in 0..m {
                acc += l21[j * ldl + i] * y[i];
            }
            x[j] -= acc;
        }
    }

    #[test]
    fn block_applies_match_per_column_reference_bitwise() {
        let mut r = det_rng(7);
        for &(m, k, nrhs) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 2),
            (8, 8, 4),
            (13, 6, 7),
            (9, 4, 32),
            (3, 11, 5),
        ] {
            let ldl = m + 2;
            let l21: Vec<f64> = (0..ldl * k).map(|_| r()).collect();
            let x: Vec<f64> = (0..k * nrhs).map(|_| r()).collect();
            let y: Vec<f64> = (0..m * nrhs).map(|_| r()).collect();

            // Forward apply.
            let mut yb = y.clone();
            gemm_block_sub(m, k, nrhs, &l21, ldl, &x, k, &mut yb, m);
            for c in 0..nrhs {
                let mut yr: Vec<f64> = y[c * m..(c + 1) * m].to_vec();
                gemm_sub_ref(m, k, &l21, ldl, &x[c * k..(c + 1) * k], &mut yr);
                for (a, b) in yb[c * m..(c + 1) * m].iter().zip(&yr) {
                    assert_eq!(a.to_bits(), b.to_bits(), "fwd m={m} k={k} nrhs={nrhs}");
                }
            }

            // Backward apply.
            let mut xb = x.clone();
            gemm_block_t_sub(m, k, nrhs, &l21, ldl, &y, m, &mut xb, k);
            for c in 0..nrhs {
                let mut xr: Vec<f64> = x[c * k..(c + 1) * k].to_vec();
                gemm_t_sub_ref(m, k, &l21, ldl, &y[c * m..(c + 1) * m], &mut xr);
                for (a, b) in xb[c * k..(c + 1) * k].iter().zip(&xr) {
                    assert_eq!(a.to_bits(), b.to_bits(), "bwd m={m} k={k} nrhs={nrhs}");
                }
            }
        }
    }

    #[test]
    fn strided_blocks_only_touch_their_rows() {
        // ldx/ldy larger than the logical block: rows past `m`/`k` must
        // survive untouched (the solver passes whole-vector strides).
        let mut r = det_rng(11);
        let (m, k, nrhs, ldx, ldy) = (4usize, 3usize, 5usize, 10usize, 9usize);
        let l21: Vec<f64> = (0..m * k).map(|_| r()).collect();
        let x: Vec<f64> = (0..ldx * nrhs).map(|_| r()).collect();
        let mut y: Vec<f64> = (0..ldy * nrhs).map(|_| r()).collect();
        let y0 = y.clone();
        gemm_block_sub(m, k, nrhs, &l21, m, &x, ldx, &mut y, ldy);
        for c in 0..nrhs {
            for i in m..ldy {
                assert_eq!(y[c * ldy + i], y0[c * ldy + i]);
            }
        }
        let mut x2 = x.clone();
        gemm_block_t_sub(m, k, nrhs, &l21, m, &y, ldy, &mut x2, ldx);
        for c in 0..nrhs {
            for j in k..ldx {
                assert_eq!(x2[c * ldx + j], x[c * ldx + j]);
            }
        }
    }

    /// Extract lane `r` of an interleaved block into its own nrhs=1 block.
    fn lane(b: &[f64], rows: usize, nrhs: usize, r: usize) -> Vec<f64> {
        (0..rows).map(|i| b[i * nrhs + r]).collect()
    }

    #[test]
    fn interleaved_kernels_are_nrhs_independent_bitwise() {
        // The contract the solver relies on: for every kernel in the _rm
        // family, lane r of a blocked run equals a full nrhs=1 run of the
        // same kernel on that lane alone.
        let mut r = det_rng(23);
        for &(m, k, nrhs) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 2),
            (8, 8, 4),
            (13, 6, 7),
            (9, 4, 32),
            (3, 11, 5),
            (17, 5, 3),
        ] {
            let ldl = m + 2;
            let l21: Vec<f64> = (0..ldl * k).map(|_| r()).collect();
            let x: Vec<f64> = (0..k * nrhs).map(|_| r()).collect();
            let y: Vec<f64> = (0..m * nrhs).map(|_| r()).collect();

            let mut yb = y.clone();
            gemm_block_sub_rm(m, k, nrhs, &l21, ldl, &x, &mut yb);
            let mut xb = x.clone();
            gemm_block_t_sub_rm(m, k, nrhs, &l21, ldl, &y, &mut xb);
            for c in 0..nrhs {
                let mut y1 = lane(&y, m, nrhs, c);
                gemm_block_sub_rm(m, k, 1, &l21, ldl, &lane(&x, k, nrhs, c), &mut y1);
                for (a, b) in lane(&yb, m, nrhs, c).iter().zip(&y1) {
                    assert_eq!(a.to_bits(), b.to_bits(), "fwd m={m} k={k} nrhs={nrhs}");
                }
                let mut x1 = lane(&x, k, nrhs, c);
                gemm_block_t_sub_rm(m, k, 1, &l21, ldl, &lane(&y, m, nrhs, c), &mut x1);
                for (a, b) in lane(&xb, k, nrhs, c).iter().zip(&x1) {
                    assert_eq!(a.to_bits(), b.to_bits(), "bwd m={m} k={k} nrhs={nrhs}");
                }
            }
        }

        // The triangular solves, unit and non-unit, at widths around the
        // panel size.
        for n in [1usize, 3, 4, 6, 8, 11] {
            let ld = n + 1;
            let mut l = vec![0.0; ld * n];
            for j in 0..n {
                for i in j..n {
                    l[j * ld + i] = r();
                }
                l[j * ld + j] = 2.0 + r().abs();
            }
            for unit in [false, true] {
                for nrhs in [1usize, 2, 4, 7] {
                    let b: Vec<f64> = (0..n * nrhs).map(|_| r()).collect();
                    let mut fwd = b.clone();
                    trsm_ln_rm(n, nrhs, &l, ld, &mut fwd, unit);
                    let mut bwd = b.clone();
                    trsm_lt_rm(n, nrhs, &l, ld, &mut bwd, unit);
                    for c in 0..nrhs {
                        let mut f1 = lane(&b, n, nrhs, c);
                        trsm_ln_rm(n, 1, &l, ld, &mut f1, unit);
                        for (a, q) in lane(&fwd, n, nrhs, c).iter().zip(&f1) {
                            assert_eq!(a.to_bits(), q.to_bits(), "ln n={n} nrhs={nrhs}");
                        }
                        let mut b1 = lane(&b, n, nrhs, c);
                        trsm_lt_rm(n, 1, &l, ld, &mut b1, unit);
                        for (a, q) in lane(&bwd, n, nrhs, c).iter().zip(&b1) {
                            assert_eq!(a.to_bits(), q.to_bits(), "lt n={n} nrhs={nrhs}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_trsm_agrees_with_column_major_to_rounding() {
        // Panel blocking changes the op order, so the two families agree
        // numerically (same triangular system), not bit for bit.
        let mut r = det_rng(31);
        let n = 10;
        let ld = n;
        let mut l = vec![0.0; ld * n];
        for j in 0..n {
            for i in j..n {
                l[j * ld + i] = r();
            }
            l[j * ld + j] = 3.0 + r().abs();
        }
        let nrhs = 5;
        let b: Vec<f64> = (0..n * nrhs).map(|_| r()).collect();
        // Column-major reference.
        let mut cm = b.clone();
        // Re-pack interleaved b into column-major.
        for c in 0..nrhs {
            for i in 0..n {
                cm[c * n + i] = b[i * nrhs + c];
            }
        }
        trsm_ln(n, nrhs, &l, ld, &mut cm, n, false);
        trsm_lt(n, nrhs, &l, ld, &mut cm, n, false);
        let mut il = b.clone();
        trsm_ln_rm(n, nrhs, &l, ld, &mut il, false);
        trsm_lt_rm(n, nrhs, &l, ld, &mut il, false);
        for c in 0..nrhs {
            for i in 0..n {
                let (u, v) = (cm[c * n + i], il[i * nrhs + c]);
                assert!(
                    (u - v).abs() <= 1e-12 * v.abs().max(1.0),
                    "col {c} row {i}: {u} vs {v}"
                );
            }
        }
    }

    #[test]
    fn trsm_reexports_solve_triangular_blocks() {
        // L (unit or not) forward+backward through the re-exported TRSMs
        // reproduces per-column trsv bitwise.
        use crate::trsv;
        let mut r = det_rng(3);
        let n = 7;
        let ld = n + 1;
        let mut l = vec![0.0; ld * n];
        for j in 0..n {
            for i in j..n {
                l[j * ld + i] = r();
            }
            l[j * ld + j] = 2.0 + r().abs();
        }
        for unit in [false, true] {
            let nrhs = 6;
            let b: Vec<f64> = (0..ld * nrhs).map(|_| r()).collect();
            let mut blk = b.clone();
            trsm_ln(n, nrhs, &l, ld, &mut blk, ld, unit);
            trsm_lt(n, nrhs, &l, ld, &mut blk, ld, unit);
            for c in 0..nrhs {
                let mut col: Vec<f64> = b[c * ld..c * ld + n].to_vec();
                trsv::trsv_ln(n, &l, ld, &mut col, unit);
                trsv::trsv_lt(n, &l, ld, &mut col, unit);
                for (a, bq) in blk[c * ld..c * ld + n].iter().zip(&col) {
                    assert_eq!(a.to_bits(), bq.to_bits(), "unit={unit}");
                }
            }
        }
    }
}
