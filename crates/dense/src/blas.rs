//! BLAS-3 style kernels on column-major buffers with explicit leading
//! dimensions.
//!
//! Only the operations the multifrontal factorization needs are provided,
//! in the exact variants it needs them:
//!
//! - [`gemm_nt`] — `C ← α A Bᵀ + β C` (the outer-product update shape);
//! - [`syrk_ln`] — lower-triangle `C ← α A Aᵀ + β C` (Schur complements);
//! - [`gemm_nt_ln`] — lower-triangle `C ← C + α A Bᵀ` (LDLᵀ trailing
//!   updates, where the two operands differ by the `D` scaling);
//! - [`trsm_right_lt`] — `X Lᵀ = B` (panel scaling below a factored block);
//! - [`trsm_left_ln`] / [`trsm_left_lt`] — forward/backward block solves.
//!
//! The rank-k updates are backed by the packed register-blocked core in
//! [`crate::pack`]; see that module for the blocking scheme and the
//! per-entry determinism contract the engines rely on. The triangular
//! solves stay unpacked (their `n` is a panel width, at most
//! [`crate::chol::NB`], in the factorization) but the right-solve blocks
//! its column sweep through [`gemm_nt`] when callers hand it a wide
//! triangle.

use crate::pack;

/// Column block size for the blocked [`trsm_right_lt`] sweep. Matches the
/// factorization panel width (`chol::NB`) so factorization-path calls take
/// the single-block unblocked path.
const TRSM_NB: usize = 48;

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Scale `C ← β C` over full `m`-row columns (the `gemm` pre-pass).
fn scale_full(m: usize, n: usize, beta: f64, c: &mut [f64], ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let cj = &mut c[at(ldc, 0, j)..at(ldc, m, j)];
        if beta == 0.0 {
            cj.fill(0.0);
        } else {
            for v in cj {
                *v *= beta;
            }
        }
    }
}

/// `C ← α A Bᵀ + β C` where `A` is `m x k`, `B` is `n x k`, `C` is `m x n`,
/// all column-major with leading dimensions `lda`, `ldb`, `ldc`.
#[allow(clippy::too_many_arguments)] // BLAS calling convention
pub fn gemm_nt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= m.max(1) && ldb >= n.max(1) && ldc >= m.max(1));
    scale_full(m, n, beta, c, ldc);
    pack::gemm_packed(m, n, k, alpha, a, lda, b, ldb, c, ldc, false);
}

/// Lower-triangle symmetric rank-k update: `C ← α A Aᵀ + β C`, touching only
/// `C[i][j]` with `i >= j`. `A` is `n x k`, `C` is `n x n`.
#[allow(clippy::too_many_arguments)] // BLAS calling convention
pub fn syrk_ln(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= n.max(1) && ldc >= n.max(1));
    if beta != 1.0 {
        for j in 0..n {
            let cj = &mut c[at(ldc, j, j)..at(ldc, n, j)];
            if beta == 0.0 {
                cj.fill(0.0);
            } else {
                for v in cj {
                    *v *= beta;
                }
            }
        }
    }
    pack::gemm_packed(n, n, k, alpha, a, lda, a, lda, c, ldc, true);
}

/// Lower-triangle general rank-k update: `C ← C + α A Bᵀ`, touching only
/// `C[i][j]` with `i >= j`. `A` and `B` are `n x k`, `C` is `n x n`.
///
/// This is the LDLᵀ trailing-update shape (`C ← C − L₂₁ (L₂₁ D)ᵀ`), where
/// the operands differ by a diagonal scaling so `syrk_ln` does not apply.
#[allow(clippy::too_many_arguments)] // BLAS calling convention
pub fn gemm_nt_ln(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= n.max(1) && ldb >= n.max(1) && ldc >= n.max(1));
    pack::gemm_packed(n, n, k, alpha, a, lda, b, ldb, c, ldc, true);
}

/// Solve `X Lᵀ = B` in place (`B ← B L⁻ᵀ`), where `L` is `n x n` lower
/// triangular (not unit) and `B` is `m x n`.
///
/// This is the panel operation of Cholesky: given the factored diagonal
/// block `L11`, the subdiagonal panel becomes `L21 = A21 L11⁻ᵀ`.
///
/// Columns are swept in [`TRSM_NB`] blocks: contributions of previously
/// solved column blocks are folded in with one [`gemm_nt`] per block, then
/// the block itself is solved unblocked against its diagonal triangle. For
/// `n <= TRSM_NB` (every factorization-path call) this degenerates to the
/// pure unblocked sweep.
pub fn trsm_right_lt(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    debug_assert!(ldl >= n.max(1) && ldb >= m.max(1));
    if m == 0 {
        return;
    }
    let mut j0 = 0;
    while j0 < n {
        let jb = TRSM_NB.min(n - j0);
        if j0 > 0 {
            // B[:, j0..j0+jb] -= B[:, 0..j0] * L[j0..j0+jb, 0..j0]ᵀ.
            let (solved, rest) = b.split_at_mut(j0 * ldb);
            gemm_nt(
                m,
                jb,
                j0,
                -1.0,
                solved,
                ldb,
                &l[j0..],
                ldl,
                1.0,
                &mut rest[..(jb - 1) * ldb + m],
                ldb,
            );
        }
        // Unblocked solve of the block against its diagonal triangle.
        // Column j of X depends on columns j0..j of the same block:
        // B[:,j] = Σ_{t<=j} X[:,t] L[j,t].
        for j in j0..j0 + jb {
            for t in j0..j {
                let ljt = l[at(ldl, j, t)];
                if ljt == 0.0 {
                    continue;
                }
                let (tcol, jcol) = (t * ldb, j * ldb);
                // Split to satisfy the borrow checker: t < j always.
                let (lo, hi) = b.split_at_mut(jcol);
                let xt = &lo[tcol..tcol + m];
                let bj = &mut hi[..m];
                for (bv, &xv) in bj.iter_mut().zip(xt) {
                    *bv -= xv * ljt;
                }
            }
            let inv = 1.0 / l[at(ldl, j, j)];
            for v in &mut b[at(ldb, 0, j)..at(ldb, m, j)] {
                *v *= inv;
            }
        }
        j0 += jb;
    }
}

/// Solve `L X = B` in place (`B ← L⁻¹ B`), `L` lower `n x n`, `B` `n x nrhs`.
/// If `unit` is true the diagonal of `L` is taken as 1 (LDLᵀ convention).
pub fn trsm_left_ln(
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    unit: bool,
) {
    debug_assert!(ldl >= n.max(1) && ldb >= n.max(1));
    for r in 0..nrhs {
        let col = &mut b[r * ldb..r * ldb + n];
        for j in 0..n {
            let mut xj = col[j];
            if !unit {
                xj /= l[at(ldl, j, j)];
            }
            col[j] = xj;
            if xj != 0.0 {
                let lc = &l[at(ldl, j + 1, j)..at(ldl, n, j)];
                let (_, below) = col.split_at_mut(j + 1);
                for (bv, &lv) in below.iter_mut().zip(lc) {
                    *bv -= lv * xj;
                }
            }
        }
    }
}

/// Solve `Lᵀ X = B` in place (`B ← L⁻ᵀ B`), `L` lower `n x n`, `B` `n x nrhs`.
pub fn trsm_left_lt(
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    unit: bool,
) {
    debug_assert!(ldl >= n.max(1) && ldb >= n.max(1));
    for r in 0..nrhs {
        let col = &mut b[r * ldb..r * ldb + n];
        for j in (0..n).rev() {
            let lc = &l[at(ldl, j + 1, j)..at(ldl, n, j)];
            let mut acc = col[j];
            for (&lv, &xv) in lc.iter().zip(&col[j + 1..n]) {
                acc -= lv * xv;
            }
            col[j] = if unit { acc } else { acc / l[at(ldl, j, j)] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DMat;

    fn det_rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        }
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let mut r = det_rng(1);
        let (m, n, k) = (7, 5, 9);
        let a = DMat::from_fn(m, k, |_, _| r());
        let b = DMat::from_fn(n, k, |_, _| r());
        let c0 = DMat::from_fn(m, n, |_, _| r());

        let mut c = c0.clone();
        gemm_nt(
            m,
            n,
            k,
            2.0,
            a.as_slice(),
            m,
            b.as_slice(),
            n,
            0.5,
            c.as_mut_slice(),
            m,
        );
        // Reference: 2 * A * B^T + 0.5 * C0.
        let mut reference = a.matmul(&b.transpose());
        for j in 0..n {
            for i in 0..m {
                reference[(i, j)] = 2.0 * reference[(i, j)] + 0.5 * c0[(i, j)];
            }
        }
        assert!(c.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn gemm_nt_respects_leading_dimension() {
        // Embed a 2x2 product inside larger buffers.
        let (lda, ldb, ldc) = (4, 3, 5);
        let mut a = vec![0.0; lda * 2];
        let mut b = vec![0.0; ldb * 2];
        let mut c = vec![9.0; ldc * 2];
        // A = [1 2; 3 4] (col-major within ld), B = I.
        a[0] = 1.0;
        a[1] = 3.0;
        a[lda] = 2.0;
        a[lda + 1] = 4.0;
        b[0] = 1.0;
        b[ldb + 1] = 1.0;
        gemm_nt(2, 2, 2, 1.0, &a, lda, &b, ldb, 0.0, &mut c, ldc);
        assert_eq!(&c[0..2], &[1.0, 3.0]);
        assert_eq!(&c[ldc..ldc + 2], &[2.0, 4.0]);
        // Padding untouched beyond the written rows.
        assert_eq!(c[2], 9.0);
    }

    #[test]
    // Too many interpreted flops for Miri; the small-dim tests above walk
    // the same pack/microkernel/store paths.
    #[cfg_attr(miri, ignore)]
    fn gemm_handles_large_blocked_path() {
        // Exercise the KC/NC tiling with dims beyond one tile.
        let mut r = det_rng(2);
        let (m, n, k) = (30, 150, 80);
        let a = DMat::from_fn(m, k, |_, _| r());
        let b = DMat::from_fn(n, k, |_, _| r());
        let mut c = DMat::zeros(m, n);
        gemm_nt(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            m,
        );
        let reference = a.matmul(&b.transpose());
        assert!(c.max_abs_diff(&reference) < 1e-11);
    }

    #[test]
    // Crossing MC/NC/KC needs >512-wide operands — too slow under Miri.
    #[cfg_attr(miri, ignore)]
    fn gemm_crosses_every_cache_block_boundary() {
        // Dimensions straddling MC/NC/KC with ragged remainders.
        let mut r = det_rng(7);
        let (m, n, k) = (
            crate::pack::MC + 3,
            crate::pack::NC + 5,
            crate::pack::KC + 2,
        );
        let a = DMat::from_fn(m, k, |_, _| r());
        let b = DMat::from_fn(n, k, |_, _| r());
        let mut c = DMat::zeros(m, n);
        gemm_nt(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            m,
        );
        let mut reference = DMat::zeros(m, n);
        crate::naive::gemm_nt(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            n,
            0.0,
            reference.as_mut_slice(),
            m,
        );
        assert!(c.max_abs_diff(&reference) < 1e-10);
    }

    #[test]
    fn syrk_ln_matches_gemm_on_lower() {
        let mut r = det_rng(3);
        let (n, k) = (9, 6);
        let a = DMat::from_fn(n, k, |_, _| r());
        let mut c = DMat::zeros(n, n);
        syrk_ln(n, k, -1.0, a.as_slice(), n, 1.0, c.as_mut_slice(), n);
        let full = a.matmul(&a.transpose());
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    assert!((c[(i, j)] + full[(i, j)]).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must stay untouched");
                }
            }
        }
    }

    #[test]
    fn gemm_nt_ln_matches_masked_gemm() {
        let mut r = det_rng(8);
        let (n, k) = (37, 17);
        let a = DMat::from_fn(n, k, |_, _| r());
        let b = DMat::from_fn(n, k, |_, _| r());
        let mut c = DMat::zeros(n, n);
        gemm_nt_ln(
            n,
            k,
            -1.0,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            c.as_mut_slice(),
            n,
        );
        let full = a.matmul(&b.transpose());
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    assert!((c[(i, j)] + full[(i, j)]).abs() < 1e-11);
                } else {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must stay untouched");
                }
            }
        }
    }

    #[test]
    fn trsm_right_lt_inverts_multiplication() {
        let mut r = det_rng(4);
        let (m, n) = (6, 4);
        // Well-conditioned lower L: random strictly lower + dominant diagonal.
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j {
                r() * 0.3
            } else if i == j {
                2.0 + r().abs()
            } else {
                0.0
            }
        });
        let x = DMat::from_fn(m, n, |_, _| r());
        // B = X * L^T, then solve back.
        let mut b = x.matmul(&l.transpose());
        trsm_right_lt(m, n, l.as_slice(), n, b.as_mut_slice(), m);
        assert!(b.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn trsm_right_lt_blocked_path_inverts_multiplication() {
        // n > TRSM_NB forces the gemm-backed column-block sweep.
        let mut r = det_rng(9);
        let (m, n) = (11, TRSM_NB + 13);
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j {
                r() * 0.1
            } else if i == j {
                2.0 + r().abs()
            } else {
                0.0
            }
        });
        let x = DMat::from_fn(m, n, |_, _| r());
        let mut b = x.matmul(&l.transpose());
        trsm_right_lt(m, n, l.as_slice(), n, b.as_mut_slice(), m);
        assert!(b.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn trsm_left_ln_and_lt_roundtrip() {
        let mut r = det_rng(5);
        let n = 7;
        let nrhs = 3;
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j {
                r() * 0.4
            } else if i == j {
                1.5 + r().abs()
            } else {
                0.0
            }
        });
        let x = DMat::from_fn(n, nrhs, |_, _| r());
        let mut b = l.matmul(&x);
        trsm_left_ln(n, nrhs, l.as_slice(), n, b.as_mut_slice(), n, false);
        assert!(b.max_abs_diff(&x) < 1e-12);

        let mut b2 = l.transpose().matmul(&x);
        trsm_left_lt(n, nrhs, l.as_slice(), n, b2.as_mut_slice(), n, false);
        assert!(b2.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn trsm_unit_diagonal_variants() {
        let mut r = det_rng(6);
        let n = 5;
        // Unit lower triangular.
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j {
                r() * 0.5
            } else if i == j {
                1.0
            } else {
                0.0
            }
        });
        let x = DMat::from_fn(n, 2, |_, _| r());
        let mut b = l.matmul(&x);
        // Pass garbage on the diagonal to prove `unit = true` ignores it.
        let mut lg = l.clone();
        for i in 0..n {
            lg[(i, i)] = 123.0;
        }
        trsm_left_ln(n, 2, lg.as_slice(), n, b.as_mut_slice(), n, true);
        assert!(b.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn degenerate_sizes_are_noops() {
        let mut c = [1.0; 1];
        gemm_nt(0, 0, 0, 1.0, &[], 1, &[], 1, 1.0, &mut c, 1);
        syrk_ln(0, 0, 1.0, &[], 1, 1.0, &mut c, 1);
        gemm_nt_ln(0, 0, 1.0, &[], 1, &[], 1, &mut c, 1);
        trsm_right_lt(0, 0, &[], 1, &mut c, 1);
        assert_eq!(c[0], 1.0);
    }
}
