//! Blocked dense Cholesky and LDLᵀ, full and **partial**.
//!
//! The partial variants are the heart of the multifrontal method: a frontal
//! matrix of order `nf` has its first `npiv` variables eliminated, leaving
//! the Schur complement of the remaining `nf - npiv` in the trailing block.
//! Storage is column-major lower triangle; the strict upper triangle is
//! never read or written.

use crate::blas::{gemm_nt_ln, syrk_ln, trsm_right_lt};
use crate::error::DenseError;

/// Panel width for the blocked algorithms.
pub const NB: usize = 48;

#[inline]
fn at(ld: usize, i: usize, j: usize) -> usize {
    j * ld + i
}

/// Unblocked right-looking Cholesky of the leading `n x n` lower block.
/// `base` is added to pivot indices in errors (so blocked callers report
/// global positions).
fn potf2(n: usize, a: &mut [f64], lda: usize, base: usize) -> Result<(), DenseError> {
    for j in 0..n {
        let ajj = a[at(lda, j, j)];
        if ajj <= 0.0 || !ajj.is_finite() {
            return Err(DenseError::NotPositiveDefinite {
                index: base + j,
                value: ajj,
            });
        }
        let root = ajj.sqrt();
        a[at(lda, j, j)] = root;
        let inv = 1.0 / root;
        for i in j + 1..n {
            a[at(lda, i, j)] *= inv;
        }
        // Rank-1 update of the trailing lower triangle.
        for l in j + 1..n {
            let alj = a[at(lda, l, j)];
            if alj == 0.0 {
                continue;
            }
            let (cstart, jstart) = (l * lda, j * lda);
            for i in l..n {
                a[cstart + i] -= a[jstart + i] * alj;
            }
        }
    }
    Ok(())
}

/// Partial blocked Cholesky: factor the first `npiv` columns of the `nf x nf`
/// lower-stored front `f` (leading dimension `ldf`), producing
///
/// - `L11` (lower, `npiv x npiv`) in the leading block,
/// - `L21` (`(nf-npiv) x npiv`) below it,
/// - the **Schur complement** `A22 - L21 L21ᵀ` in the trailing lower block.
///
/// With `npiv == nf` this is an ordinary blocked `LLᵀ` factorization.
pub fn partial_potrf(nf: usize, npiv: usize, f: &mut [f64], ldf: usize) -> Result<(), DenseError> {
    assert!(npiv <= nf);
    assert!(ldf >= nf.max(1));
    let mut j = 0;
    while j < npiv {
        let jb = NB.min(npiv - j);
        let rest = nf - j - jb;
        // Split so the three regions can be borrowed disjointly: everything
        // is addressed inside `f` with offsets, single mutable borrow.
        // 1. Factor the diagonal block.
        {
            let djj = at(ldf, j, j);
            let (_, tail) = f.split_at_mut(djj);
            potf2(jb, tail, ldf, j)?;
        }
        if rest > 0 {
            // 2. Panel: L21 = A21 L11^{-T}. L11 and A21 interleave within the
            // same columns, so copy the (small) factored diagonal block into a
            // compact stack buffer instead of reaching for unsafe aliasing.
            let mut l11_buf = [0.0f64; NB * NB];
            let l11 = &mut l11_buf[..jb * jb];
            for t in 0..jb {
                for i in t..jb {
                    l11[t * jb + i] = f[at(ldf, j + i, j + t)];
                }
            }
            let a21 = at(ldf, j + jb, j);
            let (_, tail) = f.split_at_mut(a21);
            trsm_right_lt(rest, jb, l11, jb, tail, ldf);
            // 3. Trailing update: A22 -= L21 L21^T (lower).
            let (panel, trailing) = f.split_at_mut(at(ldf, j + jb, j + jb));
            syrk_ln(
                rest,
                jb,
                -1.0,
                &panel[at(ldf, j + jb, j)..],
                ldf,
                1.0,
                trailing,
                ldf,
            );
        }
        j += jb;
    }
    Ok(())
}

/// Full blocked Cholesky (`LLᵀ`) of an `n x n` lower-stored matrix.
pub fn potrf(n: usize, a: &mut [f64], lda: usize) -> Result<(), DenseError> {
    partial_potrf(n, n, a, lda)
}

/// Relative threshold under which an LDLᵀ pivot counts as zero.
pub const LDLT_PIVOT_TOL: f64 = 1e-300;

/// Partial `LDLᵀ` factorization (no pivoting): factor the first `npiv`
/// columns of the `nf x nf` lower-stored front. On return the unit-lower
/// `L` occupies the strictly-lower part of the leading `npiv` columns,
/// `d[0..npiv]` holds the (possibly negative) pivots, and the trailing
/// block holds the Schur complement.
///
/// Blocked right-looking: each [`NB`]-wide panel is factored with an
/// unblocked sweep whose rank-1 updates stay inside the panel, then the
/// trailing lower triangle absorbs the whole panel at once as
/// `C ← C − L₂₁ (L₂₁ D)ᵀ` through the packed [`gemm_nt_ln`] kernel (with
/// `W = L₂₁ D` staged in thread-local scratch).
///
/// Without pivoting this is only numerically safe for quasi-definite or
/// diagonally dominant symmetric matrices; a vanishing pivot is reported
/// as [`DenseError::ZeroPivot`] rather than silently producing infinities.
pub fn partial_ldlt(
    nf: usize,
    npiv: usize,
    f: &mut [f64],
    ldf: usize,
    d: &mut [f64],
) -> Result<(), DenseError> {
    assert!(npiv <= nf);
    assert!(ldf >= nf.max(1));
    assert!(d.len() >= npiv);
    let mut j0 = 0;
    while j0 < npiv {
        let jb = NB.min(npiv - j0);
        let j1 = j0 + jb;
        // Unblocked factorization of the panel; rank-1 updates are applied
        // only to columns inside the panel, the rest waits for the blocked
        // trailing update below.
        for j in j0..j1 {
            let dj = f[at(ldf, j, j)];
            if dj.abs() <= LDLT_PIVOT_TOL || !dj.is_finite() {
                return Err(DenseError::ZeroPivot { index: j });
            }
            d[j] = dj;
            let inv = 1.0 / dj;
            // Scale column j to unit-lower L.
            for i in j + 1..nf {
                f[at(ldf, i, j)] *= inv;
            }
            // A[i, l] -= L[i, j] * d_j * L[l, j]  (i >= l, j < l < j1).
            for l in j + 1..j1 {
                let w = f[at(ldf, l, j)] * dj;
                if w == 0.0 {
                    continue;
                }
                let (lcol, jcol) = (l * ldf, j * ldf);
                for i in l..nf {
                    f[lcol + i] -= f[jcol + i] * w;
                }
            }
        }
        // Blocked trailing update over columns j1..nf.
        let rest = nf - j1;
        if rest > 0 {
            crate::pack::with_scratch(rest * jb, |w| {
                for (t, wcol) in w.chunks_exact_mut(rest).enumerate() {
                    let dj = d[j0 + t];
                    let src = at(ldf, j1, j0 + t);
                    for (wv, &lv) in wcol.iter_mut().zip(&f[src..src + rest]) {
                        *wv = lv * dj;
                    }
                }
                let (panel, trailing) = f.split_at_mut(at(ldf, j1, j1));
                gemm_nt_ln(
                    rest,
                    jb,
                    -1.0,
                    &panel[at(ldf, j1, j0)..],
                    ldf,
                    w,
                    rest,
                    trailing,
                    ldf,
                );
            });
        }
        j0 = j1;
    }
    Ok(())
}

/// Full `LDLᵀ` of an `n x n` lower-stored matrix.
pub fn ldlt(n: usize, a: &mut [f64], lda: usize, d: &mut [f64]) -> Result<(), DenseError> {
    partial_ldlt(n, n, a, lda, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DMat;

    fn det_rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        }
    }

    fn reconstruct_lower(l: &DMat) -> DMat {
        let mut ll = l.clone();
        ll.zero_upper();
        ll.matmul(&ll.transpose())
    }

    #[test]
    fn potrf_small_known() {
        // A = [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]].
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 5.0;
        potrf(2, a.as_mut_slice(), 2).unwrap();
        assert!((a[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((a[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((a[(1, 1)] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn potrf_reconstructs_random_spd() {
        for n in [1usize, 3, 17, 48, 49, 97, 130] {
            let mut r = det_rng(n as u64);
            let a = DMat::random_spd(n, &mut r);
            let mut l = a.clone();
            potrf(n, l.as_mut_slice(), n).unwrap();
            let back = reconstruct_lower(&l);
            // Compare lower triangles.
            let mut err: f64 = 0.0;
            for j in 0..n {
                for i in j..n {
                    err = err.max((back[(i, j)] - a[(i, j)]).abs());
                }
            }
            assert!(err < 1e-9 * n as f64, "n={n}, err={err}");
        }
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = DMat::identity(3);
        a[(1, 1)] = -1.0;
        let e = potrf(3, a.as_mut_slice(), 3).unwrap_err();
        assert_eq!(
            e,
            DenseError::NotPositiveDefinite {
                index: 1,
                value: -1.0
            }
        );
    }

    #[test]
    fn potrf_reports_global_pivot_index_in_blocked_path() {
        // Make a big SPD matrix, then poison a diagonal entry beyond the
        // first panel so the failure happens inside a later block.
        let n = NB + 10;
        let mut r = det_rng(9);
        let mut a = DMat::random_spd(n, &mut r);
        let bad = NB + 5;
        a[(bad, bad)] = -1e6;
        let e = potrf(n, a.as_mut_slice(), n).unwrap_err();
        match e {
            DenseError::NotPositiveDefinite { index, .. } => assert_eq!(index, bad),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn partial_potrf_produces_schur_complement() {
        let n = 20;
        let npiv = 7;
        let mut r = det_rng(77);
        let a = DMat::random_spd(n, &mut r);
        let mut f = a.clone();
        partial_potrf(n, npiv, f.as_mut_slice(), n).unwrap();

        // Reference: full factor, then reconstruct what the Schur complement
        // must be: S = A22 - A21 A11^{-1} A12.
        // Compute via the factored pieces: S = A22 - L21 L21^T where the
        // L-pieces come from a *full* factorization truncated at npiv.
        let mut lfull = a.clone();
        potrf(n, lfull.as_mut_slice(), n).unwrap();
        // L11/L21 of the full factor equal those of the partial factor.
        for j in 0..npiv {
            for i in j..n {
                assert!(
                    (f[(i, j)] - lfull[(i, j)]).abs() < 1e-10,
                    "factored panel mismatch at ({i},{j})"
                );
            }
        }
        // Schur complement check: finishing the factorization of the trailing
        // block of `f` must reproduce the trailing block of the full factor.
        let rest = n - npiv;
        let mut s = DMat::zeros(rest, rest);
        for j in 0..rest {
            for i in j..rest {
                s[(i, j)] = f[(npiv + i, npiv + j)];
            }
        }
        potrf(rest, s.as_mut_slice(), rest).unwrap();
        for j in 0..rest {
            for i in j..rest {
                assert!((s[(i, j)] - lfull[(npiv + i, npiv + j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn partial_potrf_with_zero_pivots_is_noop() {
        let mut r = det_rng(5);
        let a = DMat::random_spd(6, &mut r);
        let mut f = a.clone();
        partial_potrf(6, 0, f.as_mut_slice(), 6).unwrap();
        assert_eq!(f, a);
    }

    #[test]
    fn ldlt_reconstructs_spd_and_matches_cholesky() {
        let n = 25;
        let mut r = det_rng(13);
        let a = DMat::random_spd(n, &mut r);
        let mut l = a.clone();
        let mut d = vec![0.0; n];
        ldlt(n, l.as_mut_slice(), n, &mut d).unwrap();
        // Reconstruct L D L^T over the lower triangle.
        for j in 0..n {
            for i in j..n {
                let mut acc = 0.0;
                for k in 0..=j {
                    let lik = if i == k { 1.0 } else { l[(i, k)] };
                    let ljk = if j == k { 1.0 } else { l[(j, k)] };
                    acc += lik * d[k] * ljk;
                }
                assert!((acc - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
        // All pivots positive for an SPD matrix.
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn ldlt_handles_negative_pivots() {
        // Indefinite but strongly diagonally dominant per sign: A = diag(2, -3)
        // plus small coupling.
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(1, 0)] = 0.5;
        a[(1, 1)] = -3.0;
        let mut d = vec![0.0; 2];
        ldlt(2, a.as_mut_slice(), 2, &mut d).unwrap();
        assert!(d[0] > 0.0 && d[1] < 0.0);
        // Reconstruct entry (1,1): d0*l10^2 + d1 = -3.
        let l10 = a[(1, 0)];
        assert!((d[0] * l10 * l10 + d[1] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn ldlt_rejects_zero_pivot() {
        let mut a = DMat::zeros(2, 2);
        a[(1, 0)] = 1.0; // zero diagonal
        let mut d = vec![0.0; 2];
        assert_eq!(
            ldlt(2, a.as_mut_slice(), 2, &mut d),
            Err(DenseError::ZeroPivot { index: 0 })
        );
    }

    #[test]
    fn ldlt_blocked_path_reconstructs() {
        // n > NB so the panel/trailing-update split is exercised.
        let n = NB + 23;
        let mut r = det_rng(31);
        let a = DMat::random_spd(n, &mut r);
        let mut l = a.clone();
        let mut d = vec![0.0; n];
        ldlt(n, l.as_mut_slice(), n, &mut d).unwrap();
        for j in 0..n {
            for i in j..n {
                let mut acc = 0.0;
                for k in 0..=j {
                    let lik = if i == k { 1.0 } else { l[(i, k)] };
                    let ljk = if j == k { 1.0 } else { l[(j, k)] };
                    acc += lik * d[k] * ljk;
                }
                assert!((acc - a[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn partial_ldlt_schur_matches_partial_potrf() {
        // On an SPD matrix, the LDLt Schur complement equals the LLt one.
        let n = 15;
        let npiv = 6;
        let mut r = det_rng(21);
        let a = DMat::random_spd(n, &mut r);
        let mut f1 = a.clone();
        partial_potrf(n, npiv, f1.as_mut_slice(), n).unwrap();
        let mut f2 = a.clone();
        let mut d = vec![0.0; npiv];
        partial_ldlt(n, npiv, f2.as_mut_slice(), n, &mut d).unwrap();
        for j in npiv..n {
            for i in j..n {
                assert!((f1[(i, j)] - f2[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        potrf(0, &mut [], 1).unwrap();
        partial_potrf(0, 0, &mut [], 1).unwrap();
    }
}
