//! Errors surfaced by the dense factorization kernels.

use std::fmt;

/// Failure modes of dense (partial) factorizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DenseError {
    /// Cholesky hit a non-positive pivot: the matrix is not positive
    /// definite. `index` is the global pivot index within the block being
    /// factored, `value` the offending diagonal entry.
    NotPositiveDefinite { index: usize, value: f64 },
    /// LDLᵀ hit an exactly-zero pivot (structurally singular block).
    ZeroPivot { index: usize },
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::NotPositiveDefinite { index, value } => write!(
                f,
                "matrix is not positive definite: pivot {index} has value {value:e}"
            ),
            DenseError::ZeroPivot { index } => write!(f, "zero pivot at index {index}"),
        }
    }
}

impl std::error::Error for DenseError {}
