//! Property-based tests for the dense kernels: agreement with naive
//! reference implementations on random shapes and values.

use parfact_dense::{blas, chol, trsv, DMat};
use proptest::prelude::*;

/// Deterministic value stream from a seed (keeps shrinking meaningful).
fn fill(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 4000) as f64 / 1000.0 - 2.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_matches_naive(m in 1usize..24, n in 1usize..24, k in 0usize..24,
                          alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in any::<u64>()) {
        let mut r = fill(seed);
        let a = DMat::from_fn(m, k, |_, _| r());
        let b = DMat::from_fn(n, k, |_, _| r());
        let c0 = DMat::from_fn(m, n, |_, _| r());
        let mut c = c0.clone();
        blas::gemm_nt(m, n, k, alpha, a.as_slice(), m, b.as_slice(), n, beta, c.as_mut_slice(), m);
        let mut want = a.matmul(&b.transpose());
        for j in 0..n {
            for i in 0..m {
                want[(i, j)] = alpha * want[(i, j)] + beta * c0[(i, j)];
            }
        }
        prop_assert!(c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn syrk_matches_gemm_lower(n in 1usize..24, k in 0usize..24, seed in any::<u64>()) {
        let mut r = fill(seed);
        let a = DMat::from_fn(n, k, |_, _| r());
        let mut c = DMat::zeros(n, n);
        blas::syrk_ln(n, k, 1.0, a.as_slice(), n, 0.0, c.as_mut_slice(), n);
        let full = a.matmul(&a.transpose());
        for j in 0..n {
            for i in j..n {
                prop_assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10);
            }
            for i in 0..j {
                prop_assert_eq!(c[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn potrf_roundtrip(n in 1usize..40, seed in any::<u64>()) {
        let mut r = fill(seed);
        let a = DMat::random_spd(n, &mut r);
        let mut l = a.clone();
        chol::potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let back = l.matmul(&l.transpose());
        for j in 0..n {
            for i in j..n {
                prop_assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-8 * (n as f64));
            }
        }
    }

    #[test]
    fn partial_then_full_equals_full(n in 2usize..40, split_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let npiv = ((n as f64) * split_frac) as usize;
        let mut r = fill(seed);
        let a = DMat::random_spd(n, &mut r);
        // Reference full factor.
        let mut lfull = a.clone();
        chol::potrf(n, lfull.as_mut_slice(), n).unwrap();
        // Partial, then factor the Schur complement with fresh panel
        // boundaries; the *panel columns* must agree exactly.
        let mut f = a.clone();
        chol::partial_potrf(n, npiv, f.as_mut_slice(), n).unwrap();
        for j in 0..npiv {
            for i in j..n {
                prop_assert!((f[(i, j)] - lfull[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ldlt_reconstructs(n in 1usize..30, seed in any::<u64>()) {
        let mut r = fill(seed);
        let a = DMat::random_spd(n, &mut r);
        let mut l = a.clone();
        let mut d = vec![0.0; n];
        chol::ldlt(n, l.as_mut_slice(), n, &mut d).unwrap();
        for j in 0..n {
            for i in j..n {
                let mut acc = 0.0;
                for k in 0..=j {
                    let lik = if i == k { 1.0 } else { l[(i, k)] };
                    let ljk = if j == k { 1.0 } else { l[(j, k)] };
                    acc += lik * d[k] * ljk;
                }
                prop_assert!((acc - a[(i, j)]).abs() < 1e-8 * (n as f64 + 1.0));
            }
        }
    }

    #[test]
    fn trsm_variants_invert(m in 1usize..16, n in 1usize..16, seed in any::<u64>()) {
        let mut r = fill(seed);
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j { r() * 0.3 } else if i == j { 1.5 + r().abs() } else { 0.0 }
        });
        let x = DMat::from_fn(m, n, |_, _| r());
        let mut b = x.matmul(&l.transpose());
        blas::trsm_right_lt(m, n, l.as_slice(), n, b.as_mut_slice(), m);
        prop_assert!(b.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn trsv_pair_roundtrips(n in 1usize..32, seed in any::<u64>()) {
        let mut r = fill(seed);
        let l = DMat::from_fn(n, n, |i, j| {
            if i > j { r() * 0.4 } else if i == j { 1.0 + r().abs() } else { 0.0 }
        });
        let x0: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.0).collect();
        // Forward then "undo" by multiplying back.
        let mut y = x0.clone();
        trsv::trsv_ln(n, l.as_slice(), n, &mut y, false);
        // L y must equal x0.
        let mut back = vec![0.0; n];
        for j in 0..n {
            for i in j..n {
                back[i] += l[(i, j)] * y[j];
            }
        }
        for (a, b) in back.iter().zip(&x0) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

// ---- Packed-kernel properties: the BLIS-style core vs the naive oracle ----
//
// Shapes deliberately hit remainder tiles (sizes not divisible by MR/NR),
// non-trivial leading dimensions (lda > m), and, via the unit tests in
// `blas.rs`, blocking boundaries (> MC/NC/KC). `parfact_dense::naive` holds
// the pre-packing reference kernels.

/// Column-major `rows x cols` buffer with leading dimension `ld >= rows`,
/// filled from the value stream (padding rows included, so stray reads of
/// padding would corrupt results and fail the comparison).
fn padded(rows: usize, cols: usize, ld: usize, r: &mut impl FnMut() -> f64) -> Vec<f64> {
    (0..ld * cols.max(1)).map(|_| r()).collect::<Vec<_>>()[..ld * cols.max(1) - (ld - rows)]
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_gemm_matches_naive_on_padded_lds(
        m in 1usize..70, n in 1usize..70, k in 0usize..70,
        pa in 0usize..5, pb in 0usize..5, pc in 0usize..5,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in any::<u64>(),
    ) {
        let (lda, ldb, ldc) = (m + pa, n + pb, m + pc);
        let mut r = fill(seed);
        let a = padded(m, k, lda, &mut r);
        let b = padded(n, k, ldb, &mut r);
        let c0 = padded(m, n, ldc, &mut r);
        let mut c_packed = c0.clone();
        blas::gemm_nt(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_packed, ldc);
        let mut c_naive = c0;
        parfact_dense::naive::gemm_nt(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_naive, ldc);
        for j in 0..n {
            for i in 0..m {
                let (p, q) = (c_packed[j * ldc + i], c_naive[j * ldc + i]);
                prop_assert!((p - q).abs() < 1e-10 * (k as f64 + 1.0),
                             "({i},{j}): packed {p} vs naive {q}");
            }
        }
    }

    #[test]
    fn packed_syrk_matches_naive_on_padded_lds(
        n in 1usize..70, k in 0usize..70, pa in 0usize..5, pc in 0usize..5,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in any::<u64>(),
    ) {
        let (lda, ldc) = (n + pa, n + pc);
        let mut r = fill(seed);
        let a = padded(n, k, lda, &mut r);
        let c0 = padded(n, n, ldc, &mut r);
        let mut c_packed = c0.clone();
        blas::syrk_ln(n, k, alpha, &a, lda, beta, &mut c_packed, ldc);
        let mut c_naive = c0.clone();
        parfact_dense::naive::syrk_ln(n, k, alpha, &a, lda, beta, &mut c_naive, ldc);
        for j in 0..n {
            for i in j..n {
                let (p, q) = (c_packed[j * ldc + i], c_naive[j * ldc + i]);
                prop_assert!((p - q).abs() < 1e-10 * (k as f64 + 1.0),
                             "({i},{j}): packed {p} vs naive {q}");
            }
            // Strict upper triangle untouched by both.
            for i in 0..j {
                prop_assert_eq!(c_packed[j * ldc + i], c0[j * ldc + i]);
            }
        }
    }

    #[test]
    fn packed_gemm_entries_independent_of_tiling(
        m in 1usize..60, n in 1usize..24, k in 1usize..48, seed in any::<u64>(),
    ) {
        // The determinism contract of `parfact_dense::pack`: with k inside
        // one KC block, each output entry is one ascending-k dot chain, so
        // its bits cannot depend on where the entry falls in the tile grid.
        // Computing one column at a time moves every entry to tile column 0;
        // the bits must not change.
        let mut r = fill(seed);
        let a = padded(m, k, m, &mut r);
        let b = padded(n, k, n, &mut r);
        let c0 = padded(m, n, m, &mut r);
        let mut c_full = c0.clone();
        blas::gemm_nt(m, n, k, -1.0, &a, m, &b, n, 1.0, &mut c_full, m);
        for j in 0..n {
            let mut col = c0[j * m..(j + 1) * m].to_vec();
            blas::gemm_nt(m, 1, k, -1.0, &a, m, &b[j..], n, 1.0, &mut col, m);
            for i in 0..m {
                prop_assert_eq!(c_full[j * m + i].to_bits(), col[i].to_bits(),
                                "entry ({i},{j}) depends on tile position");
            }
        }
    }
}
