//! Fill-reducing orderings for `parfact`.
//!
//! The SC'09 system relies on nested dissection to expose both low fill and
//! a well-balanced assembly tree — the tree shape *is* the parallelism. This
//! crate implements the ordering substrate from scratch:
//!
//! - [`nd`] — multilevel nested dissection (heavy-edge-matching coarsening,
//!   greedy graph growing, Fiduccia–Mattheyses boundary refinement, vertex
//!   separators), the production choice;
//! - [`mindeg`] — quotient-graph minimum (external) degree, used below the
//!   dissection cutoff and as a standalone classic;
//! - [`rcm`] — reverse Cuthill–McKee, the bandwidth-oriented baseline;
//! - [`partition`] — the weighted-graph multilevel bisection machinery
//!   underlying `nd` (usable on its own for the mapping experiments).
//!
//! All orderings return a [`Perm`] `p` meaning "position `k` of the
//! reordered matrix is original vertex `p.old_of_new(k)`"; apply it with
//! [`Perm::apply_sym_lower`].
// Index loops over parallel arrays (`for j in 0..n` touching several
// slices) are the deliberate idiom of this numerical code; clippy's
// iterator rewrites obscure the subscript math.
#![allow(clippy::needless_range_loop)]

pub mod mindeg;
pub mod nd;
pub mod partition;
pub mod rcm;

use parfact_sparse::csc::CscMatrix;
use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;
use parfact_trace::{Collector, Phase};

/// Ordering algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Identity ordering (whatever the input numbering was).
    Natural,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Quotient-graph minimum degree.
    MinDegree,
    /// Multilevel nested dissection with the given options.
    NestedDissection(nd::NdOpts),
}

impl Default for Method {
    fn default() -> Self {
        Method::NestedDissection(nd::NdOpts::default())
    }
}

/// Order an adjacency graph.
pub fn order_graph(g: &AdjGraph, method: Method) -> Perm {
    order_graph_with(g, method, 1, &Collector::disabled())
}

/// Order an adjacency graph on `threads` workers, recording per-stage
/// analysis spans into `tr`. The permutation is identical to
/// [`order_graph`] at every thread count; only nested dissection actually
/// fans out (the other methods are inherently sequential and run inline).
pub fn order_graph_with(g: &AdjGraph, method: Method, threads: usize, tr: &Collector) -> Perm {
    match method {
        Method::Natural => Perm::identity(g.nvert()),
        Method::Rcm => rcm::rcm(g),
        Method::MinDegree => {
            let mut rec = tr.local(0);
            let t = rec.start();
            let p = mindeg::min_degree(g);
            rec.stop(t, Phase::Mindeg, None);
            p
        }
        Method::NestedDissection(opts) => nd::nested_dissection_with(g, &opts, threads, tr),
    }
}

/// Order a symmetric-lower matrix (builds the adjacency graph internally).
pub fn order_matrix(a: &CscMatrix, method: Method) -> Perm {
    order_graph(&AdjGraph::from_sym_lower(a), method)
}

/// [`order_matrix`] on `threads` workers with analysis tracing; see
/// [`order_graph_with`].
pub fn order_matrix_with(a: &CscMatrix, method: Method, threads: usize, tr: &Collector) -> Perm {
    order_graph_with(&AdjGraph::from_sym_lower(a), method, threads, tr)
}

/// Exact fill-in of an elimination order, by explicit graph elimination.
/// Quadratic in the worst case — a quality-evaluation/reference tool, not a
/// production path (the production fill predictor is the near-linear
/// column-count algorithm in `parfact-symbolic`).
pub fn fill_in(g: &AdjGraph, perm: &Perm) -> usize {
    let n = g.nvert();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(v).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut fill = 0usize;
    for k in 0..n {
        let v = perm.old_of_new(k);
        let nb: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for i in 0..nb.len() {
            for j in i + 1..nb.len() {
                let (a, b) = (nb[i], nb[j]);
                if adj[a].insert(b) {
                    adj[b].insert(a);
                    fill += 1;
                }
            }
        }
        eliminated[v] = true;
    }
    fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;

    #[test]
    fn every_method_yields_valid_permutation() {
        let a = gen::laplace2d(9, 7, gen::Stencil2d::FivePoint);
        for m in [
            Method::Natural,
            Method::Rcm,
            Method::MinDegree,
            Method::NestedDissection(nd::NdOpts::default()),
        ] {
            let p = order_matrix(&a, m);
            assert_eq!(p.len(), 63);
            // from_vec validates permutation-ness; applying must round-trip.
            let ap = p.apply_sym_lower(&a);
            ap.check_sym_lower().unwrap();
            assert_eq!(ap.nnz(), a.nnz());
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = gen::tridiagonal(5);
        let p = order_matrix(&a, Method::Natural);
        assert_eq!(p, Perm::identity(5));
    }
}
