//! Multilevel nested dissection.
//!
//! Recursively bisect the graph, carve a vertex separator out of the edge
//! cut, order the two halves first and the separator **last**, and switch
//! to minimum degree below a size cutoff. The separator hierarchy is what
//! gives the assembly tree its balanced binary shape — the property the
//! subtree-to-subcube mapping in `parfact-core` exploits.

use crate::mindeg::min_degree;
use crate::partition::{bisect_with, PartOpts, WGraph};
use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;
use parfact_trace::{Collector, LocalRecorder, Phase};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Nested-dissection options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdOpts {
    /// Subgraphs at most this large are ordered with minimum degree.
    pub cutoff: usize,
    /// Bisection parameters.
    pub part: PartOpts,
}

impl Default for NdOpts {
    fn default() -> Self {
        NdOpts {
            cutoff: 96,
            part: PartOpts::default(),
        }
    }
}

/// Extract a vertex separator from an edge-cut bipartition: take the
/// boundary of whichever side has the smaller boundary. Removing it leaves
/// no edge between the remaining parts of side 0 and side 1.
pub fn vertex_separator(g: &AdjGraph, side: &[u8]) -> Vec<bool> {
    let n = g.nvert();
    let mut b: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for v in 0..n {
        if g.neighbors(v).iter().any(|&u| side[u] != side[v]) {
            b[side[v] as usize].push(v);
        }
    }
    let pick = if b[0].len() <= b[1].len() { 0 } else { 1 };
    let mut in_sep = vec![false; n];
    for &v in &b[pick] {
        in_sep[v] = true;
    }
    in_sep
}

/// Stable content hash seeding each subproblem's RNG: FNV-1a over the
/// subproblem's global vertex ids, mixed with the base seed and recursion
/// depth. The seed depends only on *what* is being bisected, never on
/// execution order, the worker a task lands on, or what was bisected
/// before it — the prerequisite for thread-count-independent output (and a
/// reproducibility fix in its own right: repeated calls on the same
/// subgraph now reproduce the same stream).
fn subgraph_seed(base: u64, depth: usize, ids: &[usize]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    eat(&mut h, base);
    eat(&mut h, depth as u64);
    for &id in ids {
        eat(&mut h, id as u64);
    }
    h
}

/// One nested-dissection subproblem on the work pool.
struct Task {
    /// Recursion-tree path id (root 1, children `2p` and `2p+1`, wrapping
    /// far below any reachable depth). Tags this task's trace spans so
    /// tooling can rebuild the task DAG from a span stream.
    path: usize,
    /// Position of this subproblem's block in the final order: fixed at
    /// the parent's bisection time, independent of completion order.
    offset: usize,
    sub: AdjGraph,
    /// Global vertex ids, parallel to `sub`'s local numbering.
    ids: Vec<usize>,
    depth: usize,
}

/// Process one task: order it outright (leaf / degenerate split) or bisect
/// and hand both halves to `spawn`. Finished blocks land in `done` as
/// `(offset, ordered global ids)`.
fn run_task(
    task: Task,
    opts: &NdOpts,
    rec: &mut LocalRecorder<'_>,
    done: &mut Vec<(usize, Vec<usize>)>,
    spawn: &mut dyn FnMut(Task),
) {
    let Task {
        path,
        offset,
        sub,
        ids,
        depth,
    } = task;
    let sn = sub.nvert();
    let mindeg_leaf = |rec: &mut LocalRecorder<'_>, done: &mut Vec<(usize, Vec<usize>)>| {
        let t = rec.start();
        let p = min_degree(&sub);
        rec.stop(t, Phase::Mindeg, Some(path));
        done.push((offset, p.perm().iter().map(|&l| ids[l]).collect()));
    };
    if sn <= opts.cutoff || depth > 64 {
        mindeg_leaf(rec, done);
        return;
    }
    let mut popts = opts.part;
    popts.seed = subgraph_seed(opts.part.seed, depth, &ids);
    let b = bisect_with(&WGraph::from_adj(&sub), &popts, rec, Some(path));
    let t = rec.start();
    let in_sep = vertex_separator(&sub, &b.side);
    let mut part: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    let mut sep_globals = Vec::new();
    for v in 0..sn {
        if in_sep[v] {
            sep_globals.push(ids[v]);
        } else {
            part[b.side[v] as usize].push(v);
        }
    }
    // Degenerate split (e.g. a clique): separator swallowed a side. Fall
    // back to minimum degree to guarantee progress.
    if part[0].is_empty() || part[1].is_empty() {
        rec.stop(t, Phase::Bisect, Some(path));
        mindeg_leaf(rec, done);
        return;
    }
    // Children are ordered before their separator; their block positions
    // follow from the split sizes alone.
    let (n0, n1) = (part[0].len(), part[1].len());
    done.push((offset + n0 + n1, sep_globals));
    for (half, child_offset) in [(0usize, offset), (1, offset + n0)] {
        let (sg, _) = sub.subgraph(&part[half]);
        let ids_h: Vec<usize> = part[half].iter().map(|&l| ids[l]).collect();
        spawn(Task {
            path: path.wrapping_mul(2).wrapping_add(half),
            offset: child_offset,
            sub: sg,
            ids: ids_h,
            depth: depth + 1,
        });
    }
    rec.stop(t, Phase::Bisect, Some(path));
}

/// Nested-dissection ordering of a graph.
pub fn nested_dissection(g: &AdjGraph, opts: &NdOpts) -> Perm {
    let tr = Collector::disabled();
    nested_dissection_with(g, opts, 1, &tr)
}

/// Nested dissection on `threads` workers, recording per-stage spans
/// (coarsen / bisect / refine / mindeg) into `tr`.
///
/// The permutation is **bitwise identical for every thread count**: after a
/// bisection both halves become independent tasks whose block positions in
/// the final order are computed immediately (left half at the parent's
/// offset, right half after it, separator last), and every subproblem's RNG
/// is seeded by [`subgraph_seed`] from its own content. Min-degree leaf
/// subgraphs are just more tasks, so they batch across the same workers.
pub fn nested_dissection_with(g: &AdjGraph, opts: &NdOpts, threads: usize, tr: &Collector) -> Perm {
    let n = g.nvert();
    let root = Task {
        path: 1,
        offset: 0,
        sub: g.clone(),
        ids: (0..n).collect(),
        depth: 0,
    };
    let mut chunks: Vec<(usize, Vec<usize>)> = Vec::new();
    if threads <= 1 {
        let mut rec = tr.local(0);
        let mut stack = vec![root];
        while let Some(task) = stack.pop() {
            run_task(task, opts, &mut rec, &mut chunks, &mut |t| stack.push(t));
        }
    } else {
        // LIFO shared pool. `pending` counts unfinished tasks: children are
        // registered before their parent retires, so it only reaches zero
        // when the whole recursion tree is done and idle workers may exit.
        let queue = Mutex::new(vec![root]);
        let pending = AtomicUsize::new(1);
        let results: Mutex<Vec<(usize, Vec<usize>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..threads {
                let (queue, pending, results) = (&queue, &pending, &results);
                scope.spawn(move || {
                    let mut rec = tr.local(w);
                    let mut done: Vec<(usize, Vec<usize>)> = Vec::new();
                    loop {
                        let task = queue.lock().unwrap().pop();
                        match task {
                            Some(task) => {
                                let mut created = Vec::new();
                                run_task(task, opts, &mut rec, &mut done, &mut |t| created.push(t));
                                if !created.is_empty() {
                                    pending.fetch_add(created.len(), Ordering::SeqCst);
                                    queue.lock().unwrap().append(&mut created);
                                }
                                pending.fetch_sub(1, Ordering::SeqCst);
                            }
                            None => {
                                if pending.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    results.lock().unwrap().append(&mut done);
                });
            }
        });
        chunks = results.into_inner().unwrap();
    }
    // Blocks carry their own offsets and tile [0, n) exactly, so assembly
    // order is irrelevant; `from_vec` re-validates permutation-ness.
    let mut order = vec![0usize; n];
    for (offset, block) in &chunks {
        order[*offset..offset + block.len()].copy_from_slice(block);
    }
    Perm::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_in;
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    #[test]
    fn separator_separates() {
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let b = bisect(&WGraph::from_adj(&g), &PartOpts::default());
        let in_sep = vertex_separator(&g, &b.side);
        // No edge may connect side-0 and side-1 vertices that are both
        // outside the separator.
        for v in 0..g.nvert() {
            if in_sep[v] {
                continue;
            }
            for &u in g.neighbors(v) {
                if !in_sep[u] {
                    assert_eq!(b.side[u], b.side[v], "uncovered cut edge {u}-{v}");
                }
            }
        }
        // Separator of an 8x8 grid should be around one grid line.
        let sep_size = in_sep.iter().filter(|&&x| x).count();
        assert!(sep_size <= 16, "separator too big: {sep_size}");
        assert!(sep_size >= 4);
    }

    #[test]
    fn nd_orders_grid_with_low_fill() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let opts = NdOpts {
            cutoff: 16,
            ..NdOpts::default()
        };
        let p = nested_dissection(&g, &opts);
        assert_eq!(p.len(), 144);
        let f_nd = fill_in(&g, &p);
        let f_nat = fill_in(&g, &Perm::identity(144));
        assert!(
            f_nd < f_nat,
            "nested dissection fill {f_nd} must beat natural {f_nat}"
        );
    }

    #[test]
    fn nd_handles_small_graph_via_cutoff() {
        let a = gen::tridiagonal(10);
        let g = AdjGraph::from_sym_lower(&a);
        let p = nested_dissection(&g, &NdOpts::default());
        assert_eq!(p.len(), 10);
        assert_eq!(fill_in(&g, &p), 0);
    }

    #[test]
    fn nd_handles_clique() {
        // Complete graph: bisection is degenerate; ND must still terminate.
        let n = 20;
        let mut coo = parfact_sparse::coo::CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                coo.push(i, j, if i == j { 30.0 } else { -1.0 });
            }
        }
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = nested_dissection(
            &g,
            &NdOpts {
                cutoff: 4,
                ..NdOpts::default()
            },
        );
        assert_eq!(p.len(), n);
        assert_eq!(fill_in(&g, &p), 0); // clique: no fill under any order
    }

    #[test]
    fn nd_deterministic() {
        let a = gen::laplace2d(10, 9, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let p1 = nested_dissection(&g, &NdOpts::default());
        let p2 = nested_dissection(&g, &NdOpts::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn nd_parallel_matches_sequential_exactly() {
        let a = gen::laplace2d(17, 13, gen::Stencil2d::NinePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let opts = NdOpts {
            cutoff: 12,
            ..NdOpts::default()
        };
        let seq = nested_dissection(&g, &opts);
        for threads in [2, 3, 4, 8] {
            let tr = parfact_trace::Collector::disabled();
            let par = nested_dissection_with(&g, &opts, threads, &tr);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn nd_records_stage_spans_at_timeline_level() {
        let a = gen::laplace2d(14, 14, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let opts = NdOpts {
            cutoff: 16,
            ..NdOpts::default()
        };
        let tr = parfact_trace::Collector::new(parfact_trace::TraceLevel::Timeline);
        nested_dissection_with(&g, &opts, 2, &tr);
        let c = tr.snapshot();
        assert!(c.coarsen_s > 0.0 && c.bisect_s > 0.0 && c.mindeg_s > 0.0);
        let spans = tr.take_spans();
        assert!(spans.iter().all(|s| s.phase.is_analysis()));
        // Every span carries a recursion-tree tag, and the root task (path
        // 1) bisected rather than went to minimum degree.
        assert!(spans.iter().all(|s| s.supernode.is_some()));
        assert!(spans
            .iter()
            .any(|s| s.supernode == Some(1) && s.phase == Phase::Coarsen));
    }

    #[test]
    fn subgraph_seed_depends_on_content_only() {
        let ids: Vec<usize> = (10..40).collect();
        let a = subgraph_seed(7, 3, &ids);
        assert_eq!(a, subgraph_seed(7, 3, &ids.clone()));
        assert_ne!(a, subgraph_seed(8, 3, &ids));
        assert_ne!(a, subgraph_seed(7, 4, &ids));
        let mut other = ids.clone();
        other[0] = 9;
        assert_ne!(a, subgraph_seed(7, 3, &other));
    }

    #[test]
    fn nd_on_disconnected_graph() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0);
        }
        for i in 0..3 {
            coo.push(i + 1, i, -1.0); // path 0-1-2-3
        }
        for i in 4..7 {
            coo.push(i + 1, i, -1.0); // path 4-5-6-7
        }
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = nested_dissection(
            &g,
            &NdOpts {
                cutoff: 2,
                ..NdOpts::default()
            },
        );
        assert_eq!(p.len(), 8);
    }

    use crate::partition::bisect;
}
