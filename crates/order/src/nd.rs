//! Multilevel nested dissection.
//!
//! Recursively bisect the graph, carve a vertex separator out of the edge
//! cut, order the two halves first and the separator **last**, and switch
//! to minimum degree below a size cutoff. The separator hierarchy is what
//! gives the assembly tree its balanced binary shape — the property the
//! subtree-to-subcube mapping in `parfact-core` exploits.

use crate::mindeg::min_degree;
use crate::partition::{bisect, PartOpts, WGraph};
use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;

/// Nested-dissection options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdOpts {
    /// Subgraphs at most this large are ordered with minimum degree.
    pub cutoff: usize,
    /// Bisection parameters.
    pub part: PartOpts,
}

impl Default for NdOpts {
    fn default() -> Self {
        NdOpts {
            cutoff: 96,
            part: PartOpts::default(),
        }
    }
}

/// Extract a vertex separator from an edge-cut bipartition: take the
/// boundary of whichever side has the smaller boundary. Removing it leaves
/// no edge between the remaining parts of side 0 and side 1.
pub fn vertex_separator(g: &AdjGraph, side: &[u8]) -> Vec<bool> {
    let n = g.nvert();
    let mut b: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for v in 0..n {
        if g.neighbors(v).iter().any(|&u| side[u] != side[v]) {
            b[side[v] as usize].push(v);
        }
    }
    let pick = if b[0].len() <= b[1].len() { 0 } else { 1 };
    let mut in_sep = vec![false; n];
    for &v in &b[pick] {
        in_sep[v] = true;
    }
    in_sep
}

/// Nested-dissection ordering of a graph.
pub fn nested_dissection(g: &AdjGraph, opts: &NdOpts) -> Perm {
    let n = g.nvert();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Explicit work stack of (subgraph, global ids). Children are ordered
    // before their separator, so process: push separator-emission marker
    // after recursing — easiest with an enum.
    enum Work {
        Graph(AdjGraph, Vec<usize>, usize),
        Emit(Vec<usize>),
    }
    let globals: Vec<usize> = (0..n).collect();
    let mut stack = vec![Work::Graph(g.clone(), globals, 0)];
    while let Some(w) = stack.pop() {
        match w {
            Work::Emit(sep) => order.extend(sep),
            Work::Graph(sub, ids, depth) => {
                let sn = sub.nvert();
                if sn <= opts.cutoff || depth > 64 {
                    let p = min_degree(&sub);
                    order.extend(p.perm().iter().map(|&l| ids[l]));
                    continue;
                }
                // Derive a per-level seed so sibling subproblems decorrelate
                // while the whole ordering stays deterministic.
                let mut popts = opts.part;
                popts.seed = popts
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(depth as u64 + sn as u64);
                let b = bisect(&WGraph::from_adj(&sub), &popts);
                let in_sep = vertex_separator(&sub, &b.side);
                let mut part: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
                let mut sep_globals = Vec::new();
                for v in 0..sn {
                    if in_sep[v] {
                        sep_globals.push(ids[v]);
                    } else {
                        part[b.side[v] as usize].push(v);
                    }
                }
                // Degenerate split (e.g. a clique): separator swallowed a
                // side. Fall back to minimum degree to guarantee progress.
                if part[0].is_empty() || part[1].is_empty() {
                    let p = min_degree(&sub);
                    order.extend(p.perm().iter().map(|&l| ids[l]));
                    continue;
                }
                // LIFO: push Emit first so it lands after both halves.
                stack.push(Work::Emit(sep_globals));
                for half in [1usize, 0] {
                    let (sg, _) = sub.subgraph(&part[half]);
                    let ids_h: Vec<usize> = part[half].iter().map(|&l| ids[l]).collect();
                    stack.push(Work::Graph(sg, ids_h, depth + 1));
                }
            }
        }
    }
    Perm::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_in;
    use parfact_sparse::gen;
    use parfact_sparse::perm::Perm;

    #[test]
    fn separator_separates() {
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let b = bisect(&WGraph::from_adj(&g), &PartOpts::default());
        let in_sep = vertex_separator(&g, &b.side);
        // No edge may connect side-0 and side-1 vertices that are both
        // outside the separator.
        for v in 0..g.nvert() {
            if in_sep[v] {
                continue;
            }
            for &u in g.neighbors(v) {
                if !in_sep[u] {
                    assert_eq!(b.side[u], b.side[v], "uncovered cut edge {u}-{v}");
                }
            }
        }
        // Separator of an 8x8 grid should be around one grid line.
        let sep_size = in_sep.iter().filter(|&&x| x).count();
        assert!(sep_size <= 16, "separator too big: {sep_size}");
        assert!(sep_size >= 4);
    }

    #[test]
    fn nd_orders_grid_with_low_fill() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let opts = NdOpts {
            cutoff: 16,
            ..NdOpts::default()
        };
        let p = nested_dissection(&g, &opts);
        assert_eq!(p.len(), 144);
        let f_nd = fill_in(&g, &p);
        let f_nat = fill_in(&g, &Perm::identity(144));
        assert!(
            f_nd < f_nat,
            "nested dissection fill {f_nd} must beat natural {f_nat}"
        );
    }

    #[test]
    fn nd_handles_small_graph_via_cutoff() {
        let a = gen::tridiagonal(10);
        let g = AdjGraph::from_sym_lower(&a);
        let p = nested_dissection(&g, &NdOpts::default());
        assert_eq!(p.len(), 10);
        assert_eq!(fill_in(&g, &p), 0);
    }

    #[test]
    fn nd_handles_clique() {
        // Complete graph: bisection is degenerate; ND must still terminate.
        let n = 20;
        let mut coo = parfact_sparse::coo::CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                coo.push(i, j, if i == j { 30.0 } else { -1.0 });
            }
        }
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = nested_dissection(
            &g,
            &NdOpts {
                cutoff: 4,
                ..NdOpts::default()
            },
        );
        assert_eq!(p.len(), n);
        assert_eq!(fill_in(&g, &p), 0); // clique: no fill under any order
    }

    #[test]
    fn nd_deterministic() {
        let a = gen::laplace2d(10, 9, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let p1 = nested_dissection(&g, &NdOpts::default());
        let p2 = nested_dissection(&g, &NdOpts::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn nd_on_disconnected_graph() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 2.0);
        }
        for i in 0..3 {
            coo.push(i + 1, i, -1.0); // path 0-1-2-3
        }
        for i in 4..7 {
            coo.push(i + 1, i, -1.0); // path 4-5-6-7
        }
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = nested_dissection(
            &g,
            &NdOpts {
                cutoff: 2,
                ..NdOpts::default()
            },
        );
        assert_eq!(p.len(), 8);
    }

    use crate::partition::{bisect, PartOpts, WGraph};
}
