//! Multilevel weighted-graph bisection: the engine under nested dissection.
//!
//! The V-cycle is the standard one (METIS-style, scratch implementation):
//!
//! 1. **Coarsen** by heavy-edge matching until the graph is small;
//! 2. **Initial partition** on the coarsest graph by greedy graph growing
//!    from a pseudo-peripheral vertex;
//! 3. **Uncoarsen**, projecting the partition and running a pass of
//!    boundary Fiduccia–Mattheyses refinement at every level.
//!
//! Vertices carry weights (they represent contracted sets), edges carry
//! multiplicities; balance is measured in vertex weight.

use parfact_sparse::graph::AdjGraph;
use parfact_trace::{Collector, LocalRecorder, Phase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weighted undirected graph in compressed adjacency form.
#[derive(Debug, Clone)]
pub struct WGraph {
    pub xadj: Vec<usize>,
    pub adjncy: Vec<usize>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<i64>,
    /// Vertex weights.
    pub vwgt: Vec<i64>,
}

impl WGraph {
    /// Unit-weight graph from an adjacency graph.
    pub fn from_adj(g: &AdjGraph) -> Self {
        WGraph {
            xadj: g.xadj().to_vec(),
            adjncy: g.adjncy().to_vec(),
            adjwgt: vec![1; g.adjncy().len()],
            vwgt: vec![1; g.nvert()],
        }
    }

    pub fn nvert(&self) -> usize {
        self.vwgt.len()
    }

    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        let (lo, hi) = (self.xadj[v], self.xadj[v + 1]);
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    pub fn total_vwgt(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Sum of edge weights crossing the bipartition.
    pub fn cut(&self, side: &[u8]) -> i64 {
        let mut cut = 0;
        for v in 0..self.nvert() {
            for (u, w) in self.neighbors(v) {
                if side[u] != side[v] {
                    cut += w;
                }
            }
        }
        cut / 2
    }
}

/// Result of a bisection: side (0/1) per vertex plus achieved cut/balance.
#[derive(Debug, Clone)]
pub struct Bisection {
    pub side: Vec<u8>,
    pub cut: i64,
    pub wgt: [i64; 2],
}

/// Parameters of the multilevel bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartOpts {
    /// Stop coarsening below this many vertices.
    pub coarsen_to: usize,
    /// Allowed imbalance: heavier side at most `(1 + eps) * total / 2`.
    pub eps: f64,
    /// FM refinement passes per level.
    pub fm_passes: usize,
    /// RNG seed (drives matching/tie-breaking; results are deterministic
    /// for a fixed seed).
    pub seed: u64,
}

impl Default for PartOpts {
    fn default() -> Self {
        PartOpts {
            coarsen_to: 48,
            eps: 0.15,
            fm_passes: 6,
            seed: 0x5EED,
        }
    }
}

/// Heavy-edge matching. Returns `(match_of, nmatched_pairs)`; unmatched
/// vertices map to themselves.
fn heavy_edge_matching(g: &WGraph, rng: &mut StdRng) -> Vec<usize> {
    let n = g.nvert();
    let mut mate: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    // Random visit order avoids systematic bias on meshes.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut matched = vec![false; n];
    for &v in &order {
        if matched[v] {
            continue;
        }
        let mut best = usize::MAX;
        let mut bestw = i64::MIN;
        for (u, w) in g.neighbors(v) {
            if !matched[u] && u != v && w > bestw {
                bestw = w;
                best = u;
            }
        }
        if best != usize::MAX {
            matched[v] = true;
            matched[best] = true;
            mate[v] = best;
            mate[best] = v;
        }
    }
    mate
}

/// Contract matched pairs into a coarser graph. Returns the coarse graph
/// and the fine→coarse vertex map.
fn contract(g: &WGraph, mate: &[usize]) -> (WGraph, Vec<usize>) {
    let n = g.nvert();
    let mut cmap = vec![usize::MAX; n];
    let mut nc = 0usize;
    for v in 0..n {
        if cmap[v] != usize::MAX {
            continue;
        }
        cmap[v] = nc;
        let m = mate[v];
        if m != v {
            cmap[m] = nc;
        }
        nc += 1;
    }
    let mut vwgt = vec![0i64; nc];
    for v in 0..n {
        vwgt[cmap[v]] += g.vwgt[v];
    }
    // Build coarse adjacency with a dense scatter buffer.
    let mut xadj = vec![0usize];
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    let mut pos = vec![usize::MAX; nc]; // coarse neighbor -> index in current row
    let mut fine_of: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for v in 0..n {
        fine_of[cmap[v]].push(v);
    }
    for c in 0..nc {
        let row_start = adjncy.len();
        for &v in &fine_of[c] {
            for (u, w) in g.neighbors(v) {
                let cu = cmap[u];
                if cu == c {
                    continue;
                }
                if pos[cu] == usize::MAX || pos[cu] < row_start {
                    pos[cu] = adjncy.len();
                    adjncy.push(cu);
                    adjwgt.push(w);
                } else {
                    adjwgt[pos[cu]] += w;
                }
            }
        }
        xadj.push(adjncy.len());
    }
    (
        WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        cmap,
    )
}

/// BFS from `start`, returning the last vertex reached (an approximation of
/// a peripheral vertex) and marking order.
fn bfs_far_vertex(g: &WGraph, start: usize) -> usize {
    let n = g.nvert();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for (u, _) in g.neighbors(v) {
            if !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    last
}

/// Greedy graph growing from a pseudo-peripheral vertex: grow region 0
/// until it holds half the vertex weight. Disconnected remainders are
/// swept into whichever side is lighter.
fn grow_partition(g: &WGraph, rng: &mut StdRng) -> Vec<u8> {
    let n = g.nvert();
    let total = g.total_vwgt();
    let start0 = rng.gen_range(0..n);
    let start = bfs_far_vertex(g, start0);
    let mut side = vec![1u8; n];
    let mut w0 = 0i64;
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    'grow: while let Some(v) = queue.pop_front() {
        side[v] = 0;
        w0 += g.vwgt[v];
        if 2 * w0 >= total {
            break 'grow;
        }
        for (u, _) in g.neighbors(v) {
            if !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    // If the BFS exhausted a small component before reaching half weight,
    // keep growing from any unvisited vertex.
    if 2 * w0 < total {
        for v in 0..n {
            if side[v] == 1 && 2 * w0 < total {
                side[v] = 0;
                w0 += g.vwgt[v];
            }
        }
    }
    side
}

/// One boundary-FM refinement sweep: tentatively move vertices in gain
/// order (respecting balance), then roll back to the best prefix.
fn fm_pass(g: &WGraph, side: &mut [u8], eps: f64) -> i64 {
    use std::collections::BinaryHeap;
    let n = g.nvert();
    let total = g.total_vwgt();
    let maxside = ((1.0 + eps) * (total as f64) / 2.0) as i64;

    let mut wgt = [0i64; 2];
    for v in 0..n {
        wgt[side[v] as usize] += g.vwgt[v];
    }
    // gain(v) = external - internal edge weight.
    let gain = |g: &WGraph, side: &[u8], v: usize| -> i64 {
        let mut ext = 0;
        let mut int = 0;
        for (u, w) in g.neighbors(v) {
            if side[u] != side[v] {
                ext += w;
            } else {
                int += w;
            }
        }
        ext - int
    };
    let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
    for v in 0..n {
        let is_boundary = g.neighbors(v).any(|(u, _)| side[u] != side[v]);
        if is_boundary {
            heap.push((gain(g, side, v), v));
        }
    }
    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::new();
    let mut cur_delta = 0i64;
    let mut best_delta = 0i64;
    let mut best_len = 0usize;
    while let Some((gv, v)) = heap.pop() {
        if locked[v] {
            continue;
        }
        let g_now = gain(g, side, v);
        if g_now != gv {
            heap.push((g_now, v)); // stale entry: reinsert with fresh gain
            continue;
        }
        let from = side[v] as usize;
        let to = 1 - from;
        if wgt[to] + g.vwgt[v] > maxside {
            locked[v] = true; // would break balance; lock in place
            continue;
        }
        // Commit the tentative move.
        side[v] = to as u8;
        wgt[from] -= g.vwgt[v];
        wgt[to] += g.vwgt[v];
        locked[v] = true;
        moves.push(v);
        cur_delta += g_now;
        if cur_delta > best_delta {
            best_delta = cur_delta;
            best_len = moves.len();
        }
        for (u, _) in g.neighbors(v) {
            if !locked[u] {
                heap.push((gain(g, side, u), u));
            }
        }
        // Bail out of hopeless tails.
        if moves.len() > best_len + 64 {
            break;
        }
    }
    // Roll back moves beyond the best prefix.
    for &v in &moves[best_len..] {
        side[v] ^= 1;
    }
    best_delta
}

/// Multilevel bisection of a weighted graph.
pub fn bisect(g: &WGraph, opts: &PartOpts) -> Bisection {
    let tr = Collector::disabled();
    let mut rec = tr.local(0);
    bisect_with(g, opts, &mut rec, None)
}

/// Multilevel bisection recording per-stage time into `rec`: coarsening
/// (matching + contraction) as [`Phase::Coarsen`], initial partition /
/// projection as [`Phase::Bisect`], FM sweeps as [`Phase::Refine`]. Spans
/// are tagged with `tag` so callers can attribute them to a recursion-tree
/// task. The partition computed is identical to [`bisect`].
pub fn bisect_with(
    g: &WGraph,
    opts: &PartOpts,
    rec: &mut LocalRecorder<'_>,
    tag: Option<usize>,
) -> Bisection {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    bisect_inner(g, opts, &mut rng, 0, rec, tag)
}

fn bisect_inner(
    g: &WGraph,
    opts: &PartOpts,
    rng: &mut StdRng,
    depth: usize,
    rec: &mut LocalRecorder<'_>,
    tag: Option<usize>,
) -> Bisection {
    let n = g.nvert();
    let mut side;
    if n <= opts.coarsen_to || depth > 60 {
        let t = rec.start();
        side = grow_partition(g, rng);
        rec.stop(t, Phase::Bisect, tag);
    } else {
        let t = rec.start();
        let mate = heavy_edge_matching(g, rng);
        let (cg, cmap) = contract(g, &mate);
        rec.stop(t, Phase::Coarsen, tag);
        // Coarsening stalled (e.g. star graphs): fall back to direct growth.
        if cg.nvert() as f64 > 0.95 * n as f64 {
            let t = rec.start();
            side = grow_partition(g, rng);
            rec.stop(t, Phase::Bisect, tag);
        } else {
            let coarse = bisect_inner(&cg, opts, rng, depth + 1, rec, tag);
            let t = rec.start();
            side = vec![0u8; n];
            for v in 0..n {
                side[v] = coarse.side[cmap[v]];
            }
            rec.stop(t, Phase::Bisect, tag);
        }
    }
    let t = rec.start();
    for _ in 0..opts.fm_passes {
        if fm_pass(g, &mut side, opts.eps) <= 0 {
            break;
        }
    }
    rec.stop(t, Phase::Refine, tag);
    let mut wgt = [0i64; 2];
    for v in 0..n {
        wgt[side[v] as usize] += g.vwgt[v];
    }
    Bisection {
        cut: g.cut(&side),
        side,
        wgt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;
    use parfact_sparse::graph::AdjGraph;

    fn grid_graph(nx: usize, ny: usize) -> WGraph {
        let a = gen::laplace2d(nx, ny, gen::Stencil2d::FivePoint);
        WGraph::from_adj(&AdjGraph::from_sym_lower(&a))
    }

    #[test]
    fn cut_of_hand_partition() {
        // 2x2 grid, split left/right: cut = 2.
        let g = grid_graph(2, 2);
        let side = vec![0, 1, 0, 1];
        assert_eq!(g.cut(&side), 2);
    }

    #[test]
    fn matching_is_symmetric_and_disjoint() {
        let g = grid_graph(6, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let mate = heavy_edge_matching(&g, &mut rng);
        for v in 0..g.nvert() {
            assert_eq!(mate[mate[v]], v);
        }
    }

    #[test]
    fn contract_preserves_total_weight_and_edges() {
        let g = grid_graph(6, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let mate = heavy_edge_matching(&g, &mut rng);
        let (cg, cmap) = contract(&g, &mate);
        assert_eq!(cg.total_vwgt(), g.total_vwgt());
        assert!(cg.nvert() < g.nvert());
        // Every fine edge is either internal to a coarse vertex or present
        // with accumulated weight.
        let total_fine: i64 = g.adjwgt.iter().sum();
        let total_coarse: i64 = cg.adjwgt.iter().sum();
        let internal: i64 = (0..g.nvert())
            .flat_map(|v| g.neighbors(v).map(move |(u, w)| (v, u, w)))
            .filter(|&(v, u, _)| cmap[v] == cmap[u])
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(total_coarse, total_fine - internal);
    }

    #[test]
    fn bisect_grid_is_balanced_with_small_cut() {
        let g = grid_graph(16, 16);
        let b = bisect(&g, &PartOpts::default());
        let total = g.total_vwgt();
        let maxside = b.wgt[0].max(b.wgt[1]);
        assert!(
            (maxside as f64) <= (1.0 + 0.16) * total as f64 / 2.0,
            "imbalance: {:?}",
            b.wgt
        );
        // A 16x16 grid has a width-16 minimum bisection; multilevel+FM
        // should land within a factor ~2 of it.
        assert!(b.cut <= 32, "cut too large: {}", b.cut);
        assert!(b.cut >= 16);
    }

    #[test]
    fn bisect_long_strip() {
        // 64x2 strip: optimal cut 2.
        let g = grid_graph(64, 2);
        let b = bisect(&g, &PartOpts::default());
        assert!(b.cut <= 6, "cut {} too large for a strip", b.cut);
    }

    #[test]
    fn bisect_is_deterministic_for_fixed_seed() {
        let g = grid_graph(12, 12);
        let b1 = bisect(&g, &PartOpts::default());
        let b2 = bisect(&g, &PartOpts::default());
        assert_eq!(b1.side, b2.side);
        assert_eq!(b1.cut, b2.cut);
    }

    #[test]
    fn bisect_disconnected_graph() {
        // Two disjoint 4x4 grids glued into one vertex set.
        let a = gen::laplace2d(4, 4, gen::Stencil2d::FivePoint);
        let g1 = AdjGraph::from_sym_lower(&a);
        let n = g1.nvert();
        let mut xadj = g1.xadj().to_vec();
        let base = *xadj.last().unwrap();
        xadj.extend(g1.xadj()[1..].iter().map(|&x| x + base));
        let mut adjncy = g1.adjncy().to_vec();
        adjncy.extend(g1.adjncy().iter().map(|&u| u + n));
        let g = WGraph {
            xadj,
            adjncy: adjncy.clone(),
            adjwgt: vec![1; adjncy.len()],
            vwgt: vec![1; 2 * n],
        };
        let b = bisect(&g, &PartOpts::default());
        // Perfect split exists with zero cut; accept near-perfect.
        assert!(b.cut <= 4, "cut {}", b.cut);
    }
}
