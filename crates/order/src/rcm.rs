//! Reverse Cuthill–McKee: the classic bandwidth/profile-reducing ordering,
//! kept as the envelope-method baseline the paper's generation of solvers
//! displaced.

use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;
use std::collections::VecDeque;

/// Find a pseudo-peripheral vertex of the component containing `start`
/// (George–Liu: repeat BFS from the farthest, least-degree vertex of the
/// last level until eccentricity stops growing).
pub fn pseudo_peripheral(g: &AdjGraph, start: usize) -> usize {
    let n = g.nvert();
    let mut level = vec![usize::MAX; n];
    let mut cur = start;
    let mut best_ecc = 0usize;
    loop {
        level.fill(usize::MAX);
        let mut q = VecDeque::new();
        level[cur] = 0;
        q.push_back(cur);
        let mut last_level = 0usize;
        let mut frontier = vec![cur];
        while let Some(v) = q.pop_front() {
            if level[v] > last_level {
                last_level = level[v];
                frontier.clear();
            }
            frontier.push(v);
            for &u in g.neighbors(v) {
                if level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    q.push_back(u);
                }
            }
        }
        if last_level <= best_ecc {
            return cur;
        }
        best_ecc = last_level;
        // Continue from the min-degree vertex of the last level.
        cur = frontier
            .iter()
            .copied()
            .min_by_key(|&v| g.degree(v))
            .unwrap_or(cur);
    }
}

/// Reverse Cuthill–McKee ordering over all components.
pub fn rcm(g: &AdjGraph) -> Perm {
    let n = g.nvert();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut scratch: Vec<usize> = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let root = pseudo_peripheral(g, s);
        // Cuthill–McKee BFS with neighbors sorted by degree.
        let mut q = VecDeque::new();
        visited[root] = true;
        q.push_back(root);
        while let Some(v) = q.pop_front() {
            order.push(v);
            scratch.clear();
            scratch.extend(g.neighbors(v).iter().copied().filter(|&u| !visited[u]));
            scratch.sort_unstable_by_key(|&u| g.degree(u));
            for &u in &scratch {
                visited[u] = true;
                q.push_back(u);
            }
        }
    }
    order.reverse();
    Perm::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;
    use parfact_sparse::graph::AdjGraph;

    fn bandwidth(a: &parfact_sparse::csc::CscMatrix) -> usize {
        let mut bw = 0;
        for c in 0..a.ncols() {
            let (rows, _) = a.col(c);
            for &r in rows {
                bw = bw.max(r - c);
            }
        }
        bw
    }

    #[test]
    fn rcm_on_path_keeps_unit_bandwidth() {
        let a = gen::tridiagonal(20);
        let g = AdjGraph::from_sym_lower(&a);
        let p = rcm(&g);
        let ap = p.apply_sym_lower(&a);
        assert_eq!(bandwidth(&ap), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        use parfact_sparse::perm::Perm;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = gen::tridiagonal(50);
        let mut rng = StdRng::seed_from_u64(3);
        let shuffle = Perm::random(50, &mut rng);
        let bad = shuffle.apply_sym_lower(&a);
        assert!(bandwidth(&bad) > 10);
        let p = rcm(&AdjGraph::from_sym_lower(&bad));
        let good = p.apply_sym_lower(&bad);
        assert_eq!(bandwidth(&good), 1);
    }

    #[test]
    fn rcm_on_grid_beats_random_bandwidth() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let p = rcm(&AdjGraph::from_sym_lower(&a));
        let ap = p.apply_sym_lower(&a);
        // Grid bandwidth under RCM should be close to min(nx, ny).
        assert!(bandwidth(&ap) <= 14, "bandwidth {}", bandwidth(&ap));
    }

    #[test]
    fn pseudo_peripheral_on_path_is_endpoint() {
        let a = gen::tridiagonal(9);
        let g = AdjGraph::from_sym_lower(&a);
        let v = pseudo_peripheral(&g, 4);
        assert!(v == 0 || v == 8, "got {v}");
    }

    #[test]
    fn rcm_covers_disconnected_graphs() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0);
        }
        coo.push(1, 0, -1.0);
        coo.push(5, 4, -1.0);
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = rcm(&g);
        assert_eq!(p.len(), 6);
    }
}
