//! Quotient-graph minimum (external) degree ordering.
//!
//! Classic minimum degree in the element/variable ("quotient graph")
//! formulation: eliminating a variable turns it into an *element* whose
//! boundary is its live neighborhood; neighborhoods are represented as a
//! union of plain variable adjacencies and element boundaries, so the
//! storage never exceeds the input graph plus one list per element. Exact
//! external degrees are recomputed by marker scans (no AMD-style
//! approximation — simpler, deterministic, and exact; the trade-off is
//! speed on very large graphs, which nested dissection's cutoff keeps
//! small anyway).

use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Still a variable awaiting elimination.
    Var,
    /// Eliminated variable now acting as an element.
    Elem,
    /// Element absorbed into a newer element (dead).
    Dead,
}

/// Minimum-degree ordering of an undirected graph.
pub fn min_degree(g: &AdjGraph) -> Perm {
    let n = g.nvert();
    let mut status = vec![Status::Var; n];
    // Variable adjacency (pruned lazily) and adjacent-element lists.
    let mut adj_vars: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let mut adj_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Element boundaries, indexed by the eliminated variable's id.
    let mut boundary: Vec<Vec<usize>> = vec![Vec::new(); n];

    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(n * 2);
    for v in 0..n {
        heap.push(Reverse((degree[v], v)));
    }

    // Marker workspace for degree-scan set unions, plus a dedicated
    // membership flag for the current element boundary (a plain stamp would
    // be clobbered by the nested degree scans).
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;
    let mut in_le = vec![false; n];

    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        // Pop the minimum-degree live variable with a fresh key.
        let v = loop {
            let Reverse((d, v)) = heap.pop().expect("heap exhausted before all vars ordered");
            if status[v] == Status::Var && degree[v] == d {
                break v;
            }
        };
        order.push(v);

        // Form the new element's boundary: live vars adjacent to v, plus
        // live vars on the boundary of every element adjacent to v.
        let mut le: Vec<usize> = Vec::new();
        for &u in &adj_vars[v] {
            if status[u] == Status::Var && !in_le[u] {
                in_le[u] = true;
                le.push(u);
            }
        }
        for &e in &adj_elems[v] {
            if status[e] != Status::Elem {
                continue;
            }
            for &u in &boundary[e] {
                if status[u] == Status::Var && !in_le[u] && u != v {
                    in_le[u] = true;
                    le.push(u);
                }
            }
            status[e] = Status::Dead; // absorbed into the new element
            boundary[e] = Vec::new();
        }
        status[v] = Status::Elem;
        adj_vars[v] = Vec::new();
        adj_elems[v] = Vec::new();

        // Update every boundary variable: prune dominated edges/absorbed
        // elements, link the new element, and recompute its exact degree.
        for idx in 0..le.len() {
            let u = le[idx];
            // Prune adj_vars[u]: drop dead vars and members of Le (their
            // coupling is now represented by the element v).
            adj_vars[u].retain(|&w| status[w] == Status::Var && !in_le[w]);
            // Prune absorbed elements; append the new one.
            adj_elems[u].retain(|&e| status[e] == Status::Elem);
            adj_elems[u].push(v);
            // Exact external degree by marker union.
            stamp += 1;
            mark[u] = stamp;
            let mut d = 0usize;
            for &w in &adj_vars[u] {
                if mark[w] != stamp {
                    mark[w] = stamp;
                    d += 1;
                }
            }
            for &e in &adj_elems[u] {
                for &w in &boundary[e] {
                    if status[w] == Status::Var && mark[w] != stamp {
                        mark[w] = stamp;
                        d += 1;
                    }
                }
            }
            // Boundary of the new element is still being scanned via `le`
            // (boundary[v] assigned below); count it explicitly.
            for &w in &le {
                if w != u && mark[w] != stamp {
                    mark[w] = stamp;
                    d += 1;
                }
            }
            degree[u] = d;
            heap.push(Reverse((d, u)));
        }
        for &u in &le {
            in_le[u] = false;
        }
        boundary[v] = le;
    }
    Perm::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;
    use parfact_sparse::graph::AdjGraph;

    use crate::fill_in;

    #[test]
    fn arrowhead_hub_is_eliminated_last() {
        // Star graph: minimum degree must defer the hub to the end,
        // producing zero fill.
        let a = gen::arrowhead(12);
        let g = AdjGraph::from_sym_lower(&a);
        let p = min_degree(&g);
        // Once only the hub and one leaf remain both have degree 1, so the
        // hub may come second-to-last; anything earlier would create fill.
        let hub_pos = p.new_of_old(0);
        assert!(hub_pos >= 10, "hub eliminated too early: {hub_pos}");
        assert_eq!(fill_in(&g, &p), 0);
    }

    #[test]
    fn path_graph_zero_fill() {
        let a = gen::tridiagonal(15);
        let g = AdjGraph::from_sym_lower(&a);
        let p = min_degree(&g);
        assert_eq!(fill_in(&g, &p), 0);
    }

    #[test]
    fn cycle_graph_fill_is_n_minus_3() {
        // A cycle requires exactly n-3 fill edges under ANY order; check
        // minimum degree achieves it.
        let n = 10;
        let mut coo = parfact_sparse::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            coo.push(i.max((i + 1) % n), i.min((i + 1) % n), -1.0);
        }
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = min_degree(&g);
        assert_eq!(fill_in(&g, &p), n - 3);
    }

    #[test]
    fn grid_beats_natural_order_fill() {
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let md = min_degree(&g);
        let nat = Perm::identity(64);
        let f_md = fill_in(&g, &md);
        let f_nat = fill_in(&g, &nat);
        assert!(
            f_md < f_nat,
            "minimum degree fill {f_md} must beat natural {f_nat}"
        );
    }

    #[test]
    fn handles_disconnected_and_isolated() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        coo.push(2, 1, -1.0);
        let g = AdjGraph::from_sym_lower(&coo.to_csc());
        let p = min_degree(&g);
        assert_eq!(p.len(), 5);
        assert_eq!(fill_in(&g, &p), 0);
    }

    #[test]
    fn deterministic() {
        let a = gen::random_spd(40, 4, 9);
        let g = AdjGraph::from_sym_lower(&a);
        assert_eq!(min_degree(&g), min_degree(&g));
    }
}
