//! Property-based tests for the ordering algorithms on random graphs.

use parfact_order::{fill_in, mindeg, nd, order_graph, partition, Method};
use parfact_sparse::gen;
use parfact_sparse::graph::AdjGraph;
use parfact_sparse::perm::Perm;
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = AdjGraph> {
    (5usize..=60, 1usize..=5, any::<u64>())
        .prop_map(|(n, k, seed)| AdjGraph::from_sym_lower(&gen::random_spd(n, k, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orderings_are_permutations(g in random_graph()) {
        for m in [Method::Rcm, Method::MinDegree, Method::default()] {
            let p = order_graph(&g, m);
            prop_assert_eq!(p.len(), g.nvert());
            let mut seen = vec![false; g.nvert()];
            for &o in p.perm() {
                prop_assert!(!seen[o]);
                seen[o] = true;
            }
        }
    }

    #[test]
    fn mindeg_never_loses_to_identity_badly(g in random_graph()) {
        // Minimum degree is a heuristic, but on these random graphs it must
        // stay within a factor of the natural order's fill (sanity guard
        // against regressions that silently break the degree updates).
        let f_md = fill_in(&g, &mindeg::min_degree(&g));
        let f_nat = fill_in(&g, &Perm::identity(g.nvert()));
        prop_assert!(f_md <= f_nat.max(8) * 2, "md {f_md} vs natural {f_nat}");
    }

    #[test]
    fn bisection_is_balanced_two_sided(g in random_graph()) {
        let w = partition::WGraph::from_adj(&g);
        let b = partition::bisect(&w, &partition::PartOpts::default());
        let total = g.nvert() as i64;
        prop_assert_eq!(b.wgt[0] + b.wgt[1], total);
        // Never everything on one side for n >= 2.
        if g.nvert() >= 2 {
            prop_assert!(b.wgt[0] > 0 && b.wgt[1] > 0, "degenerate split {:?}", b.wgt);
        }
        // Cut must match a recount.
        prop_assert_eq!(b.cut, w.cut(&b.side));
    }

    #[test]
    fn vertex_separator_always_separates(g in random_graph()) {
        let w = partition::WGraph::from_adj(&g);
        let b = partition::bisect(&w, &partition::PartOpts::default());
        let in_sep = nd::vertex_separator(&g, &b.side);
        for v in 0..g.nvert() {
            if in_sep[v] {
                continue;
            }
            for &u in g.neighbors(v) {
                if !in_sep[u] {
                    prop_assert_eq!(b.side[u], b.side[v], "uncovered edge {}-{}", u, v);
                }
            }
        }
    }

    #[test]
    fn nd_fill_is_reasonable_on_grids(nx in 4usize..14, ny in 4usize..14) {
        let a = gen::laplace2d(nx, ny, gen::Stencil2d::FivePoint);
        let g = AdjGraph::from_sym_lower(&a);
        let p = order_graph(&g, Method::default());
        let f_nd = fill_in(&g, &p);
        let f_nat = fill_in(&g, &Perm::identity(g.nvert()));
        // ND must be no worse than 1.5x natural on small grids and strictly
        // better once the grid is big enough for separators to pay off.
        prop_assert!(f_nd as f64 <= 1.5 * f_nat as f64 + 8.0);
        if nx >= 10 && ny >= 10 {
            prop_assert!(f_nd < f_nat);
        }
    }

    #[test]
    fn rcm_is_deterministic_and_covers(g in random_graph()) {
        let p1 = order_graph(&g, Method::Rcm);
        let p2 = order_graph(&g, Method::Rcm);
        prop_assert_eq!(p1, p2);
    }
}
