//! Sequential left-looking simplicial (column-by-column) Cholesky.
//!
//! No supernodes, no fronts: column `j` of `L` is computed by applying the
//! updates of every earlier column `k` with `L[j][k] != 0`, then scaling.
//! This is the textbook `O(flops)` algorithm with none of the BLAS-3
//! structure — the natural sequential baseline, and a fully independent
//! implementation used as a correctness oracle for the multifrontal
//! engines.

use crate::error::FactorError;
use parfact_sparse::csc::CscMatrix;
use parfact_symbolic::etree;
use parfact_symbolic::NONE;

/// Sparse lower factor in CSC form plus the elimination tree used.
pub struct SimplicialFactor {
    /// `L` (unit diagonal NOT implied; true Cholesky factor).
    pub l: CscMatrix,
    /// Elimination tree of the input.
    pub parent: Vec<usize>,
}

/// Symbolic structure of `L` column by column (sorted), via row subtrees.
pub fn symbolic_l(a: &CscMatrix, parent: &[usize]) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let at = a.to_csr();
    let mut cols: Vec<Vec<usize>> = (0..n).map(|j| vec![j]).collect();
    let mut mark = vec![usize::MAX; n];
    for i in 0..n {
        mark[i] = i;
        let (cs, _) = at.row(i);
        for &j in cs {
            if j >= i {
                continue;
            }
            let mut x = j;
            while mark[x] != i {
                mark[x] = i;
                cols[x].push(i);
                x = parent[x];
                debug_assert_ne!(x, NONE);
            }
        }
    }
    for c in cols.iter_mut() {
        c.sort_unstable();
    }
    cols
}

/// Left-looking simplicial Cholesky of a symmetric-lower matrix (already
/// permuted by the caller's fill ordering, or not — any order works).
pub fn factorize_leftlooking(a: &CscMatrix) -> Result<SimplicialFactor, FactorError> {
    a.check_sym_lower()?;
    let n = a.ncols();
    let parent = etree::etree(a);
    let pattern = symbolic_l(a, &parent);

    // Row-structure access of L (needed to know the k with L[j][k] != 0):
    // row lists derived from the column patterns.
    let mut rowlist: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, pat) in pattern.iter().enumerate() {
        for &i in pat {
            if i > k {
                rowlist[i].push(k);
            }
        }
    }

    // Dense scatter workspace for the current column.
    let mut work = vec![0.0f64; n];
    let mut colptr = vec![0usize; n + 1];
    let mut rowind: Vec<usize> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    // L columns already computed, in CSC-ish parallel arrays.
    let mut lcols: Vec<(Vec<usize>, Vec<f64>)> = Vec::with_capacity(n);

    for j in 0..n {
        // Scatter A[:, j] (lower part).
        let (arows, avals) = a.col(j);
        for (&r, &v) in arows.iter().zip(avals) {
            work[r] = v;
        }
        // Apply updates from every k with L[j][k] != 0.
        for &k in &rowlist[j] {
            let (krows, kvals) = &lcols[k];
            // Find L[j][k].
            let pos = krows.binary_search(&j).expect("structure mismatch");
            let ljk = kvals[pos];
            if ljk != 0.0 {
                for (&r, &v) in krows[pos..].iter().zip(&kvals[pos..]) {
                    work[r] -= v * ljk;
                }
            }
        }
        // Scale.
        let djj = work[j];
        if djj <= 0.0 || !djj.is_finite() {
            return Err(FactorError::NotPositiveDefinite { col: j, value: djj });
        }
        let root = djj.sqrt();
        let pat = &pattern[j];
        let mut col_rows = Vec::with_capacity(pat.len());
        let mut col_vals = Vec::with_capacity(pat.len());
        for &r in pat {
            let v = if r == j { root } else { work[r] / root };
            col_rows.push(r);
            col_vals.push(v);
            work[r] = 0.0;
        }
        rowind.extend_from_slice(&col_rows);
        vals.extend_from_slice(&col_vals);
        colptr[j + 1] = rowind.len();
        lcols.push((col_rows, col_vals));
    }
    Ok(SimplicialFactor {
        l: CscMatrix::from_parts(n, n, colptr, rowind, vals),
        parent,
    })
}

impl SimplicialFactor {
    /// Solve `A x = b` (in the same index space the factor was computed in).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.ncols();
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        // Forward L y = b.
        for j in 0..n {
            let (rows, vals) = self.l.col(j);
            let xj = x[j] / vals[0];
            x[j] = xj;
            for (&r, &v) in rows[1..].iter().zip(&vals[1..]) {
                x[r] -= v * xj;
            }
        }
        // Backward L^T z = y.
        for j in (0..n).rev() {
            let (rows, vals) = self.l.col(j);
            let mut acc = x[j];
            for (&r, &v) in rows[1..].iter().zip(&vals[1..]) {
                acc -= v * x[r];
            }
            x[j] = acc / vals[0];
        }
        x
    }

    /// Factor nonzeros.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::{gen, ops};

    #[test]
    fn factor_matches_multifrontal_values() {
        let a = gen::laplace2d(8, 7, gen::Stencil2d::FivePoint);
        let sf = factorize_leftlooking(&a).unwrap();
        // Independent check: L L^T x = b solves the system.
        let xstar: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; a.nrows()];
        a.sym_spmv(&xstar, &mut b);
        let x = sf.solve(&b);
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-10);
        }
    }

    #[test]
    fn nnz_matches_symbolic_prediction() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let sf = factorize_leftlooking(&a).unwrap();
        // Strict (no amalgamation) symbolic count must equal simplicial nnz.
        let (sym, _) = parfact_symbolic::analyze(
            &a,
            &parfact_symbolic::AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        assert_eq!(sf.nnz(), sym.factor_nnz());
    }

    #[test]
    fn rejects_indefinite() {
        let a = gen::indefinite(30, 2);
        assert!(matches!(
            factorize_leftlooking(&a),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn tridiagonal_known_factor() {
        // A = tridiag(-1, 2, -1), n=2: L = [[sqrt2, 0], [-1/sqrt2, sqrt(3/2)]].
        let a = gen::tridiagonal(2);
        let sf = factorize_leftlooking(&a).unwrap();
        let s2 = 2.0f64.sqrt();
        assert!((sf.l.get(0, 0).unwrap() - s2).abs() < 1e-15);
        assert!((sf.l.get(1, 0).unwrap() + 1.0 / s2).abs() < 1e-15);
        assert!((sf.l.get(1, 1).unwrap() - (1.5f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn residual_small_on_elasticity() {
        let a = gen::elasticity3d(3, 2, 2);
        let sf = factorize_leftlooking(&a).unwrap();
        let b = vec![1.0; a.nrows()];
        let x = sf.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }
}
