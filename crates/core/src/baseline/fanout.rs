//! Distributed **fan-out** column Cholesky — the classic fine-grained
//! algorithm the multifrontal method displaced.
//!
//! Columns are dealt cyclically to ranks. When a rank finishes column `k`
//! it "fans it out": one message per rank that owns any column updated by
//! `k`. Every column is a separate message, so the message count grows
//! with `nnz(L)` instead of with the number of supernodes — on a
//! latency-bound machine this is the difference between scaling and
//! stalling, which is precisely the baseline contrast of EXP-F1.

use crate::baseline::leftlook::symbolic_l;
use crate::error::FactorError;
use parfact_mpsim::Rank;
use parfact_sparse::csc::CscMatrix;
use parfact_symbolic::etree;
use std::collections::HashMap;

/// Fraction of a core's peak flop rate a scalar simplicial update stream
/// achieves. The cost model's `flop_time` is the *dense-kernel* rate;
/// column-at-a-time indexed gather/scatter kernels on this class of core
/// reach roughly a tenth of it (0.2-0.5 of 3.4 Gflop/s on Blue Gene/P-era
/// hardware). Without this derating the model would credit the fan-out
/// baseline with BLAS-3 throughput it cannot have.
pub const SCALAR_EFFICIENCY: f64 = 0.12;

/// Column owner under the cyclic deal.
#[inline]
pub fn owner(j: usize, p: usize) -> usize {
    j % p
}

// Tag namespace of the fan-out baseline. Disjoint from the multifrontal
// engine's namespace in `dist::front` by construction: the two algorithms
// never share a `Machine` run. Centralized here (rather than inline
// literals at the send sites) so the R5 lint can hold every message to a
// named tag scheme.

/// Tag of the fan-out message carrying factored column `j`.
#[inline]
fn col_tag(j: usize) -> u64 {
    j as u64
}

/// Tag of the gather message for column `j` (above any column tag).
#[inline]
fn gather_tag(j: usize) -> u64 {
    const TAG_BASE: u64 = 1 << 40;
    TAG_BASE + j as u64
}

/// Per-rank result: the owned columns of `L` (global index, rows, values).
pub struct FanoutColumns {
    pub cols: Vec<(usize, Vec<usize>, Vec<f64>)>,
}

/// SPMD fan-out factorization. All ranks pass the same (replicated)
/// matrix; each computes and returns its owned columns of `L`.
pub fn factorize_rank(rank: &mut Rank, a: &CscMatrix) -> Result<FanoutColumns, FactorError> {
    let me = rank.rank();
    let p = rank.nranks();
    let n = a.ncols();
    // Replicated symbolic phase (cheap relative to numeric).
    let parent = etree::etree(a);
    let pattern = symbolic_l(a, &parent);
    let mut rowlist: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, pat) in pattern.iter().enumerate() {
        for &i in pat {
            if i > k {
                rowlist[i].push(k);
            }
        }
    }
    // How many of my columns consume column k (cache eviction counts).
    let mut uses = vec![0usize; n];
    for j in (me..n).step_by(p) {
        for &k in &rowlist[j] {
            uses[k] += 1;
        }
    }

    let mut mine: Vec<(usize, Vec<usize>, Vec<f64>)> = Vec::new();
    let mut cache: HashMap<usize, (Vec<usize>, Vec<f64>)> = HashMap::new();
    let mut work = vec![0.0f64; n];

    for j in (me..n).step_by(p) {
        // Scatter A[:, j].
        let (arows, avals) = a.col(j);
        for (&r, &v) in arows.iter().zip(avals) {
            work[r] = v;
        }
        // Apply each needed earlier column, fetching remote ones on demand.
        for &k in &rowlist[j] {
            let (krows, kvals): (&[usize], &[f64]) = if owner(k, p) == me {
                let (_, r, v) = mine
                    .iter()
                    .find(|(g, _, _)| *g == k)
                    .expect("own column not yet computed");
                (r, v)
            } else {
                let entry = cache.entry(k).or_insert_with(|| {
                    rank.recv::<(Vec<usize>, Vec<f64>)>(owner(k, p), col_tag(k))
                });
                (&entry.0, &entry.1)
            };
            let pos = krows.binary_search(&j).expect("structure mismatch");
            let ljk = kvals[pos];
            if ljk != 0.0 {
                for (&r, &v) in krows[pos..].iter().zip(&kvals[pos..]) {
                    work[r] -= v * ljk;
                }
                let fl = 2.0 * (krows.len() - pos) as f64;
                rank.compute(fl);
                // Derate to scalar speed: extra time, not extra flops.
                rank.advance(fl * (1.0 / SCALAR_EFFICIENCY - 1.0) * rank.model().flop_time_s);
            }
            // Evict when no further own column needs k.
            uses[k] -= 1;
            if uses[k] == 0 && owner(k, p) != me {
                if let Some((r, v)) = cache.remove(&k) {
                    rank.free((r.len() * 8) + (v.len() * 8));
                }
            }
        }
        // Scale column j.
        let djj = work[j];
        if djj <= 0.0 || !djj.is_finite() {
            return Err(FactorError::NotPositiveDefinite { col: j, value: djj });
        }
        let root = djj.sqrt();
        let pat = &pattern[j];
        let mut rows = Vec::with_capacity(pat.len());
        let mut vals = Vec::with_capacity(pat.len());
        for &r in pat {
            let v = if r == j { root } else { work[r] / root };
            rows.push(r);
            vals.push(v);
            work[r] = 0.0;
        }
        let fl = pat.len() as f64;
        rank.compute(fl);
        rank.advance(fl * (1.0 / SCALAR_EFFICIENCY - 1.0) * rank.model().flop_time_s);
        rank.alloc(rows.len() * 16);
        // Fan out: one message per rank owning an updated column.
        let mut dests = vec![false; p];
        for &i in &pat[1..] {
            dests[owner(i, p)] = true;
        }
        for (d, &needed) in dests.iter().enumerate() {
            if needed && d != me {
                rank.send(d, col_tag(j), (rows.clone(), vals.clone()));
            }
        }
        mine.push((j, rows, vals));
    }
    // Account cached columns that were fetched but never evicted. Drained
    // in sorted column order so the accounting walk is reproducible (the
    // byte sum is commutative, but a canonical order costs nothing and
    // keeps the send path free of unordered iteration).
    let mut leftovers: Vec<(Vec<usize>, Vec<f64>)> = cache.drain().map(|(_, rv)| rv).collect();
    leftovers.sort_unstable_by_key(|(r, _)| r.first().copied());
    for (r, v) in leftovers {
        rank.free(r.len() * 8 + v.len() * 8);
    }
    Ok(FanoutColumns { cols: mine })
}

/// Gather all ranks' columns to rank 0 and rebuild `L` (verification).
pub fn gather_l(rank: &mut Rank, n: usize, mine: &FanoutColumns) -> Option<CscMatrix> {
    let me = rank.rank();
    let p = rank.nranks();
    if me != 0 {
        for (j, rows, vals) in &mine.cols {
            rank.send(0, gather_tag(*j), (rows.clone(), vals.clone()));
        }
        return None;
    }
    let mut cols: Vec<(Vec<usize>, Vec<f64>)> = vec![Default::default(); n];
    for (j, rows, vals) in &mine.cols {
        cols[*j] = (rows.clone(), vals.clone());
    }
    for j in 0..n {
        if owner(j, p) != 0 {
            cols[j] = rank.recv::<(Vec<usize>, Vec<f64>)>(owner(j, p), gather_tag(j));
        }
    }
    let mut colptr = vec![0usize; n + 1];
    let mut rowind = Vec::new();
    let mut vals = Vec::new();
    for (j, (r, v)) in cols.into_iter().enumerate() {
        rowind.extend_from_slice(&r);
        vals.extend_from_slice(&v);
        colptr[j + 1] = rowind.len();
    }
    Some(CscMatrix::from_parts(n, n, colptr, rowind, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::leftlook::factorize_leftlooking;
    use parfact_mpsim::{model::CostModel, Machine};
    use parfact_sparse::gen;

    fn run_fanout(a: &CscMatrix, p: usize) -> (CscMatrix, parfact_mpsim::RunReport<bool>) {
        let n = a.ncols();
        let mut gathered: Option<CscMatrix> = None;
        let report = {
            let gathered = parking_lot::Mutex::new(&mut gathered);
            Machine::new(p, CostModel::bluegene_p()).run(|rank| {
                let cols = factorize_rank(rank, a).expect("fan-out factorization failed");
                if let Some(l) = gather_l(rank, n, &cols) {
                    **gathered.lock() = Some(l);
                    true
                } else {
                    false
                }
            })
        };
        (gathered.expect("rank 0 must gather"), report)
    }

    #[test]
    fn fanout_matches_leftlooking_bitwise() {
        let a = gen::laplace2d(9, 8, gen::Stencil2d::FivePoint);
        let reference = factorize_leftlooking(&a).unwrap();
        for p in [1, 2, 3, 5] {
            let (l, _) = run_fanout(&a, p);
            assert_eq!(l.nnz(), reference.l.nnz(), "p={p}");
            for (x, y) in l.values().iter().zip(reference.l.values()) {
                assert_eq!(x.to_bits(), y.to_bits(), "p={p}");
            }
        }
    }

    #[test]
    fn fanout_rejects_indefinite() {
        let a = gen::indefinite(20, 3);
        let r = std::panic::catch_unwind(|| run_fanout(&a, 2));
        assert!(r.is_err());
    }

    #[test]
    fn fanout_message_count_grows_with_ranks() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let (_, r2) = run_fanout(&a, 2);
        let (_, r8) = run_fanout(&a, 8);
        assert!(
            r8.total_msgs() > r2.total_msgs(),
            "fan-out must send more messages at higher rank counts: {} vs {}",
            r8.total_msgs(),
            r2.total_msgs()
        );
    }
}
