//! Baseline algorithms the multifrontal method is measured against.
//!
//! - [`leftlook`] — sequential left-looking simplicial Cholesky: the
//!   textbook column algorithm, used as an independent correctness oracle
//!   and as the sequential baseline in the phase-breakdown tables;
//! - [`fanout`] — the classic distributed **fan-out** column Cholesky:
//!   fine-grained column messages, the algorithm generation the paper's
//!   multifrontal approach displaced. Its per-column messaging drowns in
//!   latency as ranks grow — exactly the scaling contrast EXP-F1 shows.

pub mod fanout;
pub mod leftlook;
