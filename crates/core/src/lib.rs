//! `parfact-core`: supernodal multifrontal sparse symmetric factorization —
//! the system of *"Sparse matrix factorization on massively parallel
//! computers"* (SC 2009), rebuilt in Rust.
//!
//! Three engines factor the same symbolic problem:
//!
//! - [`seq`] — the sequential supernodal multifrontal kernel (also the
//!   per-rank engine of the distributed code, and the correctness oracle);
//! - [`smp`] — shared-memory parallel: work-stealing over the assembly
//!   tree with real threads (real wall-clock speedups on this machine),
//!   with the matching tree-parallel solve in [`smp_solve`];
//! - [`dist`] — distributed-memory: subtree-to-subcube (proportional)
//!   mapping of the assembly tree onto ranks of a
//!   [`parfact_mpsim::Machine`], block-cyclic 1-D/2-D distributed fronts
//!   with pipelined panel broadcasts, and parallel extend-add. This is the
//!   paper's contribution.
//!
//! Baselines the paper's method is measured against live in [`baseline`]:
//! the classic *fan-out* distributed column-Cholesky and a left-looking
//! simplicial sequential code.
//!
//! Most users want the [`solver::SparseCholesky`] façade:
//!
//! ```
//! use parfact_core::solver::{FactorOpts, SparseCholesky};
//! use parfact_sparse::gen;
//!
//! let a = gen::laplace2d(20, 20, gen::Stencil2d::FivePoint);
//! let b = vec![1.0; a.nrows()];
//! let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
//! let x = chol.solve(&b);
//! assert!(parfact_sparse::ops::sym_residual_inf(&a, &x, &b) < 1e-10);
//! ```
// Index loops over parallel arrays (`for j in 0..n` touching several
// slices) are the deliberate idiom of this numerical code; clippy's
// iterator rewrites obscure the subscript math.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod backoff;
pub mod baseline;
pub mod dist;
pub mod error;
pub mod factor;
pub mod frontal;
pub mod mapping;
pub mod scalability;
pub mod schur;
pub mod seq;
pub mod smp;
pub mod smp_solve;
pub mod solver;
pub mod workspace;

pub use error::FactorError;
pub use factor::{Factor, FactorKind};
pub use workspace::Workspace;

/// Re-export of the ordering selector for convenience.
pub type OrderingChoice = parfact_order::Method;
