//! Frontal matrices and extend-add: the data movement of the multifrontal
//! method.
//!
//! The front of supernode `s` is a dense lower-stored matrix of order
//! `f = width(s) + |rows(s)|` whose index space is the concatenation of the
//! supernode's pivot columns and its below-pivot rows. It is assembled from
//! the original matrix entries of the pivot columns plus the **update
//! matrices** (Schur complements) of the children, then partially factored;
//! the leading `width` columns become factor panel `s`, the trailing block
//! becomes this front's own update matrix.

use parfact_sparse::csc::CscMatrix;
use parfact_symbolic::Symbolic;

/// A child's contribution to its parent: the Schur complement over the
/// child's below-pivot rows (dense lower storage).
///
/// The global row indices it spans are not stored — they are exactly
/// `sym.sn_rows[src]`, resolved through [`UpdateMatrix::rows`]. Dropping
/// the owned index vector lets the workspace arenas recycle update
/// buffers without cloning row lists per supernode.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateMatrix {
    /// Supernode whose elimination produced this update.
    pub src: usize,
    /// Column-major `r x r` buffer (`r = sym.sn_rows[src].len()`); lower
    /// triangle valid.
    pub data: Vec<f64>,
}

impl UpdateMatrix {
    /// Global row indices this update spans (the source's `sn_rows`).
    #[inline]
    pub fn rows<'a>(&self, sym: &'a Symbolic) -> &'a [usize] {
        &sym.sn_rows[self.src]
    }

    /// Order of the update matrix.
    #[inline]
    pub fn order(&self, sym: &Symbolic) -> usize {
        self.rows(sym).len()
    }
}

/// Scatter map from global indices into a front's local index space.
/// Reused across fronts to avoid repeated allocation.
#[derive(Clone, Default)]
pub struct FrontScatter {
    loc: Vec<usize>,
    touched: Vec<usize>,
}

impl FrontScatter {
    /// Workspace for matrices of order `n`.
    pub fn new(n: usize) -> Self {
        FrontScatter {
            loc: vec![usize::MAX; n],
            touched: Vec::new(),
        }
    }

    /// Grow the map to cover matrices of order `n` (no-op when already
    /// large enough; lets a default-constructed map be sized lazily).
    pub fn ensure(&mut self, n: usize) {
        if self.loc.len() < n {
            self.loc.resize(n, usize::MAX);
        }
    }

    /// Install the map for supernode `s`: pivot columns get `0..w`, below
    /// rows get `w..f`.
    pub fn set(&mut self, sym: &Symbolic, s: usize) {
        self.clear();
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        for (k, c) in (c0..c1).enumerate() {
            self.loc[c] = k;
            self.touched.push(c);
        }
        let w = c1 - c0;
        for (k, &r) in sym.sn_rows[s].iter().enumerate() {
            self.loc[r] = w + k;
            self.touched.push(r);
        }
    }

    /// Local index of global index `g` (must be inside the current front).
    #[inline]
    pub fn local(&self, g: usize) -> usize {
        let l = self.loc[g];
        debug_assert_ne!(l, usize::MAX, "global index {g} not in front");
        l
    }

    fn clear(&mut self) {
        for &t in &self.touched {
            self.loc[t] = usize::MAX;
        }
        self.touched.clear();
    }
}

/// Assemble the front of supernode `s`: zero the buffer, scatter the pivot
/// columns of `ap`, then extend-add every child update. `front` must have
/// room for `f*f` entries and is fully overwritten.
///
/// Returns `(f, entries)` — the front order and the number of entries
/// scattered or added into the front (original-matrix entries plus applied
/// extend-add contributions), which instrumentation converts to assembly
/// byte counts.
pub fn assemble_front(
    ap: &CscMatrix,
    sym: &Symbolic,
    s: usize,
    scatter: &mut FrontScatter,
    children_updates: &[UpdateMatrix],
    front: &mut Vec<f64>,
) -> (usize, u64) {
    let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
    let w = c1 - c0;
    let f = w + sym.sn_rows[s].len();
    front.clear();
    front.resize(f * f, 0.0);
    scatter.set(sym, s);
    let mut entries = 0u64;
    // Original matrix entries of the pivot columns (lower part only).
    for c in c0..c1 {
        let (rows, vals) = ap.col(c);
        let lc = c - c0;
        entries += rows.len() as u64;
        for (&r, &v) in rows.iter().zip(vals) {
            debug_assert!(r >= c);
            let lr = scatter.local(r);
            front[lc * f + lr] = v;
        }
    }
    // Extend-add children updates.
    for upd in children_updates {
        entries += extend_add(upd.rows(sym), &upd.data, scatter, front, f);
    }
    (f, entries)
}

/// Scatter-add one update matrix (`rows.len() x rows.len()` column-major
/// `data`, lower triangle valid) into a front through the scatter map.
/// The map is monotone (both index lists are sorted), so the child's lower
/// triangle lands in the parent's lower triangle. Returns the number of
/// (nonzero) entries added.
pub fn extend_add(
    rows: &[usize],
    data: &[f64],
    scatter: &FrontScatter,
    front: &mut [f64],
    f: usize,
) -> u64 {
    let r = rows.len();
    let mut added = 0u64;
    for j in 0..r {
        let lj = scatter.local(rows[j]);
        let src = &data[j * r..j * r + r];
        for (i, &v) in src.iter().enumerate().skip(j) {
            if v != 0.0 {
                let li = scatter.local(rows[i]);
                front[lj * f + li] += v;
                added += 1;
            }
        }
    }
    added
}

/// Extract the trailing `r x r` lower block of a partially-factored front
/// into `data` (resized to fit, upper triangle zeroed) as the update
/// matrix for the parent. The buffer typically comes from a
/// [`crate::workspace::FrontWorkspace`] pool.
pub fn extract_update_into(sym: &Symbolic, s: usize, front: &[f64], f: usize, data: &mut Vec<f64>) {
    let w = sym.sn_width(s);
    let r = f - w;
    // clear + resize zeroes the whole buffer (even a recycled one) while
    // keeping its capacity.
    data.clear();
    data.resize(r * r, 0.0);
    for j in 0..r {
        let src = &front[(w + j) * f + w..(w + j) * f + f];
        let dst = &mut data[j * r..(j + 1) * r];
        // Lower triangle only.
        dst[j..].copy_from_slice(&src[j..]);
    }
}

/// Allocating convenience wrapper around [`extract_update_into`].
pub fn extract_update(sym: &Symbolic, s: usize, front: &[f64], f: usize) -> UpdateMatrix {
    let mut data = Vec::new();
    extract_update_into(sym, s, front, f, &mut data);
    UpdateMatrix { src: s, data }
}

/// Extract the factor panel (leading `w` columns, all `f` rows) of a
/// factored front. Row layout: pivot block first, below rows after — the
/// storage format of [`crate::factor::Factor`].
pub fn extract_panel(front: &[f64], f: usize, w: usize) -> Vec<f64> {
    front[..f * w].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::gen;
    use parfact_symbolic::{analyze, AmalgOpts};

    fn small_problem() -> (Symbolic, CscMatrix) {
        let a = gen::laplace2d(4, 4, gen::Stencil2d::FivePoint);
        analyze(&a, &AmalgOpts::default())
    }

    #[test]
    fn scatter_maps_cols_then_rows() {
        let (sym, _) = small_problem();
        let mut sc = FrontScatter::new(sym.n);
        let s = 0;
        sc.set(&sym, s);
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        for (k, c) in (c0..c1).enumerate() {
            assert_eq!(sc.local(c), k);
        }
        for (k, &r) in sym.sn_rows[s].iter().enumerate() {
            assert_eq!(sc.local(r), (c1 - c0) + k);
        }
    }

    #[test]
    fn scatter_reuse_clears_previous_front() {
        let (sym, _) = small_problem();
        let mut sc = FrontScatter::new(sym.n);
        sc.set(&sym, 0);
        let first_cols = sym.sn_cols(0);
        sc.set(&sym, sym.nsuper() - 1);
        // Indices of supernode 0 that are not part of the root front must be
        // unmapped now (debug_assert fires in local()); check via raw array.
        for c in first_cols {
            let in_root = sym.sn_cols(sym.nsuper() - 1).contains(&c)
                || sym.sn_rows[sym.nsuper() - 1].contains(&c);
            if !in_root {
                assert_eq!(sc.loc[c], usize::MAX);
            }
        }
    }

    #[test]
    fn assemble_places_matrix_entries() {
        let (sym, ap) = small_problem();
        let mut sc = FrontScatter::new(sym.n);
        let mut front = Vec::new();
        let s = 0;
        let (f, entries) = assemble_front(&ap, &sym, s, &mut sc, &[], &mut front);
        assert_eq!(f, sym.front_order(s));
        // No children: the entry count is exactly the pivot columns' nnz.
        let (c0, c1) = (sym.sn_ptr[s], sym.sn_ptr[s + 1]);
        let nnz: usize = (c0..c1).map(|c| ap.col(c).0.len()).sum();
        assert_eq!(entries, nnz as u64);
        // Diagonal of the first pivot column must be the matrix diagonal.
        assert_eq!(front[0], ap.get(c0, c0).unwrap());
    }

    #[test]
    fn extend_add_accumulates_symmetrically_mapped_entries() {
        let (sym, ap) = small_problem();
        // Use the root supernode and synthesize an update over a subset of
        // its index space.
        let s = sym.nsuper() - 1;
        let mut sc = FrontScatter::new(sym.n);
        let mut front = Vec::new();
        let (f, _) = assemble_front(&ap, &sym, s, &mut sc, &[], &mut front);
        let before = front.clone();
        let cols: Vec<usize> = sym.sn_cols(s).collect();
        assert!(cols.len() >= 2, "root supernode too small for this test");
        let rows = vec![cols[0], cols[1]];
        let data = vec![10.0, 20.0, 0.0, 30.0]; // lower 2x2
        let added = extend_add(&rows, &data, &sc, &mut front, f);
        assert_eq!(added, 3, "three nonzero lower entries");
        let (l0, l1) = (sc.local(rows[0]), sc.local(rows[1]));
        assert_eq!(front[l0 * f + l0], before[l0 * f + l0] + 10.0);
        assert_eq!(front[l0 * f + l1], before[l0 * f + l1] + 20.0);
        assert_eq!(front[l1 * f + l1], before[l1 * f + l1] + 30.0);
    }

    #[test]
    fn extract_update_is_lower_trailing_block() {
        // Strict supernodes guarantee a non-root supernode with below rows.
        let a = gen::laplace2d(4, 4, gen::Stencil2d::FivePoint);
        let (sym, ap) = analyze(
            &a,
            &AmalgOpts {
                min_width: 0,
                relax_frac: 0.0,
            },
        );
        let s = (0..sym.nsuper())
            .find(|&s| !sym.sn_rows[s].is_empty() && sym.front_order(s) >= 3)
            .unwrap();
        let mut sc = FrontScatter::new(sym.n);
        let mut front = Vec::new();
        let (fo, _) = assemble_front(&ap, &sym, s, &mut sc, &[], &mut front);
        // Stamp recognizable values in the trailing block.
        let wo = sym.sn_width(s);
        for j in wo..fo {
            for i in j..fo {
                front[j * fo + i] = (100 * i + j) as f64;
            }
        }
        let upd = extract_update(&sym, s, &front, fo);
        let r = fo - wo;
        for j in 0..r {
            for i in j..r {
                assert_eq!(upd.data[j * r + i], (100 * (i + wo) + (j + wo)) as f64);
            }
        }
    }

    #[test]
    fn extract_panel_takes_leading_columns() {
        let front: Vec<f64> = (0..20).map(|x| x as f64).collect(); // 4x5, f=4
        let panel = extract_panel(&front, 4, 3);
        assert_eq!(panel, (0..12).map(|x| x as f64).collect::<Vec<_>>());
    }
}
