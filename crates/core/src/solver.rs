//! High-level solver façade: ordering → symbolic analysis → numeric
//! factorization → solve, with engine and ordering selection.

use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::smp::SmpOpts;
use parfact_order::Method;
use parfact_sparse::csc::CscMatrix;
use parfact_symbolic::{analyze, AmalgOpts, Symbolic};
use std::sync::Arc;

/// Engine selection for the in-process factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// Single-threaded multifrontal.
    Sequential,
    /// Shared-memory parallel multifrontal.
    Smp(SmpOpts),
}

/// Options for [`SparseCholesky::factorize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorOpts {
    /// Fill-reducing ordering.
    pub ordering: Method,
    /// Supernode amalgamation.
    pub amalg: AmalgOpts,
    /// `LLᵀ` or `LDLᵀ`.
    pub kind: FactorKind,
    /// Execution engine.
    pub engine: Engine,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            ordering: Method::default(),
            amalg: AmalgOpts::default(),
            kind: FactorKind::Llt,
            engine: Engine::Sequential,
        }
    }
}

/// Phase timings of a factorization (wall clock, seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    pub ordering_s: f64,
    pub symbolic_s: f64,
    pub numeric_s: f64,
}

/// A factorized sparse symmetric system.
pub struct SparseCholesky {
    factor: Factor,
    times: PhaseTimes,
    /// The permuted matrix actually factored (kept for refinement).
    ap: CscMatrix,
}

impl SparseCholesky {
    /// Order, analyze and factor `a` (symmetric-lower CSC).
    pub fn factorize(a: &CscMatrix, opts: &FactorOpts) -> Result<Self, FactorError> {
        a.check_sym_lower()?;
        let t0 = std::time::Instant::now();
        let fill = parfact_order::order_matrix(a, opts.ordering);
        let t1 = std::time::Instant::now();
        let af = fill.apply_sym_lower(a);
        let (sym, ap) = analyze(&af, &opts.amalg);
        let total_perm = sym.post.compose(&fill);
        let sym = Arc::new(sym);
        let t2 = std::time::Instant::now();
        let factor = match opts.engine {
            Engine::Sequential => crate::seq::factorize_seq(&ap, &sym, opts.kind, total_perm)?,
            Engine::Smp(smp) => crate::smp::factorize_smp(&ap, &sym, opts.kind, total_perm, &smp)?,
        };
        let t3 = std::time::Instant::now();
        Ok(SparseCholesky {
            factor,
            times: PhaseTimes {
                ordering_s: (t1 - t0).as_secs_f64(),
                symbolic_s: (t2 - t1).as_secs_f64(),
                numeric_s: (t3 - t2).as_secs_f64(),
            },
            ap,
        })
    }

    /// Refactorize with the same symbolic analysis (new values, same
    /// pattern) — the production pattern for time-stepping simulations.
    pub fn refactorize(&mut self, a: &CscMatrix, engine: Engine) -> Result<(), FactorError> {
        let ap_new = self.factor.perm.apply_sym_lower(a);
        let t0 = std::time::Instant::now();
        let kind = self.factor.kind;
        let perm = self.factor.perm.clone();
        let sym = Arc::clone(&self.factor.sym);
        self.factor = match engine {
            Engine::Sequential => crate::seq::factorize_seq(&ap_new, &sym, kind, perm)?,
            Engine::Smp(smp) => crate::smp::factorize_smp(&ap_new, &sym, kind, perm, &smp)?,
        };
        self.ap = ap_new;
        self.times.numeric_s = t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.factor.solve(b)
    }

    /// Solve with iterative refinement; returns `(x, final residual ∞-norm)`.
    /// Needs the original matrix to compute residuals — pass the same `a`
    /// given to `factorize`.
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64], iters: usize) -> (Vec<f64>, f64) {
        self.factor.solve_refined(a, b, iters)
    }

    /// The underlying factor.
    pub fn factor(&self) -> &Factor {
        &self.factor
    }

    /// The symbolic analysis.
    pub fn symbolic(&self) -> &Symbolic {
        &self.factor.sym
    }

    /// Phase wall-clock timings.
    pub fn times(&self) -> PhaseTimes {
        self.times
    }

    /// Factor nonzeros (padding included).
    pub fn factor_nnz(&self) -> usize {
        self.factor.nnz()
    }

    /// Predicted factorization flops.
    pub fn factor_flops(&self) -> f64 {
        self.factor.sym.factor_flops()
    }

    /// The permuted matrix the factor refers to (testing/diagnostics).
    pub fn permuted_matrix(&self) -> &CscMatrix {
        &self.ap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::{gen, ops};

    #[test]
    fn default_pipeline_solves_laplace() {
        let a = gen::laplace2d(15, 13, gen::Stencil2d::FivePoint);
        let b = vec![1.0; a.nrows()];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
        assert!(chol.factor_nnz() >= a.nnz());
        assert!(chol.factor_flops() > 0.0);
    }

    #[test]
    fn all_orderings_solve_correctly() {
        let a = gen::laplace3d(4, 5, 4, gen::Stencil3d::SevenPoint);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
        for ordering in [
            Method::Natural,
            Method::Rcm,
            Method::MinDegree,
            Method::default(),
        ] {
            let chol = SparseCholesky::factorize(
                &a,
                &FactorOpts {
                    ordering,
                    ..FactorOpts::default()
                },
            )
            .unwrap();
            let x = chol.solve(&b);
            assert!(
                ops::sym_residual_inf(&a, &x, &b) < 1e-12,
                "ordering {ordering:?}"
            );
        }
    }

    #[test]
    fn smp_engine_through_facade() {
        let a = gen::elasticity3d(4, 3, 3);
        let b = vec![0.5; a.nrows()];
        let chol = SparseCholesky::factorize(
            &a,
            &FactorOpts {
                engine: Engine::Smp(SmpOpts {
                    threads: 4,
                    big_front: 128,
                }),
                ..FactorOpts::default()
            },
        )
        .unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn nd_beats_natural_on_grid_fill() {
        let a = gen::laplace2d(24, 24, gen::Stencil2d::FivePoint);
        let nat = SparseCholesky::factorize(
            &a,
            &FactorOpts {
                ordering: Method::Natural,
                ..FactorOpts::default()
            },
        )
        .unwrap();
        let nd = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        assert!(
            nd.factor_nnz() < nat.factor_nnz(),
            "nd {} vs natural {}",
            nd.factor_nnz(),
            nat.factor_nnz()
        );
    }

    #[test]
    fn ldlt_handles_indefinite() {
        let a = gen::indefinite(60, 3);
        let b = vec![1.0; 60];
        let spd_attempt = SparseCholesky::factorize(&a, &FactorOpts::default());
        assert!(matches!(
            spd_attempt,
            Err(FactorError::NotPositiveDefinite { .. })
        ));
        let chol = SparseCholesky::factorize(
            &a,
            &FactorOpts {
                kind: FactorKind::Ldlt,
                ..FactorOpts::default()
            },
        )
        .unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn refactorize_reuses_symbolic() {
        let a = gen::random_spd(60, 4, 1);
        let mut chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let nnz_before = chol.factor_nnz();
        // Same pattern, scaled values.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        chol.refactorize(&a2, Engine::Sequential).unwrap();
        assert_eq!(chol.factor_nnz(), nnz_before);
        let b = vec![3.0; 60];
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn rejects_non_lower_input() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 1.0); // upper entry
        coo.push(1, 1, 2.0);
        let bad = coo.to_csc();
        assert!(matches!(
            SparseCholesky::factorize(&bad, &FactorOpts::default()),
            Err(FactorError::BadStructure(_))
        ));
    }

    #[test]
    fn refined_solve_reports_residual() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let b = vec![2.0; 100];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let (x, r) = chol.solve_refined(&a, &b, 2);
        assert!(r < 1e-12);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-13);
    }
}
