//! High-level solver façade: ordering → symbolic analysis → numeric
//! factorization → solve, with engine and ordering selection and a
//! uniform observability surface ([`FactorReport`]) across all three
//! engines.

use crate::dist;
use crate::error::FactorError;
use crate::factor::{Factor, FactorKind};
use crate::mapping::MapStrategy;
use crate::smp::SmpOpts;
use crate::workspace::Workspace;
use parfact_mpsim::model::CostModel;
use parfact_mpsim::FaultPlan;
use parfact_order::Method;
use parfact_sparse::csc::CscMatrix;
use parfact_symbolic::{analyze_with, AmalgOpts, Symbolic};
use parfact_trace::{Collector, Counters, FactorReport, Phase, SolveReport, SpanEvent, TraceLevel};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Options for the simulator-backed distributed engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DistOpts {
    /// Number of simulated ranks.
    pub ranks: usize,
    /// Machine cost model for the simulated clocks.
    pub model: CostModel,
    /// Assembly-tree-to-rank mapping strategy.
    pub strategy: MapStrategy,
    /// Run the strict-postorder blocking schedule instead of the default
    /// event-driven one (the EXP-A7 ablation baseline). The factor is
    /// bitwise identical either way; only the simulated clocks differ.
    /// Ignored under fault injection, which always runs event-driven.
    pub sync_schedule: bool,
    /// Deterministic fault-injection plan for the simulated machine (see
    /// [`FaultPlan::parse`] for the `crash:`/`delay:`/`dup:` grammar).
    /// Empty by default: the fault machinery is entirely bypassed.
    pub faults: FaultPlan,
    /// Machine-wide receive deadline in virtual seconds. `None` derives a
    /// generous one from the cost model when `faults` is non-empty, and
    /// disables timeouts otherwise.
    pub recv_timeout_s: Option<f64>,
    /// Record per-rank checkpoints at distributed-front epochs so an
    /// injected crash restarts from the last consistent epoch instead of
    /// from scratch. The recovered factor is bitwise identical either way.
    pub checkpoint: bool,
    /// Restart attempts after a fault verdict before the typed error
    /// ([`FactorError::RankFailed`] / [`FactorError::TimedOut`]) surfaces.
    pub max_restarts: usize,
}

impl Default for DistOpts {
    fn default() -> Self {
        DistOpts {
            ranks: 4,
            model: CostModel::bluegene_p(),
            strategy: MapStrategy::default(),
            sync_schedule: false,
            faults: FaultPlan::new(),
            recv_timeout_s: None,
            checkpoint: false,
            max_restarts: 2,
        }
    }
}

/// Engine selection for the factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Single-threaded multifrontal.
    Sequential,
    /// Shared-memory parallel multifrontal.
    Smp(SmpOpts),
    /// Distributed multifrontal on the simulated message-passing machine.
    /// `LLᵀ` only; the factor is gathered to the host, so `solve` works
    /// like the other engines. Reports carry per-rank statistics.
    Dist(DistOpts),
}

impl Engine {
    /// Stable engine name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Smp(_) => "smp",
            Engine::Dist(_) => "dist",
        }
    }
}

/// Options for [`SparseCholesky::factorize`].
///
/// Construct with the builder and override what you need:
///
/// ```
/// use parfact_core::solver::{Engine, FactorOpts};
/// use parfact_core::smp::SmpOpts;
///
/// let opts = FactorOpts::new()
///     .ordering(parfact_order::Method::default())
///     .engine(Engine::Smp(SmpOpts::default()));
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable, but new options
/// (like `trace`) can be added without breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct FactorOpts {
    /// Fill-reducing ordering.
    pub ordering: Method,
    /// Supernode amalgamation.
    pub amalg: AmalgOpts,
    /// `LLᵀ` or `LDLᵀ`.
    pub kind: FactorKind,
    /// Execution engine.
    pub engine: Engine,
    /// Instrumentation level ([`TraceLevel::Off`] by default: every hook in
    /// the engines reduces to a single branch).
    pub trace: TraceLevel,
    /// Worker threads for the analysis phase (ordering + symbolic).
    /// `0` (the default) inherits the numeric engine's parallelism: the SMP
    /// engine's thread count, or the machine's available parallelism
    /// otherwise. The analysis result is bitwise identical at every thread
    /// count — this knob trades wall-clock only.
    pub analysis_threads: usize,
}

impl Default for FactorOpts {
    fn default() -> Self {
        FactorOpts {
            ordering: Method::default(),
            amalg: AmalgOpts::default(),
            kind: FactorKind::Llt,
            engine: Engine::Sequential,
            trace: TraceLevel::Off,
            analysis_threads: 0,
        }
    }
}

impl FactorOpts {
    /// Default options (alias of `Default`, reads better in builder chains).
    pub fn new() -> Self {
        FactorOpts::default()
    }

    /// Set the fill-reducing ordering.
    pub fn ordering(mut self, ordering: Method) -> Self {
        self.ordering = ordering;
        self
    }

    /// Set the supernode amalgamation options.
    pub fn amalg(mut self, amalg: AmalgOpts) -> Self {
        self.amalg = amalg;
        self
    }

    /// Choose `LLᵀ` or `LDLᵀ`.
    pub fn kind(mut self, kind: FactorKind) -> Self {
        self.kind = kind;
        self
    }

    /// Choose the execution engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the analysis-phase worker count (`0` = inherit from the engine).
    pub fn analysis_threads(mut self, threads: usize) -> Self {
        self.analysis_threads = threads;
        self
    }

    /// Set the instrumentation level.
    pub fn trace(mut self, trace: TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// The analysis-phase worker count this option set resolves to.
    pub fn resolved_analysis_threads(&self) -> usize {
        if self.analysis_threads > 0 {
            return self.analysis_threads;
        }
        match &self.engine {
            Engine::Smp(smp) => crate::smp::resolve_threads(smp.threads),
            _ => crate::smp::resolve_threads(0),
        }
    }
}

/// Engine selection for the solve phase, independent of the engine that
/// produced the factor (the factor is host-resident under every
/// [`Engine`], so any solve engine applies to any factor).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveEngine {
    /// Let the solver pick. Currently the blocked sequential sweep: its
    /// results are bitwise reproducible across runs and thread counts,
    /// which is the right default for a direct solver.
    #[default]
    Auto,
    /// The blocked sequential sweep, explicitly.
    Sequential,
    /// Tree-parallel shared-memory sweep over the assembly tree.
    /// `threads: 0` sizes the pool from the machine; a pool of one falls
    /// back to the sequential sweep. Deterministic — contributions fold in
    /// assembly-tree child order regardless of scheduling, so repeated
    /// runs and different thread counts (≥ 2) agree bitwise — but the fold
    /// order differs from `Sequential`'s direct scatter, so the two
    /// engines agree to rounding, not bit for bit.
    Smp {
        /// Worker threads (0 = auto).
        threads: usize,
    },
}

/// Options for [`SparseCholesky::solve_with`], mirroring the
/// [`FactorOpts`] builder. `#[non_exhaustive]`: construct with
/// [`SolveOpts::new`] and override what you need.
///
/// ```
/// use parfact_core::solver::{SolveEngine, SolveOpts};
///
/// let opts = SolveOpts::new()
///     .refine(2)
///     .engine(SolveEngine::Smp { threads: 4 });
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveOpts {
    /// Iterative-refinement correction steps (`x += A⁻¹ (b − A x)`),
    /// applied per column against the factored (permuted, possibly
    /// equilibrated) matrix. `0` by default.
    pub refine: usize,
    /// Execution engine for the triangular sweeps.
    pub engine: SolveEngine,
    /// Symmetric equilibration scale `d`: set when the factor was computed
    /// from `D·A·D` (see [`crate::analysis::equilibrate`]); the solve then
    /// returns `x = D · (DAD)⁻¹ · D b`, the solution of the original
    /// system.
    pub scale: Option<Vec<f64>>,
    /// Compute [`Solved::residual`] even when no refinement runs. Off by
    /// default: the extra matrix-vector product per column is pure
    /// diagnostics cost.
    pub residual: bool,
}

impl SolveOpts {
    /// Default options (alias of `Default`, reads better in builder chains).
    pub fn new() -> Self {
        SolveOpts::default()
    }

    /// Set the number of iterative-refinement steps.
    pub fn refine(mut self, iters: usize) -> Self {
        self.refine = iters;
        self
    }

    /// Choose the solve engine.
    pub fn engine(mut self, engine: SolveEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Declare the factor equilibrated with scale `d` (from
    /// [`crate::analysis::equilibrate`]); right-hand sides are scaled by
    /// `D` on the way in and solutions by `D` on the way out.
    pub fn equilibrate(mut self, d: Vec<f64>) -> Self {
        self.scale = Some(d);
        self
    }

    /// Request the final residual in [`Solved::residual`] even without
    /// refinement steps.
    pub fn residual(mut self, compute: bool) -> Self {
        self.residual = compute;
        self
    }
}

/// A borrowed right-hand-side block: `nrhs` vectors of length `n` stored
/// column-major in one flat slice. The typed view keeps `solve_with` from
/// guessing how a flat slice splits into columns.
#[derive(Debug, Clone, Copy)]
pub struct RhsBlock<'a> {
    data: &'a [f64],
    nrhs: usize,
}

impl<'a> RhsBlock<'a> {
    /// View `data` as `nrhs` columns (validated against the factored
    /// system's order inside [`SparseCholesky::solve_with`]).
    pub fn new(data: &'a [f64], nrhs: usize) -> Self {
        RhsBlock { data, nrhs }
    }

    /// A single right-hand side.
    pub fn single(b: &'a [f64]) -> Self {
        RhsBlock { data: b, nrhs: 1 }
    }

    /// The flat column-major storage.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Number of right-hand-side columns.
    pub fn ncols(&self) -> usize {
        self.nrhs
    }
}

/// Result of [`SparseCholesky::solve_with`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct Solved {
    /// Solution block, `n x nrhs` column-major (same layout as the input
    /// [`RhsBlock`]).
    pub x: Vec<f64>,
    /// Final residual ∞-norm over all columns, reported in the caller's
    /// (original) system: permutation leaves the ∞-norm alone, and under
    /// equilibration the scaled-space residual `r̂ = D(b − A x)` is
    /// unscaled by `D⁻¹` before the norm. `Some` when refinement ran
    /// (`SolveOpts::refine > 0`) or `SolveOpts::residual` asked for it.
    pub residual: Option<f64>,
}

/// Interior-mutable solve-phase accumulator: `solve_with` takes `&self`,
/// but every solve feeds counts, wall-clock, flops, and (when the session
/// traces at timeline level) spans into the report.
#[derive(Default)]
struct SolveStats(Mutex<SolveStatsInner>);

#[derive(Default)]
struct SolveStatsInner {
    solves: u64,
    rhs: u64,
    seconds: f64,
    flops: f64,
    /// Solve spans in solve-local time: consecutive solves are laid
    /// end-to-end from 0; `report_with_solve` shifts them past the factor
    /// spans.
    spans: Vec<SpanEvent>,
    cursor_s: f64,
}

impl SolveStats {
    fn accumulate(
        &self,
        nrhs: usize,
        seconds: f64,
        flops: f64,
        mut spans: Vec<SpanEvent>,
        timeline: bool,
    ) {
        let mut g = self.0.lock().unwrap();
        g.solves += 1;
        g.rhs += nrhs as u64;
        g.seconds += seconds;
        g.flops += flops;
        if timeline {
            if spans.is_empty() {
                // Engines without per-supernode solve hooks (the sequential
                // sweep) still contribute one whole-solve span.
                spans.push(SpanEvent {
                    phase: Phase::Solve,
                    supernode: None,
                    who: 0,
                    start_s: 0.0,
                    dur_s: seconds,
                });
            }
            let base = g.cursor_s;
            let mut end = base;
            for mut s in spans {
                s.start_s += base;
                end = end.max(s.start_s + s.dur_s);
                g.spans.push(s);
            }
            g.cursor_s = end;
        }
    }
}

/// A factorized sparse symmetric system.
pub struct SparseCholesky {
    factor: Factor,
    report: FactorReport,
    trace: TraceLevel,
    /// The permuted matrix actually factored (kept for refinement).
    ap: CscMatrix,
    /// Numeric-factorization arenas, reused across `refactorize` calls so
    /// the steady state allocates nothing per supernode.
    ws: Workspace,
    /// Solve-phase accumulator (counts, time, flops, spans). Interior
    /// mutability keeps `solve_with` callable through `&self`.
    solve_stats: SolveStats,
}

impl SparseCholesky {
    /// Order, analyze and factor `a` (symmetric-lower CSC).
    ///
    /// All engines share one error contract: a matrix that is not positive
    /// definite returns [`FactorError::NotPositiveDefinite`]. Under
    /// [`Engine::Dist`] the failing simulated rank reports the error and
    /// the machine unblocks its peers — no panic, no hang. `Dist` +
    /// [`FactorKind::Ldlt`] returns [`FactorError::Unsupported`].
    pub fn factorize(a: &CscMatrix, opts: &FactorOpts) -> Result<Self, FactorError> {
        a.check_sym_lower()?;
        // The analysis phase records into its own collector so its stage
        // counters and spans never mix with a numeric engine's. Span
        // recording follows the session level; below `Timeline` only the
        // per-stage second counters are kept.
        let analysis_threads = opts.resolved_analysis_threads();
        let alevel = if opts.trace.timeline() {
            TraceLevel::Timeline
        } else if opts.trace != TraceLevel::Off {
            TraceLevel::Counters
        } else {
            TraceLevel::Off
        };
        let atr = Collector::new(alevel);
        // lint:allow(R1) phase timers: report wall time of real host work
        let t0 = Instant::now();
        let fill = parfact_order::order_matrix_with(a, opts.ordering, analysis_threads, &atr);
        // lint:allow(R1) phase timers: report wall time of real host work
        let t1 = Instant::now();
        let af = fill.apply_sym_lower(a);
        let (sym, ap) = analyze_with(&af, &opts.amalg, analysis_threads, &atr);
        let total_perm = sym.post.compose(&fill);
        let sym = Arc::new(sym);
        // lint:allow(R1) phase timers: report wall time of real host work
        let t2 = Instant::now();
        let analysis_counters = atr.snapshot();
        let analysis_spans = atr.take_spans();
        let mut ws = Workspace::new();
        let EngineRun {
            factor,
            counters,
            ranks,
            mut spans,
            faults,
            scalability,
        } = run_engine(
            &ap,
            &sym,
            opts.kind,
            total_perm,
            &opts.engine,
            opts.trace,
            &mut ws,
        )?;
        let numeric_s = t2.elapsed().as_secs_f64();
        // Analysis spans join the numeric stream unshifted: they render in
        // their own timeline lane (`LaneKind::Analysis`), and each phase
        // keeps its own clock origin — shifting virtual-clock dist spans by
        // a wall-clock offset would break their exact adjacency.
        if !analysis_spans.is_empty() {
            let mut merged = analysis_spans;
            merged.append(&mut spans);
            spans = merged;
        }
        let profile = timeline_profile(&sym, opts.trace, &spans, &ranks);
        let analysis = (alevel != TraceLevel::Off).then(|| {
            parfact_trace::AnalysisReport::from_counters(&analysis_counters, analysis_threads)
        });
        let mut report = FactorReport {
            engine: opts.engine.name().to_string(),
            n: sym.n,
            nnz_a: ap.nnz(),
            factor_nnz: factor.nnz(),
            nsuper: sym.nsuper(),
            predicted_flops: sym.factor_flops(),
            refactorizations: 0,
            ordering_s: (t1 - t0).as_secs_f64(),
            symbolic_s: (t2 - t1).as_secs_f64(),
            numeric_s,
            counters,
            ranks,
            spans,
            profile,
            analysis,
            solve: None,
            faults,
            scalability,
        };
        if matches!(opts.engine, Engine::Dist(_)) {
            // The simulator counts traffic per rank, not fronts; every
            // supernode is factored exactly once across the machine.
            report.counters.fronts_factored = sym.nsuper() as u64;
        }
        Ok(SparseCholesky {
            factor,
            report,
            trace: opts.trace,
            ap,
            ws,
            solve_stats: SolveStats::default(),
        })
    }

    /// Refactorize with the same symbolic analysis (new values, same
    /// pattern) — the production pattern for time-stepping simulations.
    ///
    /// Host engines (`Sequential`, `Smp`) overwrite the stored factor **in
    /// place** through the solver's retained [`Workspace`] arenas, so a
    /// steady-state refactorization performs no per-supernode heap
    /// allocation. Consequence of in-place operation: if this returns
    /// `Err` (e.g. the new values are not positive definite), the stored
    /// factor is partially overwritten and numerically invalid — call
    /// `refactorize` again with good values (or rebuild with
    /// [`SparseCholesky::factorize`]) before trusting `solve`.
    ///
    /// Report semantics: `ordering_s` and `symbolic_s` keep the one-time
    /// analysis cost (it was genuinely reused, not re-paid), while
    /// `numeric_s`, `counters`, `ranks`, and `spans` describe the **latest**
    /// numeric factorization; `refactorizations` counts how many times the
    /// numeric phase has been redone.
    pub fn refactorize(&mut self, a: &CscMatrix, engine: Engine) -> Result<(), FactorError> {
        let ap_new = self.factor.perm.apply_sym_lower(a);
        let sym = Arc::clone(&self.factor.sym);
        // lint:allow(R1) numeric-phase timer: reports wall time of real host work
        let t0 = Instant::now();
        let (counters, ranks, spans, faults, scalability) = match &engine {
            Engine::Sequential => {
                let tr = Collector::new(self.trace);
                crate::seq::factorize_seq_into(&ap_new, &sym, &tr, &mut self.ws, &mut self.factor)?;
                let ranks = worker_ranks(&tr);
                let scalability = host_scalability(&sym, &ranks);
                (tr.snapshot(), ranks, tr.take_spans(), None, scalability)
            }
            Engine::Smp(smp) => {
                let tr = Collector::new(self.trace);
                crate::smp::factorize_smp_into(
                    &ap_new,
                    &sym,
                    smp,
                    &tr,
                    &mut self.ws,
                    &mut self.factor,
                )?;
                let ranks = worker_ranks(&tr);
                let scalability = host_scalability(&sym, &ranks);
                (tr.snapshot(), ranks, tr.take_spans(), None, scalability)
            }
            Engine::Dist(_) => {
                // The distributed engine gathers a fresh factor from the
                // simulated machine; it replaces the stored one wholesale.
                let kind = self.factor.kind;
                let perm = self.factor.perm.clone();
                let run = run_engine(&ap_new, &sym, kind, perm, &engine, self.trace, &mut self.ws)?;
                self.factor = run.factor;
                (
                    run.counters,
                    run.ranks,
                    run.spans,
                    run.faults,
                    run.scalability,
                )
            }
        };
        self.ap = ap_new;
        self.report.engine = engine.name().to_string();
        self.report.numeric_s = t0.elapsed().as_secs_f64();
        self.report.counters = counters;
        if matches!(engine, Engine::Dist(_)) {
            self.report.counters.fronts_factored = sym.nsuper() as u64;
        }
        self.report.ranks = ranks;
        self.report.spans = spans;
        self.report.faults = faults;
        self.report.scalability = scalability;
        self.report.profile =
            timeline_profile(&sym, self.trace, &self.report.spans, &self.report.ranks);
        self.report.refactorizations += 1;
        Ok(())
    }

    /// Solve `A x = b` (legacy shim; **panics** if `b.len()` is wrong).
    /// Prefer [`SparseCholesky::solve_with`], which returns
    /// [`FactorError::DimensionMismatch`] instead and batches, refines and
    /// records solve statistics.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_with(RhsBlock::single(b), &SolveOpts::new())
            .expect("SparseCholesky::solve")
            .x
    }

    /// Solve `A X = B` for a right-hand-side block under [`SolveOpts`]:
    /// the unified entry point the legacy `solve`/`solve_refined`/
    /// `solve_equilibrated` surface funnels into.
    ///
    /// All `nrhs` columns stream through the factor panels together
    /// (BLAS-3 blocked sweeps), and every column's floating-point operation
    /// order is independent of `nrhs` — on any given engine, batched
    /// results are bitwise identical to one-at-a-time solves.
    ///
    /// ```
    /// use parfact_core::solver::{FactorOpts, RhsBlock, SolveOpts, SparseCholesky};
    ///
    /// let a = parfact_sparse::gen::laplace2d(8, 8, parfact_sparse::gen::Stencil2d::FivePoint);
    /// let chol = SparseCholesky::factorize(&a, &FactorOpts::new()).unwrap();
    /// let b = vec![1.0; 64 * 2]; // two stacked right-hand sides
    /// let out = chol.solve_with(RhsBlock::new(&b, 2), &SolveOpts::new()).unwrap();
    /// assert_eq!(out.x.len(), 64 * 2);
    /// ```
    pub fn solve_with(&self, b: RhsBlock<'_>, opts: &SolveOpts) -> Result<Solved, FactorError> {
        let n = self.factor.sym.n;
        let nrhs = b.nrhs;
        if b.data.len() != n * nrhs {
            return Err(FactorError::DimensionMismatch {
                expected: n * nrhs,
                got: b.data.len(),
            });
        }
        if let Some(d) = &opts.scale {
            if d.len() != n {
                return Err(FactorError::DimensionMismatch {
                    expected: n,
                    got: d.len(),
                });
            }
        }
        // lint:allow(R1) solve-phase timer: reports wall time of real host work
        let t0 = Instant::now();
        // Equilibrated systems: the factor holds D·A·D, so solve against
        // the scaled right-hand side and unscale the solution.
        let mut bs = b.data.to_vec();
        if let Some(d) = &opts.scale {
            for col in bs.chunks_mut(n.max(1)) {
                for (v, &di) in col.iter_mut().zip(d) {
                    *v *= di;
                }
            }
        }
        let tr = Collector::new(self.trace);
        let mut x = match opts.engine {
            SolveEngine::Auto | SolveEngine::Sequential => self.factor.try_solve_many(&bs, nrhs)?,
            SolveEngine::Smp { threads } => {
                crate::smp_solve::solve_smp_many_traced(&self.factor, &bs, nrhs, threads, &tr)?
            }
        };
        // Iterative refinement, per column, in the permuted space of the
        // matrix actually factored (no original-matrix argument needed).
        let mut residual = None;
        if opts.refine > 0 || opts.residual {
            let perm = &self.factor.perm;
            let mut worst = 0.0f64;
            for col in 0..nrhs {
                let bp = perm.apply_vec(&bs[col * n..(col + 1) * n]);
                let mut xp = perm.apply_vec(&x[col * n..(col + 1) * n]);
                for _ in 0..opts.refine {
                    let mut rp = parfact_sparse::ops::sym_residual(&self.ap, &xp, &bp);
                    if parfact_sparse::ops::norm_inf(&rp) == 0.0 {
                        break;
                    }
                    self.factor.solve_many_permuted_in_place(&mut rp, 1);
                    for (xi, di) in xp.iter_mut().zip(&rp) {
                        *xi += di;
                    }
                }
                let rp = parfact_sparse::ops::sym_residual(&self.ap, &xp, &bp);
                // The factored matrix is D·A·D under equilibration, so
                // `rp` is the scaled residual r̂ = D(b − A x); the caller's
                // residual is D⁻¹ r̂ (entry k sits at original row
                // `old_of_new(k)`). Reporting r̂ itself was a bug: D
                // shrinks exactly the rows equilibration targets, making
                // ill-scaled systems look better converged than they are.
                let col_worst = match &opts.scale {
                    Some(d) => rp
                        .iter()
                        .enumerate()
                        .map(|(k, &v)| (v / d[perm.old_of_new(k)]).abs())
                        .fold(0.0f64, f64::max),
                    None => parfact_sparse::ops::norm_inf(&rp),
                };
                worst = worst.max(col_worst);
                if opts.refine > 0 {
                    x[col * n..(col + 1) * n].copy_from_slice(&perm.apply_inv_vec(&xp));
                }
            }
            residual = Some(worst);
        }
        if let Some(d) = &opts.scale {
            for col in x.chunks_mut(n.max(1)) {
                for (v, &di) in col.iter_mut().zip(d) {
                    *v *= di;
                }
            }
        }
        let seconds = t0.elapsed().as_secs_f64();
        // 4·nnz(L) flops per column per sweep pair, once for the base solve
        // and once per refinement step (the spmv residuals add 4·nnz(A)).
        let per_col = 4.0 * self.factor.nnz() as f64;
        let flops = per_col * nrhs as f64 * (1.0 + opts.refine as f64)
            + 4.0 * self.ap.nnz() as f64 * nrhs as f64 * opts.refine as f64;
        self.solve_stats
            .accumulate(nrhs, seconds, flops, tr.take_spans(), self.trace.timeline());
        Ok(Solved { x, residual })
    }

    /// Start a [`SolveSession`] that accumulates right-hand sides and
    /// flushes them through [`SparseCholesky::solve_with`] in
    /// kernel-friendly blocks (default 32 columns).
    pub fn solve_session(&self, opts: SolveOpts) -> SolveSession<'_> {
        SolveSession {
            chol: self,
            opts,
            capacity: 32,
            pending: Vec::new(),
            solved: Vec::new(),
        }
    }

    /// Solve with iterative refinement; returns `(x, final residual ∞-norm)`.
    /// Needs the original matrix to compute residuals — pass the same `a`
    /// given to `factorize`.
    #[deprecated(
        since = "0.2.0",
        note = "use solve_with(RhsBlock::single(b), &SolveOpts::new().refine(iters)); \
                it refines against the stored factored matrix, so no `a` argument"
    )]
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64], iters: usize) -> (Vec<f64>, f64) {
        self.factor.solve_refined(a, b, iters)
    }

    /// The factorization record enriched with the solve phase: a
    /// [`FactorReport`] whose `solve` section aggregates every
    /// [`SparseCholesky::solve_with`]/[`SolveSession`] call so far, and —
    /// at [`TraceLevel::Timeline`] — whose span stream gains the solve
    /// spans, laid out after the factorization spans so Chrome-trace
    /// exports show both phases on one time axis.
    pub fn report_with_solve(&self) -> FactorReport {
        let mut r = self.report.clone();
        let g = self.solve_stats.0.lock().unwrap();
        if g.solves > 0 {
            r.solve = Some(SolveReport {
                solves: g.solves,
                rhs: g.rhs,
                seconds: g.seconds,
                flops: g.flops,
            });
            if !g.spans.is_empty() {
                let base = r
                    .spans
                    .iter()
                    .map(|s| s.start_s + s.dur_s)
                    .fold(0.0f64, f64::max);
                r.spans.extend(g.spans.iter().map(|s| {
                    let mut s = s.clone();
                    s.start_s += base;
                    s
                }));
            }
        }
        r
    }

    /// The underlying factor.
    pub fn factor(&self) -> &Factor {
        &self.factor
    }

    /// The symbolic analysis.
    pub fn symbolic(&self) -> &Symbolic {
        &self.factor.sym
    }

    /// The full factorization record: phase times, counters, per-rank
    /// statistics (distributed engine), span events (at
    /// [`TraceLevel::Full`]). Serializable via
    /// [`FactorReport::to_json_string`].
    pub fn report(&self) -> &FactorReport {
        &self.report
    }

    /// Factor nonzeros (padding included).
    pub fn factor_nnz(&self) -> usize {
        self.factor.nnz()
    }

    /// Predicted factorization flops.
    pub fn factor_flops(&self) -> f64 {
        self.factor.sym.factor_flops()
    }

    /// The permuted matrix the factor refers to (testing/diagnostics).
    pub fn permuted_matrix(&self) -> &CscMatrix {
        &self.ap
    }

    /// How many times the retained numeric workspace had to grow a buffer
    /// (see [`Workspace::growth_events`]). Stays flat across steady-state
    /// host-engine refactorizations — the arena-reuse guarantee.
    pub fn workspace_growth_events(&self) -> u64 {
        self.ws.growth_events()
    }
}

/// Accumulates right-hand sides and solves them in blocks.
///
/// Callers that receive right-hand sides one at a time (time steppers,
/// request loops) would otherwise pay a full factor-panel traversal per
/// vector; the session buffers up to `capacity` columns and runs each
/// flush as one blocked [`SparseCholesky::solve_with`] call. Results come
/// back in push order from [`SolveSession::finish`]. Batching never
/// changes the answers: the blocked sweeps are bitwise identical per
/// column regardless of block size.
pub struct SolveSession<'a> {
    chol: &'a SparseCholesky,
    opts: SolveOpts,
    capacity: usize,
    /// Buffered columns, column-major.
    pending: Vec<f64>,
    /// Solved columns in push order.
    solved: Vec<Vec<f64>>,
}

impl SolveSession<'_> {
    /// Override the flush threshold (columns per blocked solve; min 1,
    /// default 32).
    pub fn capacity(mut self, cols: usize) -> Self {
        self.capacity = cols.max(1);
        self
    }

    /// Queue one right-hand side; flushes automatically when `capacity`
    /// columns have accumulated.
    pub fn push(&mut self, b: &[f64]) -> Result<(), FactorError> {
        let n = self.chol.factor.sym.n;
        if b.len() != n {
            return Err(FactorError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        self.pending.extend_from_slice(b);
        if self.pending.len() >= self.capacity * n.max(1) {
            self.flush()?;
        }
        Ok(())
    }

    /// Columns buffered but not yet solved.
    pub fn pending(&self) -> usize {
        let n = self.chol.factor.sym.n;
        self.pending.len() / n.max(1)
    }

    /// Solve everything buffered (no-op when empty).
    pub fn flush(&mut self) -> Result<(), FactorError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let n = self.chol.factor.sym.n;
        let nrhs = self.pending.len() / n.max(1);
        let out = self
            .chol
            .solve_with(RhsBlock::new(&self.pending, nrhs), &self.opts)?;
        for col in 0..nrhs {
            self.solved.push(out.x[col * n..(col + 1) * n].to_vec());
        }
        self.pending.clear();
        Ok(())
    }

    /// Flush the tail and return every solution, in push order.
    pub fn finish(mut self) -> Result<Vec<Vec<f64>>, FactorError> {
        self.flush()?;
        Ok(self.solved)
    }
}

/// How many blocking edges the timeline profile keeps in the report.
const PROFILE_TOP_K: usize = 8;

/// Critical-path / idle analysis of a timeline-traced run. `None` unless
/// the run was traced at [`TraceLevel::Timeline`] and produced spans.
fn timeline_profile(
    sym: &Symbolic,
    trace: TraceLevel,
    spans: &[parfact_trace::SpanEvent],
    ranks: &[parfact_trace::RankReport],
) -> Option<parfact_trace::ProfileReport> {
    if !trace.timeline() || spans.is_empty() {
        return None;
    }
    Some(parfact_trace::profile::analyze(
        &sym.tree.parent,
        spans,
        ranks,
        PROFILE_TOP_K,
    ))
}

/// One engine run's output: the factor plus the instrumentation it
/// produced (`faults` reports injected-fault activity — `Some` only for
/// fault-injected distributed runs).
struct EngineRun {
    factor: Factor,
    counters: Counters,
    ranks: Vec<parfact_trace::RankReport>,
    spans: Vec<parfact_trace::SpanEvent>,
    faults: Option<parfact_trace::FaultReport>,
    scalability: Option<parfact_trace::ScalabilityReport>,
}

/// Per-worker rows for the host engines, in the shared rank-report schema:
/// `rank` is the worker id, `clock_s` stays zero (host workers have no
/// virtual clock — [`parfact_trace::FactorReport::sim_makespan_s`] treats
/// all-zero clocks as "no simulated makespan"), and `mem_peak_bytes` is
/// the worker's own allocation high-water mark.
fn worker_ranks(tr: &Collector) -> Vec<parfact_trace::RankReport> {
    tr.worker_summaries()
        .into_iter()
        .map(|w| parfact_trace::RankReport {
            rank: w.who,
            compute_s: w.compute_s,
            flops: w.flops,
            mem_peak_bytes: w.mem_peak_bytes,
            ..parfact_trace::RankReport::default()
        })
        .collect()
}

/// Predicted-vs-measured scalability rows for a host engine: the model at
/// `p = 1` (all-local mapping: zero traffic, factor + largest front
/// memory) against the workers' measured peaks.
fn host_scalability(
    sym: &Symbolic,
    ranks: &[parfact_trace::RankReport],
) -> Option<parfact_trace::ScalabilityReport> {
    if ranks.is_empty() {
        return None;
    }
    let map = crate::mapping::map_tree(sym, 1, crate::mapping::MapStrategy::default());
    let pred = crate::scalability::predict(sym, &map);
    Some(parfact_trace::ScalabilityReport {
        nranks: ranks.len(),
        ranks: ranks
            .iter()
            .map(|r| parfact_trace::RankScalability {
                rank: r.rank,
                measured_bytes: r.bytes_sent,
                predicted_bytes: 0.0,
                measured_mem_peak: r.mem_peak_bytes,
                // Every worker shares one address space; the single-rank
                // model bounds the whole process.
                predicted_mem_peak: pred.mem[0],
            })
            .collect(),
        comm: None,
    })
}

/// Dispatch one numeric factorization.
fn run_engine(
    ap: &CscMatrix,
    sym: &Arc<Symbolic>,
    kind: FactorKind,
    perm: parfact_sparse::perm::Perm,
    engine: &Engine,
    trace: TraceLevel,
    ws: &mut Workspace,
) -> Result<EngineRun, FactorError> {
    match engine {
        Engine::Sequential => {
            let tr = Collector::new(trace);
            let mut factor = Factor::allocate(sym, kind, perm);
            crate::seq::factorize_seq_into(ap, sym, &tr, ws, &mut factor)?;
            let ranks = worker_ranks(&tr);
            let scalability = host_scalability(sym, &ranks);
            Ok(EngineRun {
                factor,
                counters: tr.snapshot(),
                ranks,
                spans: tr.take_spans(),
                faults: None,
                scalability,
            })
        }
        Engine::Smp(smp) => {
            let tr = Collector::new(trace);
            let mut factor = Factor::allocate(sym, kind, perm);
            crate::smp::factorize_smp_into(ap, sym, smp, &tr, ws, &mut factor)?;
            let ranks = worker_ranks(&tr);
            let scalability = host_scalability(sym, &ranks);
            Ok(EngineRun {
                factor,
                counters: tr.snapshot(),
                ranks,
                spans: tr.take_spans(),
                faults: None,
                scalability,
            })
        }
        Engine::Dist(d) => {
            if kind != FactorKind::Llt {
                return Err(FactorError::Unsupported(
                    "the distributed engine factors LLt only; use Sequential or Smp for LDLt"
                        .to_string(),
                ));
            }
            // Rank statistics come from the simulator and are always
            // collected; span events (compute, comm, wait lanes in virtual
            // time) are recorded only at `TraceLevel::Timeline`.
            let faulty = !d.faults.is_empty() || d.checkpoint || d.recv_timeout_s.is_some();
            let (out, faults) = if faulty {
                let fr = dist::run_distributed_faulty(
                    d.ranks,
                    d.model,
                    ap,
                    sym,
                    &perm,
                    d.strategy,
                    None,
                    1,
                    trace.timeline(),
                    &d.faults,
                    d.recv_timeout_s,
                    d.checkpoint,
                    d.max_restarts,
                )?;
                let faults = parfact_trace::FaultReport {
                    crashes: fr.counts.crashes,
                    timeouts: fr.counts.timeouts,
                    delayed_msgs: fr.counts.delayed_msgs,
                    duplicated_msgs: fr.counts.duplicated_msgs,
                    restarts: fr.restarts,
                    total_makespan_s: fr.total_makespan_s,
                };
                (fr.outcome, Some(faults))
            } else {
                let out = dist::run_distributed_prepared_traced(
                    d.ranks,
                    d.model,
                    ap,
                    sym,
                    &perm,
                    d.strategy,
                    d.sync_schedule,
                    None,
                    1,
                    trace.timeline(),
                    trace.enabled(),
                )?;
                (out, None)
            };
            let counters = out.fold_counters();
            let ranks = out.rank_reports();
            let spans = out.merged_events();
            // Predicted-vs-measured per rank: the model needs only the
            // symbolic structure and the mapping (recomputed here — it is
            // deterministic and cheap relative to the factorization).
            let scalability = trace.enabled().then(|| {
                let map = crate::mapping::map_tree(sym, d.ranks, d.strategy);
                let pred = crate::scalability::predict(sym, &map);
                parfact_trace::ScalabilityReport {
                    nranks: d.ranks,
                    ranks: out
                        .stats
                        .iter()
                        .enumerate()
                        .map(|(r, s)| parfact_trace::RankScalability {
                            rank: r,
                            measured_bytes: s.bytes_sent,
                            predicted_bytes: pred.bytes[r],
                            measured_mem_peak: s.mem_peak,
                            predicted_mem_peak: pred.mem[r],
                        })
                        .collect(),
                    comm: out.comm.clone(),
                }
            });
            Ok(EngineRun {
                factor: out.factor,
                counters,
                ranks,
                spans,
                faults,
                scalability,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::{gen, ops};

    #[test]
    fn default_pipeline_solves_laplace() {
        let a = gen::laplace2d(15, 13, gen::Stencil2d::FivePoint);
        let b = vec![1.0; a.nrows()];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
        assert!(chol.factor_nnz() >= a.nnz());
        assert!(chol.factor_flops() > 0.0);
        // Untraced run: report carries shape and times, counters stay zero.
        let r = chol.report();
        assert_eq!(r.engine, "sequential");
        assert_eq!(r.n, a.nrows());
        assert!(r.numeric_s > 0.0);
        assert_eq!(r.counters.fronts_factored, 0);
    }

    #[test]
    fn all_orderings_solve_correctly() {
        let a = gen::laplace3d(4, 5, 4, gen::Stencil3d::SevenPoint);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
        for ordering in [
            Method::Natural,
            Method::Rcm,
            Method::MinDegree,
            Method::default(),
        ] {
            let chol =
                SparseCholesky::factorize(&a, &FactorOpts::new().ordering(ordering)).unwrap();
            let x = chol.solve(&b);
            assert!(
                ops::sym_residual_inf(&a, &x, &b) < 1e-12,
                "ordering {ordering:?}"
            );
        }
    }

    #[test]
    fn smp_engine_through_facade() {
        let a = gen::elasticity3d(4, 3, 3);
        let b = vec![0.5; a.nrows()];
        let chol = SparseCholesky::factorize(
            &a,
            &FactorOpts::new().engine(Engine::Smp(SmpOpts {
                threads: 4,
                big_front: 128,
            })),
        )
        .unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn dist_engine_matches_sequential_through_facade() {
        let a = gen::laplace2d(14, 12, gen::Stencil2d::FivePoint);
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let seq = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let xs = seq.solve(&b);
        for ranks in [1usize, 4, 6] {
            let dist = SparseCholesky::factorize(
                &a,
                &FactorOpts::new().engine(Engine::Dist(DistOpts {
                    ranks,
                    ..DistOpts::default()
                })),
            )
            .unwrap();
            // Identical ordering + deterministic simulator: bitwise parity.
            assert_eq!(
                dist.factor().max_abs_diff(seq.factor()),
                0.0,
                "ranks={ranks}"
            );
            let xd = dist.solve(&b);
            assert!(ops::sym_residual_inf(&a, &xd, &b) < 1e-12, "ranks={ranks}");
            for (d, s) in xd.iter().zip(&xs) {
                assert_eq!(d.to_bits(), s.to_bits(), "ranks={ranks}");
            }
            // The report folds simulator rank statistics.
            let r = dist.report();
            assert_eq!(r.engine, "dist");
            assert_eq!(r.ranks.len(), ranks);
            assert_eq!(r.counters.fronts_factored, r.nsuper as u64);
            if ranks > 1 {
                assert!(r.counters.msgs_sent > 0);
                assert!(r.counters.bytes_sent > 0);
            }
        }
    }

    #[test]
    fn traced_reports_are_self_consistent_across_engines() {
        let a = gen::laplace2d(30, 30, gen::Stencil2d::FivePoint);
        let engines = [
            Engine::Sequential,
            Engine::Smp(SmpOpts {
                threads: 3,
                big_front: 96,
            }),
            Engine::Dist(DistOpts::default()),
        ];
        for engine in engines {
            let chol = SparseCholesky::factorize(
                &a,
                &FactorOpts::new()
                    .engine(engine.clone())
                    .trace(TraceLevel::Counters),
            )
            .unwrap();
            let r = chol.report();
            let predicted = chol.factor_flops();
            assert_eq!(r.predicted_flops, predicted);
            let rel = (r.counters.flops - predicted).abs() / predicted;
            assert!(
                rel < 0.05,
                "{}: counted {:.3e} vs predicted {:.3e} ({:.1}% off)",
                r.engine,
                r.counters.flops,
                predicted,
                rel * 100.0
            );
            assert_eq!(r.counters.fronts_factored, r.nsuper as u64);
            match engine {
                Engine::Dist(d) => {
                    // Per-rank entries mirror the simulator statistics and
                    // sum to the folded counters.
                    assert_eq!(r.ranks.len(), d.ranks);
                    let bytes: u64 = r.ranks.iter().map(|x| x.bytes_sent).sum();
                    let msgs: u64 = r.ranks.iter().map(|x| x.msgs_sent).sum();
                    let flops: f64 = r.ranks.iter().map(|x| x.flops).sum();
                    assert_eq!(bytes, r.counters.bytes_sent);
                    assert_eq!(msgs, r.counters.msgs_sent);
                    assert!((flops - r.counters.flops).abs() < 1e-6);
                }
                _ => {
                    // Host engines count exactly the predicted flops and
                    // track assembly and memory.
                    assert_eq!(r.counters.flops, predicted, "{}", r.engine);
                    assert!(r.counters.bytes_assembled > 0);
                    assert!(r.counters.mem_peak_bytes > 0);
                    // Per-worker rows: one per worker that recorded, with
                    // their own memory high-water marks, zero virtual
                    // clocks (no simulated makespan), and flops summing to
                    // the folded counter.
                    assert!(!r.ranks.is_empty(), "{}", r.engine);
                    assert!(r.ranks.iter().all(|x| x.clock_s == 0.0));
                    assert!(r.sim_makespan_s().is_none());
                    assert!(
                        r.ranks.iter().any(|x| x.mem_peak_bytes > 0),
                        "{}: no worker reported memory",
                        r.engine
                    );
                    let flops: f64 = r.ranks.iter().map(|x| x.flops).sum();
                    assert!((flops - r.counters.flops).abs() < 1e-6, "{}", r.engine);
                    // And the scalability section carries a memory model.
                    let s = r.scalability.as_ref().expect("host scalability");
                    assert_eq!(s.nranks, r.ranks.len());
                    assert!(s.ranks.iter().all(|x| x.predicted_mem_peak > 0.0));
                }
            }
            // Every traced engine publishes a scalability section.
            assert!(r.scalability.is_some(), "{}", r.engine);
        }
    }

    #[test]
    fn full_trace_produces_spans_and_json_round_trips() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().trace(TraceLevel::Full)).unwrap();
        let r = chol.report();
        assert!(!r.spans.is_empty());
        // Every factored front produced a panel span.
        let panels = r
            .spans
            .iter()
            .filter(|s| s.phase == parfact_trace::Phase::Panel)
            .count();
        assert_eq!(panels, r.nsuper);
        let text = r.to_json_string();
        let back = FactorReport::from_json_str(&text).unwrap();
        assert_eq!(&back, r);
    }

    #[test]
    fn timeline_trace_profiles_the_distributed_run() {
        let a = gen::laplace3d(5, 5, 4, gen::Stencil3d::SevenPoint);
        let chol = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .engine(Engine::Dist(DistOpts::default()))
                .trace(TraceLevel::Timeline),
        )
        .unwrap();
        let r = chol.report();
        assert!(!r.spans.is_empty());
        // Numeric spans form a valid timeline in exact virtual time;
        // analysis spans are wall-clock and get an Instant-read epsilon.
        let tl = parfact_trace::Timeline::from_spans(&r.spans);
        tl.validate(1e-9).unwrap();
        let numeric: Vec<_> = r
            .spans
            .iter()
            .filter(|s| !s.phase.is_analysis())
            .cloned()
            .collect();
        parfact_trace::Timeline::from_spans(&numeric)
            .validate(0.0)
            .unwrap();
        let kinds: std::collections::HashSet<_> = tl.lanes.iter().map(|l| l.kind).collect();
        assert!(kinds.contains(&parfact_trace::LaneKind::Compute));
        assert!(kinds.contains(&parfact_trace::LaneKind::Comm));
        assert!(kinds.contains(&parfact_trace::LaneKind::Wait));
        assert!(kinds.contains(&parfact_trace::LaneKind::Analysis));
        // The profile is attached and self-consistent.
        let p = r.profile.as_ref().expect("timeline trace attaches profile");
        assert!(p.critical_path_s > 0.0);
        assert!(p.critical_path_s <= p.makespan_s + 1e-12);
        assert!(p.critical_path_len > 0);
        assert_eq!(p.ranks.len(), DistOpts::default().ranks);
        for ra in &p.ranks {
            assert!((0.0..=1.0).contains(&ra.idle_frac), "rank {}", ra.who);
        }
        // And the whole report (profile included) round-trips as JSON.
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(&back, r);

        // Full-level traces keep their pre-timeline behavior: host hooks
        // only, no dist spans, no profile.
        let full = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .engine(Engine::Dist(DistOpts::default()))
                .trace(TraceLevel::Full),
        )
        .unwrap();
        assert!(full.report().spans.is_empty());
        assert!(full.report().profile.is_none());
    }

    #[test]
    fn timeline_trace_profiles_host_engines() {
        let a = gen::laplace2d(16, 16, gen::Stencil2d::FivePoint);
        for engine in [
            Engine::Sequential,
            Engine::Smp(SmpOpts {
                threads: 3,
                big_front: 96,
            }),
        ] {
            let chol = SparseCholesky::factorize(
                &a,
                &FactorOpts::new().engine(engine).trace(TraceLevel::Timeline),
            )
            .unwrap();
            let r = chol.report();
            assert!(!r.spans.is_empty(), "{}", r.engine);
            let p = r.profile.as_ref().expect("profile");
            assert!(p.critical_path_s > 0.0, "{}", r.engine);
            assert!(p.makespan_s > 0.0, "{}", r.engine);
        }
    }

    #[test]
    fn refactorize_refreshes_profile() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let mut chol = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .engine(Engine::Dist(DistOpts::default()))
                .trace(TraceLevel::Timeline),
        )
        .unwrap();
        assert!(chol.report().profile.is_some());
        chol.refactorize(&a, Engine::Dist(DistOpts::default()))
            .unwrap();
        assert!(chol.report().profile.is_some());
        // Switching to an untraced-span engine level still works; the dist
        // engine at Timeline keeps producing spans, so the profile stays.
        chol.refactorize(&a, Engine::Sequential).unwrap();
        assert!(chol.report().profile.is_some());
    }

    #[test]
    fn analysis_threads_change_nothing_but_the_report() {
        let a = gen::laplace3d(6, 5, 5, gen::Stencil3d::SevenPoint);
        let base = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .analysis_threads(1)
                .trace(TraceLevel::Counters),
        )
        .unwrap();
        // Untraced runs carry no analysis section; traced runs do, with the
        // resolved thread count and the per-stage seconds summing sanely.
        assert!(SparseCholesky::factorize(&a, &FactorOpts::default())
            .unwrap()
            .report()
            .analysis
            .is_none());
        let ar = base.report().analysis.as_ref().expect("analysis section");
        assert_eq!(ar.threads, 1);
        assert!(ar.total_s() > 0.0);
        // The default ND ordering exercises coarsening/bisection/refinement
        // plus the symbolic stages.
        assert!(ar.coarsen_s > 0.0);
        assert!(ar.etree_s > 0.0);
        assert!(ar.colcount_s > 0.0);
        assert!(ar.structure_s > 0.0);
        for threads in [2, 4] {
            let par = SparseCholesky::factorize(
                &a,
                &FactorOpts::new()
                    .analysis_threads(threads)
                    .trace(TraceLevel::Counters),
            )
            .unwrap();
            // Bitwise-identical analysis: same permutation, same partition,
            // same structure, hence a bitwise-identical factor.
            assert_eq!(
                par.factor().perm.old_of_new(0),
                base.factor().perm.old_of_new(0)
            );
            assert_eq!(par.symbolic().sn_ptr, base.symbolic().sn_ptr);
            assert_eq!(par.symbolic().sn_rows, base.symbolic().sn_rows);
            assert_eq!(par.factor().max_abs_diff(base.factor()), 0.0);
            assert_eq!(par.report().analysis.as_ref().unwrap().threads, threads);
        }
        // The report (analysis section included) survives the JSON round
        // trip.
        let back = FactorReport::from_json_str(&base.report().to_json_string()).unwrap();
        assert_eq!(&back, base.report());
    }

    #[test]
    fn nd_beats_natural_on_grid_fill() {
        let a = gen::laplace2d(24, 24, gen::Stencil2d::FivePoint);
        let nat =
            SparseCholesky::factorize(&a, &FactorOpts::new().ordering(Method::Natural)).unwrap();
        let nd = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        assert!(
            nd.factor_nnz() < nat.factor_nnz(),
            "nd {} vs natural {}",
            nd.factor_nnz(),
            nat.factor_nnz()
        );
    }

    #[test]
    fn ldlt_handles_indefinite() {
        let a = gen::indefinite(60, 3);
        let b = vec![1.0; 60];
        let spd_attempt = SparseCholesky::factorize(&a, &FactorOpts::default());
        assert!(matches!(
            spd_attempt,
            Err(FactorError::NotPositiveDefinite { .. })
        ));
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt)).unwrap();
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn dist_rejects_ldlt() {
        let a = gen::laplace2d(8, 8, gen::Stencil2d::FivePoint);
        let r = SparseCholesky::factorize(
            &a,
            &FactorOpts::new()
                .kind(FactorKind::Ldlt)
                .engine(Engine::Dist(DistOpts::default())),
        );
        assert!(matches!(r, Err(FactorError::Unsupported(_))));
    }

    #[test]
    fn refactorize_reuses_symbolic() {
        let a = gen::random_spd(60, 4, 1);
        let mut chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let nnz_before = chol.factor_nnz();
        // Same pattern, scaled values.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        chol.refactorize(&a2, Engine::Sequential).unwrap();
        assert_eq!(chol.factor_nnz(), nnz_before);
        let b = vec![3.0; 60];
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn refactorize_keeps_report_consistent() {
        let a = gen::laplace2d(16, 16, gen::Stencil2d::FivePoint);
        let mut chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().trace(TraceLevel::Counters)).unwrap();
        let first = chol.report().clone();
        assert_eq!(first.refactorizations, 0);
        assert_eq!(first.counters.fronts_factored, first.nsuper as u64);

        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 3.0;
        }
        chol.refactorize(&a2, Engine::Sequential).unwrap();
        let second = chol.report();
        // Analysis was reused: its recorded cost must not change.
        assert_eq!(second.ordering_s, first.ordering_s);
        assert_eq!(second.symbolic_s, first.symbolic_s);
        // The numeric side was redone and re-counted, not accumulated.
        assert_eq!(second.refactorizations, 1);
        assert_eq!(second.counters.fronts_factored, second.nsuper as u64);
        assert_eq!(second.counters.flops, first.counters.flops);

        // Refactorize may switch engines; the report must follow.
        chol.refactorize(&a, Engine::Dist(DistOpts::default()))
            .unwrap();
        let third = chol.report();
        assert_eq!(third.engine, "dist");
        assert_eq!(third.refactorizations, 2);
        assert_eq!(third.ranks.len(), DistOpts::default().ranks);
        let b = vec![1.0; a.nrows()];
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn refactorize_runs_in_warm_arenas() {
        // The arena-reuse assertion of the acceptance criteria: after the
        // first sequential refactorize has warmed the workspace, further
        // steady-state refactorizations must not grow a single buffer.
        let a = gen::laplace2d(20, 20, gen::Stencil2d::FivePoint);
        let mut chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.5;
        }
        chol.refactorize(&a2, Engine::Sequential).unwrap();
        let warm = chol.workspace_growth_events();
        for _ in 0..3 {
            chol.refactorize(&a2, Engine::Sequential).unwrap();
            assert_eq!(
                chol.workspace_growth_events(),
                warm,
                "steady-state refactorize grew a workspace buffer"
            );
        }
        let b = vec![1.0; a.nrows()];
        let x = chol.solve(&b);
        assert!(ops::sym_residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn rejects_non_lower_input() {
        let mut coo = parfact_sparse::coo::CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 1.0); // upper entry
        coo.push(1, 1, 2.0);
        let bad = coo.to_csc();
        assert!(matches!(
            SparseCholesky::factorize(&bad, &FactorOpts::default()),
            Err(FactorError::BadStructure(_))
        ));
    }

    #[test]
    fn refined_solve_reports_residual() {
        let a = gen::laplace2d(10, 10, gen::Stencil2d::FivePoint);
        let b = vec![2.0; 100];
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let out = chol
            .solve_with(RhsBlock::single(&b), &SolveOpts::new().refine(2))
            .unwrap();
        assert!(out.residual.unwrap() < 1e-12);
        assert!(ops::sym_residual_inf(&a, &out.x, &b) < 1e-13);
        // The deprecated shim still works and agrees.
        #[allow(deprecated)]
        let (x, r) = chol.solve_refined(&a, &b, 2);
        assert!(r < 1e-12);
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn solve_with_checks_dimensions_instead_of_panicking() {
        let a = gen::laplace2d(6, 6, gen::Stencil2d::FivePoint);
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let short = vec![1.0; 35];
        let e = chol
            .solve_with(RhsBlock::single(&short), &SolveOpts::new())
            .unwrap_err();
        assert_eq!(
            e,
            FactorError::DimensionMismatch {
                expected: 36,
                got: 35
            }
        );
        // Block shape wrong: 2 columns claimed over 36 values.
        let b = vec![1.0; 36];
        assert!(matches!(
            chol.solve_with(RhsBlock::new(&b, 2), &SolveOpts::new()),
            Err(FactorError::DimensionMismatch {
                expected: 72,
                got: 36
            })
        ));
        // Bad equilibration scale length is caught too.
        let bad_scale = vec![1.0; 10];
        assert!(matches!(
            chol.solve_with(
                RhsBlock::single(&b),
                &SolveOpts::new().equilibrate(bad_scale)
            ),
            Err(FactorError::DimensionMismatch {
                expected: 36,
                got: 10
            })
        ));
    }

    #[test]
    fn solve_engines_agree_through_the_facade() {
        let a = gen::laplace3d(5, 4, 4, gen::Stencil3d::SevenPoint);
        let n = a.nrows();
        let nrhs = 3;
        let b: Vec<f64> = (0..n * nrhs).map(|i| ((i % 11) as f64) - 5.0).collect();
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let seq = chol
            .solve_with(RhsBlock::new(&b, nrhs), &SolveOpts::new())
            .unwrap();
        // SMP folds contributions front-by-front (seq scatters directly),
        // so engines agree to rounding; thread counts agree bitwise.
        let smp2 = chol
            .solve_with(
                RhsBlock::new(&b, nrhs),
                &SolveOpts::new().engine(SolveEngine::Smp { threads: 2 }),
            )
            .unwrap();
        let smp4 = chol
            .solve_with(
                RhsBlock::new(&b, nrhs),
                &SolveOpts::new().engine(SolveEngine::Smp { threads: 4 }),
            )
            .unwrap();
        for (s, p) in seq.x.iter().zip(&smp2.x) {
            assert!((s - p).abs() / s.abs().max(1.0) < 1e-12);
        }
        for (p2, p4) in smp2.x.iter().zip(&smp4.x) {
            assert_eq!(p2.to_bits(), p4.to_bits());
        }
        // Batched == one-at-a-time, bitwise, per engine.
        for col in 0..nrhs {
            let one = chol
                .solve_with(
                    RhsBlock::single(&b[col * n..(col + 1) * n]),
                    &SolveOpts::new(),
                )
                .unwrap();
            for (s, p) in seq.x[col * n..(col + 1) * n].iter().zip(&one.x) {
                assert_eq!(s.to_bits(), p.to_bits(), "col={col}");
            }
        }
    }

    #[test]
    fn solve_session_batches_and_matches_direct_solves() {
        let a = gen::laplace2d(9, 8, gen::Stencil2d::FivePoint);
        let n = a.nrows();
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let rhs: Vec<Vec<f64>> = (0..7)
            .map(|k| (0..n).map(|i| ((i + k) % 5) as f64 - 2.0).collect())
            .collect();
        let mut sess = chol.solve_session(SolveOpts::new()).capacity(3);
        for b in &rhs {
            sess.push(b).unwrap();
        }
        // 7 pushes at capacity 3: two auto-flushes happened, one column
        // still buffered until finish().
        assert_eq!(sess.pending(), 1);
        let xs = sess.finish().unwrap();
        assert_eq!(xs.len(), rhs.len());
        for (b, x) in rhs.iter().zip(&xs) {
            let direct = chol
                .solve_with(RhsBlock::single(b), &SolveOpts::new())
                .unwrap();
            for (d, s) in direct.x.iter().zip(x) {
                assert_eq!(d.to_bits(), s.to_bits());
            }
        }
        // A session rejects wrong-length pushes.
        let mut sess = chol.solve_session(SolveOpts::new());
        assert!(matches!(
            sess.push(&[1.0]),
            Err(FactorError::DimensionMismatch { .. })
        ));
        // Aggregate stats saw every column exactly once.
        let r = chol.report_with_solve();
        let solve = r.solve.expect("solve section");
        assert!(solve.rhs >= rhs.len() as u64);
        assert!(solve.solves >= 3);
        assert!(solve.seconds > 0.0);
        assert!(solve.flops > 0.0);
    }

    #[test]
    fn report_with_solve_appends_solve_spans_at_timeline() {
        let a = gen::laplace2d(12, 12, gen::Stencil2d::FivePoint);
        let b = vec![1.0; a.nrows()];
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().trace(TraceLevel::Timeline)).unwrap();
        // Before any solve: no solve section, factor spans untouched.
        assert!(chol.report_with_solve().solve.is_none());
        let factor_spans = chol.report().spans.len();
        chol.solve_with(RhsBlock::single(&b), &SolveOpts::new())
            .unwrap();
        chol.solve_with(
            RhsBlock::single(&b),
            &SolveOpts::new().engine(SolveEngine::Smp { threads: 2 }),
        )
        .unwrap();
        let r = chol.report_with_solve();
        assert!(r.solve.is_some());
        let solve_spans: Vec<_> = r.spans.iter().filter(|s| s.phase == Phase::Solve).collect();
        assert!(!solve_spans.is_empty());
        assert_eq!(r.spans.len() - solve_spans.len(), factor_spans);
        // Solve spans start after every factor span ends, so the merged
        // stream renders as one ordered Chrome trace.
        let factor_end = chol
            .report()
            .spans
            .iter()
            .map(|s| s.start_s + s.dur_s)
            .fold(0.0f64, f64::max);
        assert!(solve_spans.iter().all(|s| s.start_s >= factor_end));
        // The base report is untouched (solve spans are an enrichment).
        assert_eq!(chol.report().spans.len(), factor_spans);
        assert!(chol.report().solve.is_none());
        // And the enriched report still round-trips as JSON.
        let back = FactorReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        // The profile ignores solve spans: recomputing it over the
        // enriched stream changes nothing.
        let p = parfact_trace::profile::analyze(
            &chol.symbolic().tree.parent,
            &r.spans,
            &r.ranks,
            PROFILE_TOP_K,
        );
        assert_eq!(Some(p), r.profile);
    }
}
