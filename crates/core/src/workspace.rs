//! Reusable numeric-factorization workspaces.
//!
//! Steady-state factorization (and especially [`crate::solver::SparseCholesky::refactorize`])
//! should not pay one heap allocation per supernode for fronts, update
//! matrices and packing scratch. A [`FrontWorkspace`] owns every buffer a
//! worker needs to process a supernode; a [`Workspace`] holds one per
//! worker thread plus the engine-level update hand-off slots. Buffers only
//! ever grow, so after the first factorization of a given structure every
//! subsequent run reuses warm memory — [`Workspace::growth_events`] counts
//! how often a buffer had to grow, which the arena-reuse tests pin to zero
//! for repeat factorizations.
//!
//! (The packing buffers of the dense microkernels are thread-local inside
//! `parfact-dense` and follow the same grow-once discipline.)

use crate::frontal::{FrontScatter, UpdateMatrix};
use std::collections::HashMap;

/// Per-worker arena: front buffer, scatter map, child-update staging and a
/// pool of recycled update-matrix buffers.
#[derive(Default)]
pub struct FrontWorkspace {
    /// Dense front buffer (order² of the largest front seen so far).
    pub(crate) front: Vec<f64>,
    /// Global-to-local scatter map, sized to the matrix order.
    pub(crate) scatter: FrontScatter,
    /// Child updates taken out of the hand-off slots for assembly; drained
    /// back into `pool` after each front.
    pub(crate) children: Vec<UpdateMatrix>,
    /// Panel-copy scratch for the parallel trailing update.
    pub(crate) scratch: Vec<f64>,
    /// Recycled update-matrix buffers, keyed by length. Update sizes are a
    /// function of the symbolic structure, so in steady state every request
    /// is matched by a buffer recycled at exactly that size — a plain LIFO
    /// stack would pair requests with arbitrary capacities and keep
    /// growing.
    pub(crate) pool: HashMap<usize, Vec<Vec<f64>>>,
    /// How many times a buffer request outgrew what the arena had.
    pub(crate) growth_events: u64,
}

impl FrontWorkspace {
    pub(crate) fn new() -> Self {
        FrontWorkspace::default()
    }

    /// Grab a buffer for an update matrix of `len` entries; counts a growth
    /// event when the pool cannot satisfy the request from warm memory.
    pub(crate) fn take_buf(&mut self, len: usize) -> Vec<f64> {
        if let Some(b) = self.pool.get_mut(&len).and_then(|stack| stack.pop()) {
            return b;
        }
        self.growth_events += 1;
        Vec::with_capacity(len)
    }

    /// Return an update-matrix buffer to the pool (its current length is
    /// its size class).
    pub(crate) fn recycle(&mut self, buf: Vec<f64>) {
        self.pool.entry(buf.len()).or_default().push(buf);
    }

    /// Record whether the front buffer is about to grow past its capacity.
    pub(crate) fn note_front(&mut self, need: usize) {
        if self.front.capacity() < need {
            self.growth_events += 1;
        }
    }
}

/// Engine-level workspace: one [`FrontWorkspace`] per worker thread plus
/// the per-supernode update hand-off slots. Owned by
/// [`crate::solver::SparseCholesky`] so `refactorize` reuses all of it.
#[derive(Default)]
pub struct Workspace {
    /// Worker arenas (index = worker id; sequential engines use slot 0).
    pub(crate) threads: Vec<FrontWorkspace>,
    /// `slots[s]` holds supernode `s`'s update matrix until its parent
    /// assembles (sequential engine; the SMP engine wraps its own slots in
    /// mutexes for cross-thread hand-off).
    pub(crate) slots: Vec<Option<UpdateMatrix>>,
}

impl Workspace {
    /// Empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Make sure worker arenas `0..k` exist.
    pub(crate) fn ensure_threads(&mut self, k: usize) {
        while self.threads.len() < k {
            self.threads.push(FrontWorkspace::new());
        }
    }

    /// Total buffer-growth events across all worker arenas. Zero for a
    /// factorization that ran entirely in warm buffers (the steady-state
    /// `refactorize` guarantee).
    pub fn growth_events(&self) -> u64 {
        self.threads.iter().map(|t| t.growth_events).sum()
    }
}
