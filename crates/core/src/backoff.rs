//! Bounded spin-then-park backoff for worker wait loops.
//!
//! The SMP factorization and solve phases have workers that must wait for
//! dependencies produced by other threads (child updates, solved pivot
//! segments). A bare `yield_now()` loop burns a core for the entire
//! duration of a large top-of-tree front; parking immediately costs a
//! syscall round-trip on the (common) short waits between small fronts.
//! [`Backoff`] staggers between the two: a few busy spins, a few yields,
//! then short timed parks.
//!
//! Timed parks (rather than an unpark-based handshake) keep the producers
//! wait-free — nobody has to know who is waiting — at the cost of up to
//! [`PARK_US`] microseconds of extra latency once a worker has fully
//! backed off, which is noise next to the dense kernel time of the fronts
//! that cause long waits.

use std::time::Duration;

/// Busy `spin_loop` rounds before starting to yield.
const SPIN_LIMIT: u32 = 6;
/// `yield_now` rounds before starting to park.
const YIELD_LIMIT: u32 = 10;
/// Park duration once fully backed off.
const PARK_US: u64 = 50;

/// Escalating wait helper: call [`Backoff::snooze`] each time a poll comes
/// up empty and [`Backoff::reset`] whenever progress is made.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Fresh backoff (starts at the busy-spin stage).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Progress was made: return to the busy-spin stage.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait a little, escalating from spins through yields to timed parks.
    pub fn snooze(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..(1 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < SPIN_LIMIT + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(Duration::from_micros(PARK_US));
        }
        if self.step < SPIN_LIMIT + YIELD_LIMIT {
            self.step += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_escalates_and_reset_restarts() {
        let mut b = Backoff::new();
        for _ in 0..(SPIN_LIMIT + YIELD_LIMIT + 5) {
            b.snooze();
        }
        // Saturates at the park stage instead of overflowing.
        assert_eq!(b.step, SPIN_LIMIT + YIELD_LIMIT);
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn parked_waiter_observes_flag_promptly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            let mut b = Backoff::new();
            while !f2.load(Ordering::Acquire) {
                b.snooze();
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        flag.store(true, Ordering::Release);
        h.join().unwrap();
    }
}
