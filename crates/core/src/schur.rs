//! Schur complements: eliminate an "interior" variable set and return the
//! dense reduced operator on the remaining "interface" — the substructuring
//! primitive of domain-decomposition workflows, where the multifrontal
//! solver factors each subdomain and the interface problem is handed to a
//! coarse solver.
//!
//! Implementation: the interior principal submatrix `A_II` is factored with
//! the ordinary multifrontal pipeline, and
//! `S = A_GG − A_GI · A_II⁻¹ · A_IG` is formed with blocked multi-RHS
//! solves. (A stop-at-the-boundary multifrontal variant would save the
//! explicit solves but constrains the ordering machinery; this formulation
//! reuses the production factorization unchanged and is exact.)

use crate::error::FactorError;
use crate::solver::{FactorOpts, SparseCholesky};
use parfact_dense::DMat;
use parfact_sparse::csc::CscMatrix;

/// The result of a Schur-complement reduction.
pub struct Schur {
    /// Dense Schur complement on the interface variables, in the order the
    /// caller listed them (full symmetric storage).
    pub s: DMat,
    /// Factorization of the interior block (reusable for back-substitution
    /// of interior values once interface values are known).
    pub interior: SparseCholesky,
    /// `interface[k]` = original index of interface variable `k`.
    pub interface: Vec<usize>,
    /// `interior_of[v]` = position of original index `v` inside the
    /// interior block, or `usize::MAX` if `v` is an interface variable.
    pub interior_of: Vec<usize>,
    /// Couplings `A_IG` as dense interior x interface columns (kept for
    /// the back-substitution step).
    aig: Vec<f64>,
}

/// Compute the Schur complement of `a` (symmetric-lower CSC) with respect
/// to the given interface set. `interface` must contain unique, in-range
/// indices; everything else is interior.
pub fn schur_complement(
    a: &CscMatrix,
    interface: &[usize],
    opts: &FactorOpts,
) -> Result<Schur, FactorError> {
    a.check_sym_lower()?;
    let n = a.ncols();
    let k = interface.len();
    let mut is_interface = vec![false; n];
    for &g in interface {
        assert!(g < n, "interface index {g} out of range");
        assert!(!is_interface[g], "duplicate interface index {g}");
        is_interface[g] = true;
    }
    let n_i = n - k;
    // Position maps.
    let mut interior_of = vec![usize::MAX; n];
    let mut interface_of = vec![usize::MAX; n];
    {
        let mut next = 0usize;
        for v in 0..n {
            if !is_interface[v] {
                interior_of[v] = next;
                next += 1;
            }
        }
        for (kk, &g) in interface.iter().enumerate() {
            interface_of[g] = kk;
        }
    }

    // Split A into A_II (lower CSC), A_GI (dense interior x interface
    // "coupling" columns), and A_GG (dense interface block).
    let mut coo_ii = parfact_sparse::coo::CooMatrix::new(n_i, n_i);
    let mut aig = vec![0.0f64; n_i * k];
    let mut agg = DMat::zeros(k, k);
    for c in 0..n {
        let (rows, vals) = a.col(c);
        for (&r, &v) in rows.iter().zip(vals) {
            match (is_interface[r], is_interface[c]) {
                (false, false) => {
                    let (ri, ci) = (interior_of[r], interior_of[c]);
                    coo_ii.push(ri.max(ci), ri.min(ci), v);
                }
                (true, false) => {
                    aig[interface_of[r] * n_i + interior_of[c]] += v;
                }
                (false, true) => {
                    aig[interface_of[c] * n_i + interior_of[r]] += v;
                }
                (true, true) => {
                    let (rg, cg) = (interface_of[r], interface_of[c]);
                    agg[(rg, cg)] += v;
                    if rg != cg {
                        agg[(cg, rg)] += v;
                    }
                }
            }
        }
    }
    let a_ii = coo_ii.to_csc();
    let interior = SparseCholesky::factorize(&a_ii, opts)?;

    // Y = A_II^{-1} A_IG, blocked over all interface columns at once.
    let y = interior.factor().solve_many(&aig, k);

    // S = A_GG - A_GI * Y  (A_GI = A_IG^T).
    let mut s = agg;
    for g in 0..k {
        for h in 0..k {
            let mut acc = 0.0;
            let (colg, colh) = (&aig[g * n_i..(g + 1) * n_i], &y[h * n_i..(h + 1) * n_i]);
            for i in 0..n_i {
                acc += colg[i] * colh[i];
            }
            s[(g, h)] -= acc;
        }
    }
    Ok(Schur {
        s,
        interior,
        interface: interface.to_vec(),
        interior_of,
        aig,
    })
}

impl Schur {
    /// Number of interface variables.
    pub fn ninterface(&self) -> usize {
        self.interface.len()
    }

    /// Solve the full system `A x = b` given a solver for the dense Schur
    /// system (the "coarse solve" of a substructuring method):
    ///
    /// 1. `g = b_G − A_GI A_II⁻¹ b_I` (condensation),
    /// 2. `x_G = S⁻¹ g` via the supplied closure,
    /// 3. `x_I = A_II⁻¹ (b_I − A_IG x_G)` (back-substitution).
    pub fn solve_full(
        &self,
        b: &[f64],
        coarse_solve: impl FnOnce(&DMat, &[f64]) -> Vec<f64>,
    ) -> Vec<f64> {
        let n = self.interior_of.len();
        let n_i = n - self.ninterface();
        let k = self.ninterface();
        assert_eq!(b.len(), n);
        // Split b.
        let mut b_i = vec![0.0; n_i];
        let mut b_g = vec![0.0; k];
        for v in 0..n {
            if self.interior_of[v] != usize::MAX {
                b_i[self.interior_of[v]] = b[v];
            }
        }
        for (kk, &g) in self.interface.iter().enumerate() {
            b_g[kk] = b[g];
        }
        // Condense.
        let yi = self.interior.solve(&b_i);
        let mut g_rhs = b_g.clone();
        for g in 0..k {
            let col = &self.aig[g * n_i..(g + 1) * n_i];
            let mut acc = 0.0;
            for i in 0..n_i {
                acc += col[i] * yi[i];
            }
            g_rhs[g] -= acc;
        }
        // Coarse solve.
        let x_g = coarse_solve(&self.s, &g_rhs);
        assert_eq!(x_g.len(), k);
        // Back-substitute.
        let mut rhs_i = b_i;
        for g in 0..k {
            let col = &self.aig[g * n_i..(g + 1) * n_i];
            let xg = x_g[g];
            if xg != 0.0 {
                for i in 0..n_i {
                    rhs_i[i] -= col[i] * xg;
                }
            }
        }
        let x_i = self.interior.solve(&rhs_i);
        // Merge.
        let mut x = vec![0.0; n];
        for v in 0..n {
            if self.interior_of[v] != usize::MAX {
                x[v] = x_i[self.interior_of[v]];
            }
        }
        for (kk, &g) in self.interface.iter().enumerate() {
            x[g] = x_g[kk];
        }
        x
    }
}

/// Dense SPD solve used as the default coarse solver in tests/examples.
pub fn dense_spd_solve(s: &DMat, b: &[f64]) -> Vec<f64> {
    let k = s.nrows();
    let mut l = s.clone();
    parfact_dense::chol::potrf(k, l.as_mut_slice(), k).expect("Schur complement must be SPD");
    let mut x = b.to_vec();
    parfact_dense::trsv::trsv_ln(k, l.as_slice(), k, &mut x, false);
    parfact_dense::trsv::trsv_lt(k, l.as_slice(), k, &mut x, false);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfact_sparse::{gen, ops};

    fn dense_schur_reference(a: &CscMatrix, interface: &[usize]) -> DMat {
        // Brute force on the dense matrix.
        let n = a.ncols();
        let full = a.sym_to_full().to_dense_colmajor();
        let is_g: Vec<bool> = {
            let mut v = vec![false; n];
            for &g in interface {
                v[g] = true;
            }
            v
        };
        let interior: Vec<usize> = (0..n).filter(|&v| !is_g[v]).collect();
        let ni = interior.len();
        let k = interface.len();
        // A_II inverse applied densely via Gaussian elimination (potrf).
        let mut aii = DMat::zeros(ni, ni);
        for (ci, &c) in interior.iter().enumerate() {
            for (ri, &r) in interior.iter().enumerate() {
                aii[(ri, ci)] = full[c * n + r];
            }
        }
        let mut aig = DMat::zeros(ni, k);
        for (cg, &g) in interface.iter().enumerate() {
            for (ri, &r) in interior.iter().enumerate() {
                aig[(ri, cg)] = full[g * n + r];
            }
        }
        let mut s = DMat::zeros(k, k);
        for (cg, &g) in interface.iter().enumerate() {
            for (rg, &r) in interface.iter().enumerate() {
                s[(rg, cg)] = full[g * n + r];
            }
        }
        // Y = A_II^{-1} A_IG by dense Cholesky.
        let mut l = aii.clone();
        parfact_dense::chol::potrf(ni, l.as_mut_slice(), ni).unwrap();
        let mut y = aig.clone();
        for cg in 0..k {
            let col = &mut y.as_mut_slice()[cg * ni..(cg + 1) * ni];
            parfact_dense::trsv::trsv_ln(ni, l.as_slice(), ni, col, false);
            parfact_dense::trsv::trsv_lt(ni, l.as_slice(), ni, col, false);
        }
        for cg in 0..k {
            for rg in 0..k {
                let mut acc = 0.0;
                for i in 0..ni {
                    acc += aig[(i, rg)] * y[(i, cg)];
                }
                s[(rg, cg)] -= acc;
            }
        }
        s
    }

    #[test]
    fn schur_matches_dense_reference() {
        let a = gen::laplace2d(6, 6, gen::Stencil2d::FivePoint);
        // Interface: the middle grid column (x = 3).
        let interface: Vec<usize> = (0..6).map(|y| 3 + 6 * y).collect();
        let sc = schur_complement(&a, &interface, &FactorOpts::default()).unwrap();
        let reference = dense_schur_reference(&a, &interface);
        assert!(
            sc.s.max_abs_diff(&reference) < 1e-10,
            "schur mismatch: {}",
            sc.s.max_abs_diff(&reference)
        );
    }

    #[test]
    fn substructured_solve_matches_direct() {
        let a = gen::laplace2d(10, 8, gen::Stencil2d::FivePoint);
        let n = a.nrows();
        let interface: Vec<usize> = (0..8).map(|y| 5 + 10 * y).collect();
        let sc = schur_complement(&a, &interface, &FactorOpts::default()).unwrap();
        let xstar: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 3.0 - 1.5).collect();
        let mut b = vec![0.0; n];
        a.sym_spmv(&xstar, &mut b);
        let x = sc.solve_full(&b, dense_spd_solve);
        for (xi, xs) in x.iter().zip(&xstar) {
            assert!((xi - xs).abs() < 1e-8);
        }
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn schur_of_spd_is_spd() {
        let a = gen::elasticity3d(3, 3, 2);
        let interface: Vec<usize> = (0..a.nrows()).step_by(17).collect();
        let sc = schur_complement(&a, &interface, &FactorOpts::default()).unwrap();
        // SPD check via dense Cholesky of S.
        let k = sc.ninterface();
        let mut l = sc.s.clone();
        parfact_dense::chol::potrf(k, l.as_mut_slice(), k)
            .expect("Schur complement of an SPD matrix is SPD");
    }

    #[test]
    fn empty_interface_degenerates_gracefully() {
        let a = gen::tridiagonal(10);
        let sc = schur_complement(&a, &[], &FactorOpts::default()).unwrap();
        assert_eq!(sc.ninterface(), 0);
        let b = vec![1.0; 10];
        let x = sc.solve_full(&b, |_, _| Vec::new());
        assert!(ops::sym_residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate interface")]
    fn rejects_duplicate_interface() {
        let a = gen::tridiagonal(5);
        let _ = schur_complement(&a, &[1, 1], &FactorOpts::default());
    }
}
