//! Post-factorization numerical analysis utilities: condition-number
//! estimation (Hager–Higham), symmetric equilibration, and determinant
//! helpers — the auxiliary toolkit production direct solvers ship with.

use crate::factor::Factor;
use parfact_sparse::csc::CscMatrix;
use parfact_sparse::ops;

/// Estimate `‖A⁻¹‖₁` with Hager's algorithm (as refined by Higham): a
/// few forward/backward solve pairs steered by sign vectors. For symmetric
/// matrices `‖A⁻¹‖₁ = ‖A⁻¹‖_∞`, so together with `‖A‖₁` this yields the
/// classic `cond₁` estimate without ever forming `A⁻¹`.
pub fn inv_norm1_estimate(factor: &Factor, max_iter: usize) -> f64 {
    let n = factor.sym.n;
    if n == 0 {
        return 0.0;
    }
    // x = e / n.
    let mut x = vec![1.0 / n as f64; n];
    let mut best: f64 = 0.0;
    let mut last_sign: Vec<f64> = Vec::new();
    for _ in 0..max_iter.max(1) {
        // y = A^{-1} x  (A symmetric: one solve serves both roles).
        let y = factor.solve(&x);
        let norm = y.iter().map(|v| v.abs()).sum::<f64>();
        best = best.max(norm);
        let sign: Vec<f64> = y
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        if sign == last_sign {
            break;
        }
        // z = A^{-T} sign = A^{-1} sign.
        let z = factor.solve(&sign);
        // Pick the coordinate of max |z|; stop if no improvement direction.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |(bj, bv), (j, &v)| {
                if v.abs() > bv {
                    (j, v.abs())
                } else {
                    (bj, bv)
                }
            });
        let zx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= zx.abs() {
            break;
        }
        x.iter_mut().for_each(|v| *v = 0.0);
        x[jmax] = 1.0;
        last_sign = sign;
    }
    // Final lower-bound refinement with the alternating-sign probe.
    let probe: Vec<f64> = (0..n)
        .map(|i| {
            let v = 1.0 + i as f64 / (n.max(2) - 1) as f64;
            if i % 2 == 0 {
                v
            } else {
                -v
            }
        })
        .collect();
    let y = factor.solve(&probe);
    let alt = 2.0 * y.iter().map(|v| v.abs()).sum::<f64>() / (3.0 * n as f64);
    best.max(alt)
}

/// 1-norm (= ∞-norm) of a symmetric-lower matrix.
pub fn norm1_sym(a: &CscMatrix) -> f64 {
    ops::sym_norm_inf(a)
}

/// Estimated 1-norm condition number `‖A‖₁ · ‖A⁻¹‖₁`.
pub fn cond1_estimate(a: &CscMatrix, factor: &Factor, max_iter: usize) -> f64 {
    norm1_sym(a) * inv_norm1_estimate(factor, max_iter)
}

/// Symmetric (Jacobi) equilibration: returns `d` with
/// `d[i] = 1 / sqrt(A[i][i])` and the scaled matrix `D A D` (unit
/// diagonal), which typically tightens pivots for the no-pivot LDLᵀ path.
/// Panics if a diagonal entry is non-positive — equilibration of symmetric
/// matrices is only meaningful with a positive diagonal.
pub fn equilibrate(a: &CscMatrix) -> (Vec<f64>, CscMatrix) {
    let n = a.ncols();
    let diag = ops::sym_diagonal(a);
    let d: Vec<f64> = diag
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            assert!(v > 0.0, "equilibrate: non-positive diagonal at {i}");
            1.0 / v.sqrt()
        })
        .collect();
    let mut scaled = a.clone();
    // Scale values in place: entry (r, c) -> d[r] * v * d[c].
    let colptr = scaled.colptr().to_vec();
    let rowind = scaled.rowind().to_vec();
    let vals = scaled.values_mut();
    for c in 0..n {
        for k in colptr[c]..colptr[c + 1] {
            vals[k] *= d[rowind[k]] * d[c];
        }
    }
    (d, scaled)
}

/// Solve `A x = b` through an equilibrated factorization:
/// `(D A D)(D⁻¹ x) = D b`, i.e. `x = D · solve(D b)`.
#[deprecated(
    since = "0.2.0",
    note = "use SparseCholesky::solve_with with SolveOpts::new().equilibrate(d); \
            it also batches, refines and feeds the solve report"
)]
pub fn solve_equilibrated(factor: &Factor, d: &[f64], b: &[f64]) -> Vec<f64> {
    let db: Vec<f64> = b.iter().zip(d).map(|(&bi, &di)| bi * di).collect();
    let y = factor.solve(&db);
    y.iter().zip(d).map(|(&yi, &di)| yi * di).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{FactorOpts, SparseCholesky};
    use parfact_sparse::gen;

    fn dense_inv_norm1(a: &CscMatrix) -> f64 {
        // Reference via explicit inverse columns (small n only).
        let n = a.ncols();
        let chol = SparseCholesky::factorize(a, &FactorOpts::default()).unwrap();
        let mut best: f64 = 0.0;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = chol.factor().solve(&e);
            best = best.max(col.iter().map(|v| v.abs()).sum());
        }
        best
    }

    #[test]
    fn inv_norm_estimate_is_tight_lower_bound() {
        for (name, a) in [
            ("tridiag", gen::tridiagonal(40)),
            ("lap2d", gen::laplace2d(8, 8, gen::Stencil2d::FivePoint)),
            ("rand", gen::random_spd(60, 4, 5)),
        ] {
            let exact = dense_inv_norm1(&a);
            let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
            let est = inv_norm1_estimate(chol.factor(), 6);
            assert!(est <= exact * (1.0 + 1e-10), "{name}: estimate above exact");
            assert!(
                est >= exact / 3.0,
                "{name}: estimate {est} too far below exact {exact}"
            );
        }
    }

    #[test]
    fn cond_estimate_tracks_known_conditioning() {
        // 1-D Laplacian condition grows ~ (n/pi)^2 * 4.
        let a_small = gen::tridiagonal(10);
        let a_big = gen::tridiagonal(80);
        let cs = {
            let f = SparseCholesky::factorize(&a_small, &FactorOpts::default()).unwrap();
            cond1_estimate(&a_small, f.factor(), 5)
        };
        let cb = {
            let f = SparseCholesky::factorize(&a_big, &FactorOpts::default()).unwrap();
            cond1_estimate(&a_big, f.factor(), 5)
        };
        assert!(
            cb > 20.0 * cs,
            "conditioning must grow with n: {cs} vs {cb}"
        );
    }

    #[test]
    fn equilibration_gives_unit_diagonal_and_same_solution() {
        use crate::solver::{RhsBlock, SolveOpts};
        let a = gen::random_spd(80, 5, 17);
        let (d, scaled) = equilibrate(&a);
        for i in 0..80 {
            assert!((scaled.get(i, i).unwrap() - 1.0).abs() < 1e-14);
        }
        let b: Vec<f64> = (0..80).map(|i| (i % 7) as f64 - 3.0).collect();
        let direct = SparseCholesky::factorize(&a, &FactorOpts::default())
            .unwrap()
            .solve(&b);
        let chol_s = SparseCholesky::factorize(&scaled, &FactorOpts::default()).unwrap();
        #[allow(deprecated)]
        let via_eq = solve_equilibrated(chol_s.factor(), &d, &b);
        for (x, y) in direct.iter().zip(&via_eq) {
            assert!((x - y).abs() < 1e-9);
        }
        // The facade route is bitwise identical to the deprecated helper.
        let via_opts = chol_s
            .solve_with(
                RhsBlock::single(&b),
                &SolveOpts::new().equilibrate(d.clone()),
            )
            .unwrap();
        for (x, y) in via_eq.iter().zip(&via_opts.x) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn log_det_matches_dense_reference() {
        // det of tridiag(-1,2,-1)_n is n+1.
        let n = 12;
        let a = gen::tridiagonal(n);
        let chol = SparseCholesky::factorize(&a, &FactorOpts::default()).unwrap();
        let (ld, sign) = chol.factor().log_det();
        assert_eq!(sign, 1.0);
        assert!((ld - ((n + 1) as f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn log_det_ldlt_signs() {
        use crate::factor::FactorKind;
        let a = gen::indefinite(30, 3);
        let chol =
            SparseCholesky::factorize(&a, &FactorOpts::new().kind(FactorKind::Ldlt)).unwrap();
        let (_, sign) = chol.factor().log_det();
        assert_eq!(sign, -1.0, "one negative pivot flips the determinant sign");
    }

    #[test]
    #[should_panic(expected = "non-positive diagonal")]
    fn equilibrate_rejects_bad_diagonal() {
        let a = gen::indefinite(10, 1); // has a negative diagonal entry
        equilibrate(&a);
    }
}
